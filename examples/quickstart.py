#!/usr/bin/env python3
"""Quickstart: evaluate one two-level cache system on one workload.

Run:
    python examples/quickstart.py [--workload gcc1] [--scale 0.2]

This walks the whole pipeline once: generate a synthetic trace, filter
it through split direct-mapped L1 caches, replay the misses through a
4-way second level, resolve cycle times with the analytical timing
model, charge chip area with the rbe model, and combine everything into
the paper's figure of merit — time per instruction (TPI).
"""

from __future__ import annotations

import argparse

from repro import Policy, SystemConfig, evaluate, kb


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="gcc1", help="benchmark name")
    parser.add_argument(
        "--scale", type=float, default=0.2, help="trace scale (1.0 = 1M instructions)"
    )
    args = parser.parse_args()

    config = SystemConfig(
        l1_bytes=kb(8),
        l2_bytes=kb(64),
        l2_associativity=4,
        policy=Policy.EXCLUSIVE,
        off_chip_ns=50.0,
    )
    print(f"system: {config.describe()}")
    print(f"workload: {args.workload} (scale {args.scale})")
    print()

    perf = evaluate(config, args.workload, scale=args.scale)
    stats, timings = perf.stats, perf.tpi.timings

    print("-- simulation --")
    print(f"counted instructions : {stats.n_instructions:,}")
    print(f"counted data refs    : {stats.n_data_refs:,}")
    print(f"L1 miss rate         : {stats.l1_miss_rate:.4f}")
    print(f"L2 local miss rate   : {stats.l2_local_miss_rate:.4f}")
    print(f"global miss rate     : {stats.global_miss_rate:.4f}")
    print()
    print("-- timing model --")
    print(f"L1 cycle time        : {timings.l1_cycle_ns:.2f} ns (sets the clock)")
    print(f"L2 cycle (raw)       : {timings.l2_raw_cycle_ns:.2f} ns")
    print(f"L2 cycle (quantised) : {timings.l2_cycle_ns:.2f} ns = {timings.l2_cycles} cycles")
    print(f"L2 hit penalty       : {timings.l2_hit_penalty_ns:.2f} ns")
    print(f"L2 miss penalty      : {timings.l2_miss_penalty_ns:.2f} ns")
    print()
    print("-- result --")
    print(f"chip area            : {perf.area_rbe:,.0f} rbe")
    print(f"TPI                  : {perf.tpi_ns:.3f} ns/instruction")
    print(f"CPI at this clock    : {perf.tpi.cpi:.3f}")
    print(f"memory stall share   : {perf.tpi.memory_fraction:.1%}")

    # Compare against the single-level machine of the same L1 size.
    single = evaluate(config.single_level(), args.workload, scale=args.scale)
    print()
    print(
        f"single-level {single.label}: TPI {single.tpi_ns:.3f} ns at "
        f"{single.area_rbe:,.0f} rbe"
    )
    speedup = single.tpi_ns / perf.tpi_ns
    print(f"two-level exclusive speedup over it: {speedup:.2f}x")


if __name__ == "__main__":
    main()
