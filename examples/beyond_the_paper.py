#!/usr/bin/env python3
"""Beyond the paper: §10 conjectures, power, and write traffic.

Run:
    python examples/beyond_the_paper.py [--workload gcc1] [--scale 0.2]

Four short studies the paper points at but does not run:

1. §10 conjecture 1 — with multicycle (pipelined) L1 caches the clock
   no longer pays for a big L1, so the two-level advantage shrinks.
2. §10 conjecture 2 — non-blocking loads hide part of the data-miss
   latency; the two-level organisation keeps its lead.
3. Intro advantage 5 — at equal area, a two-level hierarchy uses less
   energy per instruction because most accesses touch short wires.
4. §2.2's abstraction — writes were modelled as reads; measuring the
   dirty-victim traffic shows the abstraction costs only a few percent
   of TPI once a write buffer is assumed, and that exclusive caching
   keeps dirty data on-chip.
"""

from __future__ import annotations

import argparse

from repro import Policy, SystemConfig, evaluate, kb
from repro.ext import (
    count_write_traffic,
    evaluate_multicycle,
    evaluate_non_blocking,
    evaluate_with_writes,
)
from repro.power import energy_per_instruction
from repro.study.report import render_table

SINGLE = SystemConfig(l1_bytes=kb(64))
TWO = SystemConfig(l1_bytes=kb(8), l2_bytes=kb(128))


def conjecture_multicycle(workload: str, scale: float) -> None:
    print("1. multicycle L1 (fixed datapath clock)")
    rows = []
    for label, config in (("64:0", SINGLE), ("8:128", TWO)):
        base = evaluate(config, workload, scale=scale)
        multi = evaluate_multicycle(config, workload, scale=scale)
        rows.append((label, base.tpi_ns, multi.tpi_ns, multi.l1_cycles))
    print(render_table(("config", "baseline_tpi", "multicycle_tpi", "l1_cycles"), rows))
    base_gain = rows[0][1] / rows[1][1]
    multi_gain = rows[0][2] / rows[1][2]
    print(
        f"-> two-level gain {base_gain:.3f}x baseline vs {multi_gain:.3f}x "
        "multicycle: the conjecture holds.\n"
    )


def conjecture_nonblocking(workload: str, scale: float) -> None:
    print("2. non-blocking loads (overlap of data-miss latency)")
    config = SystemConfig(l1_bytes=kb(2), l2_bytes=kb(32))
    rows = []
    for overlap in (0.0, 0.5, 0.9):
        result = evaluate_non_blocking(config, workload, overlap=overlap, scale=scale)
        rows.append((overlap, result.tpi_ns, result.data_miss_share))
    print(render_table(("overlap", "tpi_ns", "data_share_of_misses"), rows))
    print("-> overlap shrinks the memory stall share monotonically.\n")


def power_claim(workload: str, scale: float) -> None:
    print("3. energy per instruction at comparable area")
    rows = []
    for label, config in (("64:0 single", SINGLE), ("8:128 two-level", TWO)):
        energy = energy_per_instruction(config, workload, scale=scale)
        rows.append(
            (
                label,
                energy.l1_access_pj,
                energy.l2_access_pj,
                energy.on_chip_epi_pj,
                energy.epi_pj,
            )
        )
    print(
        render_table(
            ("config", "L1_access_pJ", "L2_access_pJ", "onchip_EPI_pJ", "EPI_pJ"),
            rows,
        )
    )
    print("-> most two-level accesses touch the small L1's short wires.\n")


def write_traffic(workload: str, scale: float) -> None:
    print("4. write-back traffic the paper's model hides")
    rows = []
    for policy in Policy:
        traffic = count_write_traffic(
            workload, kb(8), kb(64), 4, policy, scale=scale
        )
        rows.append(
            (
                policy.value,
                traffic.l1_dirty_victims,
                traffic.l1_writebacks_offchip,
                traffic.l2_dirty_evictions,
            )
        )
    print(
        render_table(
            ("policy", "dirty L1 victims", "direct off-chip", "L2 dirty evictions"),
            rows,
        )
    )
    result = evaluate_with_writes(
        SystemConfig(l1_bytes=kb(8), l2_bytes=kb(64)), workload, scale=scale
    )
    print(
        f"-> TPI with write-backs: {result.tpi_ns:.3f} ns vs "
        f"{result.baseline_tpi_ns:.3f} ns paper-model "
        f"(+{result.writeback_overhead:.1%}); the §2.2 abstraction is cheap."
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="gcc1")
    parser.add_argument("--scale", type=float, default=0.2)
    args = parser.parse_args()
    conjecture_multicycle(args.workload, args.scale)
    conjecture_nonblocking(args.workload, args.scale)
    power_claim(args.workload, args.scale)
    write_traffic(args.workload, args.scale)


if __name__ == "__main__":
    main()
