#!/usr/bin/env python3
"""Design-space exploration: what is the best cache organisation for a
given chip-area budget?

Run:
    python examples/design_space_exploration.py --workload li --budget 1e6

Sweeps the paper's full design space (single-level 1–256 KB and
two-level combinations with a 4-way L2), draws the best-performance
envelope, and answers the designer's question the paper poses in §3:
given N rbe of die area, which configuration minimises TPI — and is it
one or two levels?
"""

from __future__ import annotations

import argparse

from repro import SystemConfig, best_envelope, design_space, kb, sweep
from repro.core.envelope import envelope_tpi_at
from repro.study.report import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="li")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument(
        "--budget",
        type=float,
        default=1e6,
        help="available chip area in rbe (the paper's X axis)",
    )
    parser.add_argument("--off-chip-ns", type=float, default=50.0)
    args = parser.parse_args()

    template = SystemConfig(l1_bytes=kb(1), off_chip_ns=args.off_chip_ns)
    configs = design_space(template)
    print(
        f"sweeping {len(configs)} configurations on {args.workload} "
        f"(off-chip {args.off_chip_ns:g} ns)..."
    )
    perfs = sweep(args.workload, configs, scale=args.scale)

    envelope = best_envelope(perfs)
    rows = [
        (
            point.label,
            point.area_rbe,
            point.tpi_ns,
            "two-level" if point.performance.config.has_l2 else "single-level",
        )
        for point in envelope
    ]
    print()
    print("best-performance envelope (the paper's staircase):")
    print(render_table(("config", "area_rbe", "tpi_ns", "levels"), rows))

    print()
    fitting = [p for p in envelope if p.area_rbe <= args.budget]
    if not fitting:
        print(f"no configuration fits in {args.budget:,.0f} rbe")
        return
    choice = fitting[-1]
    print(
        f"within {args.budget:,.0f} rbe the best configuration is "
        f"{choice.label} ({choice.performance.config.describe()})"
    )
    print(
        f"TPI {choice.tpi_ns:.3f} ns at {choice.area_rbe:,.0f} rbe "
        f"({args.budget - choice.area_rbe:,.0f} rbe left unused)"
    )

    # The paper's §3 punchline: using *all* the area can be worse.
    biggest = max(perfs, key=lambda p: p.area_rbe)
    if biggest.area_rbe <= args.budget and biggest.tpi_ns > choice.tpi_ns:
        print(
            f"note: simply building the largest caches ({biggest.label}) "
            f"would be {biggest.tpi_ns / choice.tpi_ns - 1:.1%} slower — "
            "leaving silicon unused beats growing the L1."
        )
    print()
    print(
        f"best TPI within budget (envelope lookup): "
        f"{envelope_tpi_at(envelope, args.budget):.3f} ns"
    )


if __name__ == "__main__":
    main()
