#!/usr/bin/env python3
"""Explore the analytical timing and area models on their own.

Run:
    python examples/timing_area_explorer.py [--size-kb 32] [--assoc 4]

Shows, for one cache geometry:
* the optimiser's chosen array organisation (Ndwl/Ndbl/Nspd and the tag
  array's triple) and the per-stage delay breakdown;
* how access/cycle time and area trade against each other across *all*
  feasible organisations (the fastest layout is never the smallest);
* the full size sweep the paper's Figure 1 plots.
"""

from __future__ import annotations

import argparse

from repro.area.model import cache_area, optimal_cache_area
from repro.cache.geometry import CacheGeometry
from repro.timing.model import access_and_cycle_time
from repro.timing.optimal import optimal_timing
from repro.timing.organization import enumerate_organizations
from repro.timing.technology import TECH_05UM
from repro.study.report import render_table
from repro.units import fmt_size, kb


def breakdown_report(size_bytes: int, assoc: int) -> None:
    result = optimal_timing(size_bytes, assoc)
    org = result.organization
    print(
        f"fastest organisation for {fmt_size(size_bytes)} "
        f"{'DM' if assoc == 1 else f'{assoc}-way'}: "
        f"data Ndwl/Ndbl/Nspd = {org.ndwl}/{org.ndbl}/{org.nspd}, "
        f"tag = {org.ntwl}/{org.ntbl}/{org.ntspd}"
    )
    print(
        f"access {result.access_ns:.2f} ns, cycle {result.cycle_ns:.2f} ns "
        f"(data side {result.data_side_ns:.2f}, tag side {result.tag_side_ns:.2f})"
    )
    rows = sorted(result.breakdown.items(), key=lambda kv: -kv[1])
    print(render_table(("stage", "delay_ns"), rows))
    print()


def organisation_tradeoff(size_bytes: int, assoc: int, top: int = 10) -> None:
    geometry = CacheGeometry(size_bytes, associativity=assoc)
    candidates = []
    for org in enumerate_organizations(geometry):
        timing = access_and_cycle_time(geometry, org, TECH_05UM)
        area = cache_area(geometry, org)
        candidates.append((timing.cycle_ns, area.total, org))
    candidates.sort(key=lambda c: c[0])
    print(f"fastest {top} organisations (of {len(candidates)}) and their area cost:")
    rows = [
        (
            f"{org.ndwl}/{org.ndbl}/{org.nspd}",
            f"{org.ntwl}/{org.ntbl}/{org.ntspd}",
            cycle,
            area,
        )
        for cycle, area, org in candidates[:top]
    ]
    print(render_table(("data org", "tag org", "cycle_ns", "area_rbe"), rows))
    slowest_small = min(candidates, key=lambda c: c[1])
    print(
        f"-> smallest layout would be {slowest_small[1]:,.0f} rbe but "
        f"{slowest_small[0]:.2f} ns; speed costs area (Sec 2.4).\n"
    )


def figure1_sweep() -> None:
    print("Figure 1 sweep (0.5um): size vs timing vs area")
    rows = []
    for size_kb in (1, 2, 4, 8, 16, 32, 64, 128, 256):
        size = kb(size_kb)
        timing = optimal_timing(size)
        area = optimal_cache_area(size)
        rows.append(
            (
                fmt_size(size),
                timing.access_ns,
                timing.cycle_ns,
                area.total,
                f"{area.cell_fraction:.0%}",
            )
        )
    print(
        render_table(
            ("size", "access_ns", "cycle_ns", "area_rbe", "cell fraction"), rows
        )
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size-kb", type=int, default=32)
    parser.add_argument("--assoc", type=int, default=4, choices=(1, 2, 4, 8))
    args = parser.parse_args()
    breakdown_report(kb(args.size_kb), args.assoc)
    organisation_tradeoff(kb(args.size_kb), args.assoc)
    figure1_sweep()


if __name__ == "__main__":
    main()
