#!/usr/bin/env python3
"""Exclusive vs conventional two-level caching (the paper's §8).

Run:
    python examples/exclusive_vs_inclusive.py [--workload gcc1]

Part 1 replays the paper's Figure 21 thought experiment on a toy
4-line L1 / 16-line L2 hierarchy.  Part 2 quantifies the policy gap on
a real workload across L2 sizes and associativities: exclusion behaves
like extra associativity *and* extra capacity, and the gap is largest
exactly where the paper says — when the L2 is not much bigger than the
L1s.
"""

from __future__ import annotations

import argparse

from repro import Policy, SystemConfig, evaluate, kb
from repro.cache.hierarchy import simulate_hierarchy
from repro.study.experiments.exclusion_demo import (
    LINE_A,
    LINE_B,
    LINE_E,
    alternating_trace,
)
from repro.study.report import render_table


def figure21_demo() -> None:
    print("Part 1: the paper's Figure 21 on a 4-line L1 / 16-line L2")
    rows = []
    for label, first, second in (
        ("(a) A,E collide in L2", LINE_A, LINE_E),
        ("(b) A,B collide in L1 only", LINE_A, LINE_B),
    ):
        trace = alternating_trace(first, second)
        for policy in Policy:
            stats = simulate_hierarchy(
                trace, 64, 256, 1, policy, warmup_fraction=0.5
            )
            rows.append(
                (label, policy.value, stats.l2_hits, stats.l2_misses)
            )
    print(render_table(("scenario", "policy", "l2_hits", "off_chip"), rows))
    print(
        "-> exclusion turns the L2-conflict thrash (a) into on-chip swaps;\n"
        "   with an L1-only conflict (b) both policies already keep both lines.\n"
    )


def workload_comparison(workload: str, scale: float) -> None:
    print(f"Part 2: policy gap on {workload} (8KB L1s, 50ns off-chip)")
    rows = []
    for l2_kb in (16, 32, 64, 128, 256):
        for assoc in (1, 4):
            tpis = {}
            for policy in Policy:
                config = SystemConfig(
                    l1_bytes=kb(8),
                    l2_bytes=kb(l2_kb),
                    l2_associativity=assoc,
                    policy=policy,
                )
                tpis[policy] = evaluate(config, workload, scale=scale)
            conv = tpis[Policy.CONVENTIONAL]
            excl = tpis[Policy.EXCLUSIVE]
            rows.append(
                (
                    f"8:{l2_kb}",
                    "DM" if assoc == 1 else f"{assoc}-way",
                    conv.tpi_ns,
                    excl.tpi_ns,
                    (conv.tpi_ns / excl.tpi_ns - 1.0) * 100.0,
                    conv.stats.l2_local_miss_rate,
                    excl.stats.l2_local_miss_rate,
                )
            )
    print(
        render_table(
            (
                "config",
                "L2 assoc",
                "conv_tpi_ns",
                "excl_tpi_ns",
                "speedup_%",
                "conv_l2_mr",
                "excl_l2_mr",
            ),
            rows,
        )
    )
    print(
        "-> the gap shrinks as the L2 grows (duplication matters less) and\n"
        "   exclusive-DM approaches conventional-4-way, as in Figures 22/5."
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="gcc1")
    parser.add_argument("--scale", type=float, default=0.2)
    args = parser.parse_args()
    figure21_demo()
    workload_comparison(args.workload, args.scale)


if __name__ == "__main__":
    main()
