#!/usr/bin/env python3
"""Dual-ported first-level caches (the paper's §6).

Run:
    python examples/dual_ported_study.py [--workload espresso]

A dual-ported L1 cell doubles the cache's area but lets a superscalar
core double its issue rate.  This script reproduces the §6 reasoning:

* same capacity: the dual-ported machine is always faster;
* same *area*: small machines prefer more capacity, large machines
  prefer more bandwidth — the crossover falls between ~50k and ~400k
  rbe depending on the workload;
* two-level systems combine dual-ported (fast, expensive) L1 cells with
  single-ported (dense) L2 cells and dominate for large areas.
"""

from __future__ import annotations

import argparse

from repro import SystemConfig, best_envelope, design_space, kb, sweep
from repro.core.envelope import envelope_tpi_at
from repro.core.explorer import standard_l1_sizes
from repro.study.report import render_table


def same_capacity_table(workload: str, scale: float) -> None:
    print("same capacity, single level: base cell vs dual-ported cell")
    rows = []
    for size in standard_l1_sizes():
        base = SystemConfig(l1_bytes=size)
        dual = base.dual_ported()
        b = sweep(workload, [base], scale=scale)[0]
        d = sweep(workload, [dual], scale=scale)[0]
        rows.append(
            (
                b.label,
                b.area_rbe,
                d.area_rbe,
                b.tpi_ns,
                d.tpi_ns,
                (b.tpi_ns / d.tpi_ns - 1.0) * 100.0,
            )
        )
    print(
        render_table(
            ("config", "base_area", "dual_area", "base_tpi", "dual_tpi", "gain_%"),
            rows,
        )
    )
    print("-> dual porting at equal capacity always helps (but costs area).\n")


def crossover_table(workload: str, scale: float) -> None:
    print("equal area: where does the dual-ported cell start to win?")
    base_perfs = sweep(
        workload, design_space(SystemConfig(l1_bytes=kb(1)), l2_sizes=[0]), scale=scale
    )
    dual_perfs = sweep(
        workload,
        design_space(SystemConfig(l1_bytes=kb(1)).dual_ported(), l2_sizes=[0]),
        scale=scale,
    )
    env_base = best_envelope(base_perfs)
    env_dual = best_envelope(dual_perfs)
    rows = []
    for budget in (3e4, 1e5, 3e5, 1e6, 3e6):
        b = envelope_tpi_at(env_base, budget)
        d = envelope_tpi_at(env_dual, budget)
        winner = "-" if b == d == float("inf") else ("dual" if d < b else "base")
        rows.append((f"{budget:,.0f}", b, d, winner))
    print(render_table(("area budget (rbe)", "base_tpi", "dual_tpi", "winner"), rows))
    print()


def two_level_hybrid(workload: str, scale: float) -> None:
    print("hybrid: dual-ported L1 over single-ported 4-way L2")
    dual_two_level = sweep(
        workload,
        design_space(SystemConfig(l1_bytes=kb(1)).dual_ported()),
        scale=scale,
    )
    env = best_envelope(dual_two_level)
    rows = [
        (
            p.label,
            p.area_rbe,
            p.tpi_ns,
            "two-level" if p.performance.config.has_l2 else "single-level",
        )
        for p in env
    ]
    print(render_table(("config", "area_rbe", "tpi_ns", "levels"), rows))
    two_level_corners = sum(1 for p in env if p.performance.config.has_l2)
    print(
        f"-> {two_level_corners}/{len(env)} envelope corners are two-level: "
        "high-bandwidth L1 cells make the dense L2 more attractive (Sec 6)."
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="espresso")
    parser.add_argument("--scale", type=float, default=0.2)
    args = parser.parse_args()
    same_capacity_table(args.workload, args.scale)
    crossover_table(args.workload, args.scale)
    two_level_hybrid(args.workload, args.scale)


if __name__ == "__main__":
    main()
