"""Vectorised direct-mapped filter vs the reference oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.directmap import NO_VICTIM, direct_mapped_filter
from repro.cache.reference import reference_direct_mapped_filter
from repro.errors import GeometryError


class TestBasics:
    def test_empty_stream(self):
        result = direct_mapped_filter(np.array([], dtype=np.int64), 4)
        assert result.n_refs == 0
        assert result.n_misses == 0
        assert result.miss_rate == 0.0

    def test_single_reference_is_cold_miss(self):
        result = direct_mapped_filter(np.array([7]), 4)
        assert result.miss_mask.tolist() == [True]
        assert result.victims.tolist() == [NO_VICTIM]

    def test_repeat_hits(self):
        result = direct_mapped_filter(np.array([5, 5, 5]), 4)
        assert result.miss_mask.tolist() == [True, False, False]

    def test_conflict_evicts_and_reports_victim(self):
        # lines 1 and 5 share set 1 of a 4-set cache
        result = direct_mapped_filter(np.array([1, 5, 1]), 4)
        assert result.miss_mask.tolist() == [True, True, True]
        assert result.victims.tolist() == [NO_VICTIM, 1, 5]

    def test_distinct_sets_do_not_conflict(self):
        result = direct_mapped_filter(np.array([0, 1, 2, 3, 0, 1, 2, 3]), 4)
        assert result.n_misses == 4

    def test_single_set_cache(self):
        result = direct_mapped_filter(np.array([3, 9, 3]), 1)
        assert result.miss_mask.tolist() == [True, True, True]
        assert result.victims.tolist() == [NO_VICTIM, 3, 9]

    def test_rejects_bad_set_count(self):
        with pytest.raises(GeometryError):
            direct_mapped_filter(np.array([1]), 0)

    def test_miss_rate(self):
        result = direct_mapped_filter(np.array([1, 1, 1, 2]), 4)
        assert result.miss_rate == pytest.approx(0.5)


class TestAgainstReference:
    @settings(max_examples=200, deadline=None)
    @given(
        lines=st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=300),
        n_sets=st.sampled_from([1, 2, 4, 8, 16]),
    )
    def test_matches_reference_on_random_streams(self, lines, n_sets):
        fast = direct_mapped_filter(np.array(lines, dtype=np.int64), n_sets)
        ref_miss, ref_victims = reference_direct_mapped_filter(lines, n_sets)
        assert fast.miss_mask.tolist() == ref_miss
        assert fast.victims.tolist() == ref_victims

    @settings(max_examples=50, deadline=None)
    @given(
        lines=st.lists(
            st.integers(min_value=0, max_value=2**40), min_size=1, max_size=100
        ),
    )
    def test_huge_addresses(self, lines):
        fast = direct_mapped_filter(np.array(lines, dtype=np.int64), 8)
        ref_miss, ref_victims = reference_direct_mapped_filter(lines, 8)
        assert fast.miss_mask.tolist() == ref_miss
        assert fast.victims.tolist() == ref_victims


class TestInvariants:
    @settings(max_examples=100, deadline=None)
    @given(
        lines=st.lists(st.integers(min_value=0, max_value=64), min_size=1, max_size=200),
        n_sets=st.sampled_from([1, 2, 4, 8]),
    )
    def test_victims_only_on_misses_and_differ_from_line(self, lines, n_sets):
        arr = np.array(lines, dtype=np.int64)
        result = direct_mapped_filter(arr, n_sets)
        for i in range(len(arr)):
            if not result.miss_mask[i]:
                assert result.victims[i] == NO_VICTIM
            elif result.victims[i] != NO_VICTIM:
                # victim shares the set but is a different line
                assert result.victims[i] % n_sets == arr[i] % n_sets
                assert result.victims[i] != arr[i]

    @settings(max_examples=100, deadline=None)
    @given(
        lines=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=200),
    )
    def test_fully_sized_cache_only_cold_misses(self, lines):
        # With >= one set per possible line, misses == unique lines.
        arr = np.array(lines, dtype=np.int64)
        result = direct_mapped_filter(arr, 31)
        assert result.n_misses == len(set(lines))
