"""REP005 positive fixture: invalid literal cache shapes."""

from repro.cache.geometry import CacheGeometry
from repro.units import kb

NOT_POW2 = CacheGeometry(3000)  # finding: 3000 not a power of two
BAD_LINE = CacheGeometry(kb(4), line_size=24)  # finding: line size not pow2
LINE_TOO_BIG = CacheGeometry(16, line_size=32)  # finding: line > cache
BAD_ASSOC = CacheGeometry(kb(4), associativity=0)  # finding: assoc < 1
RAGGED_SETS = CacheGeometry(64, line_size=16, associativity=8)  # finding: no whole sets
BAD_EXPR = CacheGeometry(3 * 1000)  # finding: computed literal, still invalid
