"""REP005 suppressed fixture: an explained invalid shape."""

from repro.cache.geometry import CacheGeometry

# repro: lint-ok[REP005] demonstrates the error message text in docs output
DOC_EXAMPLE = CacheGeometry(3000)
