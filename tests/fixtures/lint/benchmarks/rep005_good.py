"""REP005 negative fixture: valid shapes, dynamic shapes, raises-blocks."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.errors import GeometryError
from repro.units import kb

L1 = CacheGeometry(kb(8))
L2 = CacheGeometry(kb(64), associativity=4)
EXPR = CacheGeometry(64 * 1024, line_size=16, associativity=4)
SHIFTED = CacheGeometry(1 << 15)


def build(size_bytes):
    return CacheGeometry(size_bytes)  # dynamic: not judged statically


def test_rejects_bad_size():
    with pytest.raises(GeometryError):
        CacheGeometry(3000)  # deliberately invalid: exempt inside raises
