"""REP010 true positive: model code nondeterministic via a helper."""

from repro.traces import helpers


def miss_rate(config):
    # helpers.jitter looks pure from here, but it reads time.time()
    # two hops down — this result changes between identical runs.
    return 0.01 + helpers.jitter(config)
