"""Helpers outside the model dirs; REP002 does not police this file."""

import time


def jitter(config):
    return stamp() * 1e-9


def stamp():
    return time.time()
