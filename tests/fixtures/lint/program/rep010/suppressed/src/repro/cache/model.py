"""REP010 suppressed: documented nondeterminism at the frontier."""

from repro.traces import helpers


def miss_rate(config):
    return 0.01 + helpers.jitter(config)  # repro: lint-ok[REP010] demo-only wobble, not persisted
