"""Clock-reading helper shared by the suppressed tree."""

import time


def jitter(config):
    return time.time() * 1e-9
