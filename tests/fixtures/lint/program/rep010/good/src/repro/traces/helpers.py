"""Pure helper: a function of its inputs only."""


def scale(config):
    return config * 2
