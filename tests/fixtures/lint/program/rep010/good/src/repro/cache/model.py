"""REP010 avoided false positives: pure helpers and the execution layer."""

from repro.runner import clock
from repro.traces import helpers


def miss_rate(config):
    return 0.01 + helpers.scale(config)


def timed_probe(config):
    # Calling into the runner is fine: the execution layer owns clocks
    # and never feeds timing back into model results.
    clock.mark("probe")
    return miss_rate(config)
