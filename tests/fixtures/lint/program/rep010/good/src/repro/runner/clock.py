"""Execution-layer timing: clocks are this package's business."""

import time

_MARKS = {}


def mark(label):
    _MARKS[label] = time.monotonic()
