"""Helpers for the clean tree: one blocking (always bridged), one async."""

import asyncio
import time


def settle(request):
    time.sleep(0.01)
    return request


async def async_settle(request):
    await asyncio.sleep(0)
    return request
