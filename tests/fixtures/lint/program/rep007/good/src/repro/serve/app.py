"""REP007 avoided false positives: bridges, async callees, unknown callees."""

import asyncio

from . import helpers


async def handle(request):
    # Blocking helper, but bridged onto the default executor: safe.
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, helpers.settle, request)


async def delegate(request):
    # Async callee: awaiting it never blocks the loop.
    return await helpers.async_settle(request)


async def dispatch(request, name):
    # Dynamic lookup: the callee is unknown, which is "not proven
    # blocking", not "blocking" — no finding without evidence.
    target = getattr(helpers, name)
    return target(request)
