"""REP007 suppressed: the blocking chain is documented at the frontier."""

from . import helpers


async def warmup(request):
    # Runs once before the server accepts connections; blocking here is
    # deliberate and cheaper than threading the bridge through startup.
    return helpers.relay(request)  # repro: lint-ok[REP007] startup path; loop not serving yet
