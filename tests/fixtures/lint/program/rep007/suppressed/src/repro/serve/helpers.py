"""Blocking helper chain shared by the suppressed tree."""

import time


def relay(request):
    return settle(request)


def settle(request):
    time.sleep(0.01)
    return request
