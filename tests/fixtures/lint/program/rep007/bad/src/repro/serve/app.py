"""REP007 true positive: a handler blocking two calls below the surface."""

from . import helpers


async def handle(request):
    # Looks innocent: helpers.relay is sync and lints clean per-file,
    # but it bottoms out in time.sleep two hops down.
    return helpers.relay(request)
