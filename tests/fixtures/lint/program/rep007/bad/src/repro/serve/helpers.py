"""Sync helpers; each file lints clean under the per-file rules."""

import time


def relay(request):
    return settle(request)


def settle(request):
    time.sleep(0.01)
    return request
