"""REP008 avoided false positives: module-level callables, however routed."""

import functools

from repro.runner.engine import RunUnit

from . import bodies

DIRECT = RunUnit(unit_id="u1", payload={}, run=bodies.compute)

VIA_WRAPPER = RunUnit(unit_id="u2", payload={}, run=bodies.make_body())

VIA_PARTIAL = RunUnit(
    unit_id="u3",
    payload={},
    run=functools.partial(bodies.compute, 1),
)
