"""Unit bodies that stay picklable through every routing shape."""


def compute(*args):
    return sum(range(4))


def make_body():
    # Returns a module-level function, not a lambda: picklable.
    return compute
