"""Unit-body factory shared by the suppressed tree."""


def make_body():
    return lambda: 2
