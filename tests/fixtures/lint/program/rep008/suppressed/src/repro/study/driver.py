"""REP008 suppressed: serial-only unit, documented at the site."""

from repro.runner.engine import RunUnit

from . import bodies

SERIAL_ONLY = RunUnit(
    unit_id="u1",
    payload={},
    run=bodies.make_body(),
)  # repro: lint-ok[REP008] serial-only demo unit; never reaches PoolRunner
