"""Unit-body factories that leak unpicklable callables."""

MODULE_LAMBDA = lambda *args: 1  # noqa: E731


def make_body():
    return lambda: 2
