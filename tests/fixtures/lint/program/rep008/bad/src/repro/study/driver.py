"""REP008 true positives: lambdas smuggled into RunUnit via indirection.

REP004 catches ``run=lambda: ...`` in the literal; these three shapes
hide the lambda behind a name, a wrapper call, and a partial — each
file lints clean under REP004 alone.
"""

import functools

from repro.runner.engine import RunUnit

from . import bodies

BY_NAME = RunUnit(unit_id="u1", payload={}, run=bodies.MODULE_LAMBDA)

BY_WRAPPER = RunUnit(unit_id="u2", payload={}, run=bodies.make_body())

BY_PARTIAL = RunUnit(
    unit_id="u3",
    payload={},
    run=functools.partial(bodies.MODULE_LAMBDA, 1),
)
