"""Typed raises, allowed builtins, and an unreachable helper."""

from .errors import ConfigError, Halt


def load_config(path):
    text = read_text(path)
    if not text:
        raise ConfigError(f"empty config: {path}")
    if text == "halt":
        raise Halt()
    if path is None:
        raise TypeError("path must be a string")
    return text


def read_text(path):
    with open(path) as handle:
        return handle.read()


def never_called(path):
    # Not reachable from any CLI entry point: out of REP009's scope
    # even though the raise is untyped.
    raise OSError(f"unreachable: {path}")
