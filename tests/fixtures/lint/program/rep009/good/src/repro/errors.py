"""Fixture error hierarchy mirroring repro.errors."""


class ReproError(Exception):
    pass


class ConfigError(ReproError):
    pass


class Halt(BaseException):
    # Crash-injection vehicle: derives from BaseException on purpose so
    # it bypasses main()'s ReproError handler.
    pass
