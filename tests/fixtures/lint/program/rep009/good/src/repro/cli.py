"""REP009 clean tree: every reachable raise is typed or allowed."""

from . import loader


def main(argv=None):
    return _cmd_show(argv)


def _cmd_show(argv):
    return loader.load_config("conf.json")
