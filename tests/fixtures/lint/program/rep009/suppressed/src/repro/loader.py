"""The stdlib raise is deliberate and documented at the raise site."""


def load_config(path):
    text = read_text(path)
    if not text:
        # repro: lint-ok[REP009] emulates a real ENOENT for the caller's retry logic
        raise OSError(f"empty config: {path}")
    return text


def read_text(path):
    with open(path) as handle:
        return handle.read()
