"""REP009 suppressed tree: same CLI shape as the bad tree."""

from . import loader


def main(argv=None):
    return _cmd_show(argv)


def _cmd_show(argv):
    return loader.load_config("conf.json")
