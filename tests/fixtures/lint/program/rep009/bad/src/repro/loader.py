"""A helper wrapping stdlib I/O; REP003 sees nothing wrong per-file."""


def load_config(path):
    text = read_text(path)
    if not text:
        # OSError is neither a ReproError nor an allowed builtin: it
        # escapes main()'s handler as a traceback.
        raise OSError(f"empty config: {path}")
    return text


def read_text(path):
    with open(path) as handle:
        return handle.read()
