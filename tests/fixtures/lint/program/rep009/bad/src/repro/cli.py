"""REP009 true positive: a CLI path that leaks a stdlib exception."""

from . import loader


def main(argv=None):
    return _cmd_show(argv)


def _cmd_show(argv):
    return loader.load_config("conf.json")
