"""REP011 avoided false positive: the write is routed through atomic."""

from repro.runner.atomic import write_text_atomic


def save_report(path, text):
    write_text_atomic(path, text)
