"""Sanctioned writer stub: the one module allowed to open for writing."""

import os


def write_text_atomic(path, text):
    tmp = str(path) + ".tmp"
    with open(tmp, "w") as handle:
        handle.write(text)
    os.replace(tmp, path)
