"""A raw-write helper; REP001 flags this file, REP011 flags its callers."""


def dump_raw(path, text):
    with open(path, "w") as handle:
        handle.write(text)
