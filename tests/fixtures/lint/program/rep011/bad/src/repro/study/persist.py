"""REP011 true positive: persisting code reaching a raw write via a helper."""

from . import io_helpers


def save_report(path, text):
    # A crash between the helper's write and return tears the artefact;
    # nothing revalidates it on --resume.
    io_helpers.dump_raw(path, text)
