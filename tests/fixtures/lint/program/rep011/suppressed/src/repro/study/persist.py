"""REP011 suppressed: a scratch file documented at the frontier."""

from . import io_helpers


def save_scratch(path, text):
    io_helpers.dump_raw(path, text)  # repro: lint-ok[REP011] scratch file, never an artefact
