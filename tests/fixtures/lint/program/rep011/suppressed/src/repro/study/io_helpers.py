"""Raw-write helper shared by the suppressed tree."""


def dump_raw(path, text):
    with open(path, "w") as handle:
        handle.write(text)
