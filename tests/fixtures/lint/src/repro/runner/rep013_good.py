"""REP013 negative fixture: shutdown routed through the lifecycle API."""


def run_units(units, cancel, run_one):
    """Cooperative drain: poll the supervisor's token between units."""
    outcomes = []
    for unit in units:
        if cancel is not None and cancel.cancelled:
            break
        outcomes.append(run_one(unit))
    return outcomes


def bounded(unit_timeout, budget_s, body):
    """Wall-clock budgets go through the sanctioned context manager."""
    with unit_timeout(budget_s):
        return body()


def fail(message):
    """Abnormal exits raise; the CLI entry point owns the exit code."""
    raise RuntimeError(message)
