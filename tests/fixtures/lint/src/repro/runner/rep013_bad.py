"""REP013 positive fixture: ad-hoc process control outside the lifecycle."""

import atexit
import os
import signal


def _on_term(signum, frame):
    raise SystemExit(1)


def install_handlers():
    signal.signal(signal.SIGTERM, _on_term)  # finding: replaces the supervisor
    signal.setitimer(signal.ITIMER_REAL, 5.0)  # finding: ad-hoc interval timer


def bail_out():
    os._exit(3)  # finding: skips the drain's journal/manifest flush


def register_cleanup(fn):
    atexit.register(fn)  # finding: shadow shutdown path
