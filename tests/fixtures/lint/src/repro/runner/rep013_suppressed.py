"""REP013 suppressed fixture: an explained hard exit."""

import os


def emulate_oom_kill():
    os._exit(86)  # repro: lint-ok[REP013] fault hook emulating a SIGKILLed worker; a catchable exception would not reproduce the failure mode
