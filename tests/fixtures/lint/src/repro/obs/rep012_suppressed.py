"""REP012 suppressed fixture: an explained direct clock read."""

import time


def startup_banner():
    return time.time()  # repro: lint-ok[REP012] one-shot process start stamp printed to stderr, never recorded as telemetry
