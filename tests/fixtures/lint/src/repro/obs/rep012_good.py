"""REP012 negative fixture: injected clock, context-managed spans."""

from contextlib import ExitStack


class Recorder:
    def __init__(self, tracer, clock):
        self.tracer = tracer
        self.clock = clock

    def stamp(self):
        return self.clock.wall()

    def measure(self, fn):
        started = self.clock.monotonic()
        value = fn()
        return value, self.clock.monotonic() - started

    def scoped(self, fn):
        with self.tracer.span("scoped") as span:
            span.set(kind="good")
            return fn()

    def stacked(self, fn):
        with ExitStack() as stack:
            stack.enter_context(self.tracer.span("stacked"))
            return fn()
