"""REP012 positive fixture: direct clocks and unentered spans in obs code."""

import time


class Recorder:
    def __init__(self, tracer):
        self.tracer = tracer

    def stamp(self):
        return time.time()  # finding: direct wall clock in the obs layer

    def measure(self, fn):
        started = time.monotonic()  # finding: direct monotonic read
        value = fn()
        return value, time.monotonic() - started  # finding: direct monotonic read

    def leak_assigned(self):
        pending = self.tracer.span("leak")  # finding: span never entered
        return pending

    def leak_statement(self):
        self.tracer.span("dropped")  # finding: span never entered
