"""REP004 suppressed fixture: a serial-only unit, explained."""

from repro.runner.engine import RunUnit


def build_serial_probe():
    return RunUnit(
        unit_id="probe",
        payload={},
        run=lambda: 0,  # repro: lint-ok[REP004] serial-only diagnostic probe, never reaches a pool
    )
