"""REP003 suppressed fixture: an explained untyped raise."""


def reraise_for_api_compat(value):
    if value is None:
        raise ValueError("mimics dict.__missing__ contract")  # repro: lint-ok[REP003] third-party protocol requires ValueError
    return value
