"""REP004 negative fixture: module-level bodies, parent-side closures."""

from dataclasses import dataclass

from repro.runner.engine import RunUnit


@dataclass(frozen=True)
class EvaluateOne:
    value: int

    def __call__(self):
        return self.value * 2


def record(value):
    return {"value": value}


def build_units(values, journal_dir):
    return [
        RunUnit(
            unit_id=f"unit-{value}",
            payload={"value": value},
            run=EvaluateOne(value),
            to_record=record,
            # parent-side hooks may close over anything:
            check_skip=lambda: journal_dir is not None,
            from_record=lambda stored: stored["value"],
        )
        for value in values
    ]
