"""REP003 negative fixture: typed raises, narrow excepts."""

from repro.errors import ConfigurationError, ReproError


def check_positive(n):
    if n <= 0:
        raise ConfigurationError("must be positive")
    if not isinstance(n, int):
        raise TypeError("n must be an int")  # programming error: allowed
    return n


def run_all(tasks):
    done = []
    for task in tasks:
        try:
            done.append(task())
        except ReproError:
            pass
    return done
