"""REP004 positive fixture: unpicklable bodies handed to RunUnit."""

from repro.runner.engine import RunUnit


def build_units(configs):
    def run_one():  # nested: cannot pickle to pool workers
        return sum(configs)

    units = [
        RunUnit(
            unit_id="lambda-unit",
            payload={},
            run=lambda: 1,  # finding: lambda body
        ),
        RunUnit(
            unit_id="nested-unit",
            payload={},
            run=run_one,  # finding: nested function body
        ),
        RunUnit("positional", {}, lambda: 2),  # finding: positional lambda
        RunUnit(
            unit_id="record-unit",
            payload={},
            run=run_one,  # finding: nested function body
            to_record=lambda value: {"v": value},  # finding: lambda serialiser
        ),
    ]
    return units
