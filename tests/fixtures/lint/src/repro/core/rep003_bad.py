"""REP003 positive fixture: untyped raises and a bare except."""


def check_positive(n):
    if n <= 0:
        raise ValueError("must be positive")  # finding: untyped raise
    return n


def run_all(tasks):
    done = []
    for task in tasks:
        try:
            done.append(task())
        except:  # finding: bare except
            pass
    if not done:
        raise RuntimeError("nothing ran")  # finding: untyped raise
    return done
