"""REP002 negative fixture: seeded, reproducible randomness."""

import numpy as np


def shuffled(values, seed: int):
    rng = np.random.default_rng(seed)  # seeded: deterministic
    out = np.array(values)
    rng.shuffle(out)
    return out


def generator_from_state(state: int):
    return np.random.Generator(np.random.PCG64(state))
