"""REP002 suppressed fixture: an explained wall-clock read."""

import time


def profile_only(fn):
    started = time.perf_counter()  # repro: lint-ok[REP002] timing diagnostics only, never persisted
    value = fn()
    return value, time.perf_counter() - started  # repro: lint-ok[REP002] same diagnostic timer
