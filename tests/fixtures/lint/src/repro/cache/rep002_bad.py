"""REP002 positive fixture: wall clocks and unseeded RNGs in model code."""

import random
import time
from datetime import datetime

import numpy as np


def timestamped_result(value):
    return {"value": value, "at": time.time()}  # finding: wall clock


def jittered(value):
    return value + random.random()  # finding: stdlib global RNG


def noisy(values):
    rng = np.random.default_rng()  # finding: unseeded generator
    return values + rng.normal(size=len(values))


def legacy(values):
    np.random.shuffle(values)  # finding: legacy global RNG
    return values


def dated():
    return datetime.now()  # finding: wall clock
