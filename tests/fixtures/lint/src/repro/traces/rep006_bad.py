"""REP006 positive fixture: artefact writes that never declare tracking."""

import json

from repro.runner import atomic_open, write_bytes_atomic
from repro.runner.atomic import write_text_atomic as persist_text


def save_report(path, rows):
    with atomic_open(path, "w") as handle:  # finding: no track= choice
        json.dump(rows, handle)


def save_table(path, text):
    persist_text(path, text)  # finding: aliased helper, still no track=


def save_blob(path, data):
    write_bytes_atomic(path, data)  # finding: no track= choice


def save_index(path, lines):
    persist_text(path, "\n".join(lines) + "\n")  # finding: no track= choice
