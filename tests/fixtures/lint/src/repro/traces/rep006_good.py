"""REP006 negative fixture: every write declares its tracking choice."""

import json

from repro.runner import atomic_open, write_bytes_atomic, write_text_atomic


def save_report(path, rows):
    with atomic_open(path, "w", track=True) as handle:  # persisted artefact
        json.dump(rows, handle)


def save_scratch(path, text):
    write_text_atomic(path, text, track=False)  # scratch output, opted out


def save_blob(path, data):
    write_bytes_atomic(path, data, track=True)


def save_forwarded(path, text, **kwargs):
    # A **kwargs passthrough may carry track=; not provable statically.
    write_text_atomic(path, text, **kwargs)


def load_report(path):
    with open(path) as handle:  # reads need no tracking choice
        return json.load(handle)
