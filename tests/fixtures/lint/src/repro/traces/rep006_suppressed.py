"""REP006 suppressed fixture: an explained untracked write."""

from repro.runner import write_text_atomic


def save_probe(path, text):
    write_text_atomic(path, text)  # repro: lint-ok[REP006] probe file is deleted before the run ends, nothing to verify


def save_probe_above(path, text):
    # repro: lint-ok[REP006] standalone-comment form, also explained
    write_text_atomic(path, text)
