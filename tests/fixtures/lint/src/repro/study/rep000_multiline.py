"""REP000 regression: suppressing a finding on a multiline statement.

The REP001 finding lands on the line of ``open(`` while the trailing
suppression comment sits three lines later on the closing paren; the
scanner must treat the whole logical line as covered.
"""

HANDLE = open(
    "artefact.json",
    "w",
)  # repro: lint-ok[REP001] regression fixture: comment on the closing-paren line
