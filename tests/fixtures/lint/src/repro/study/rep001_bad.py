"""REP001 positive fixture: direct artefact writes in library code."""

import gzip
import json
from pathlib import Path


def save_report(path, rows):
    with open(path, "w") as handle:  # finding: builtin open in write mode
        json.dump(rows, handle)


def save_manifest(out: Path, text: str) -> None:
    out.write_text(text)  # finding: Path.write_text


def save_blob(out: Path, data: bytes) -> None:
    out.write_bytes(data)  # finding: Path.write_bytes


def save_compressed(path, text):
    with gzip.open(path, mode="wt") as handle:  # finding: gzip open for write
        handle.write(text)
