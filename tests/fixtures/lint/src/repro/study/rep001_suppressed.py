"""REP001 suppressed fixture: an explained, deliberate direct write."""

from pathlib import Path


def corrupt_for_test(path: Path) -> None:
    path.write_bytes(b"torn")  # repro: lint-ok[REP001] simulates a torn write on purpose


def corrupt_above(path: Path) -> None:
    # repro: lint-ok[REP001] standalone-comment form, also explained
    path.write_bytes(b"torn")
