"""REP001 negative fixture: reads and atomic writes only."""

import json

from repro.runner import atomic_open, write_bytes_atomic, write_text_atomic


def load_report(path):
    with open(path) as handle:  # reads are fine
        return json.load(handle)


def load_strict(path):
    with open(path, "r") as handle:
        return handle.read()


def save_report(path, rows):
    with atomic_open(path, "w", track=True) as handle:
        json.dump(rows, handle)


def save_manifest(path, text):
    write_text_atomic(path, text, track=True)


def save_blob(path, data):
    write_bytes_atomic(path, data, track=True)
