"""Best-performance envelope: Pareto staircase properties."""

import math
from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.envelope import best_envelope, envelope_tpi_at


@dataclass(frozen=True)
class FakePerf:
    """Duck-typed stand-in: the envelope only reads area_rbe / tpi_ns."""

    area_rbe: float
    tpi_ns: float
    label: str = "x:y"


def fake_perf(area: float, tpi: float) -> FakePerf:
    return FakePerf(area_rbe=area, tpi_ns=tpi)


class TestBestEnvelope:
    def test_empty_input(self):
        assert best_envelope([]) == []

    def test_single_point(self):
        env = best_envelope([fake_perf(100.0, 5.0)])
        assert len(env) == 1
        assert env[0].area_rbe == 100.0
        assert env[0].tpi_ns == 5.0

    def test_dominated_point_excluded(self):
        points = [fake_perf(100.0, 5.0), fake_perf(200.0, 6.0)]
        env = best_envelope(points)
        assert [p.area_rbe for p in env] == [100.0]

    def test_improving_points_all_kept(self):
        points = [fake_perf(100.0, 5.0), fake_perf(200.0, 4.0), fake_perf(400.0, 3.0)]
        env = best_envelope(points)
        assert [p.tpi_ns for p in env] == [5.0, 4.0, 3.0]

    def test_tie_in_tpi_keeps_smaller_area(self):
        points = [fake_perf(200.0, 5.0), fake_perf(100.0, 5.0)]
        env = best_envelope(points)
        assert len(env) == 1
        assert env[0].area_rbe == 100.0

    def test_equal_area_keeps_better_tpi(self):
        points = [fake_perf(100.0, 5.0), fake_perf(100.0, 4.0)]
        env = best_envelope(points)
        assert len(env) == 1
        assert env[0].tpi_ns == 4.0

    def test_input_order_irrelevant(self):
        pts = [fake_perf(300.0, 3.0), fake_perf(100.0, 5.0), fake_perf(200.0, 4.0)]
        forward = best_envelope(pts)
        backward = best_envelope(list(reversed(pts)))
        assert [(p.area_rbe, p.tpi_ns) for p in forward] == [
            (p.area_rbe, p.tpi_ns) for p in backward
        ]

    def test_envelope_point_exposes_label(self):
        env = best_envelope([fake_perf(100.0, 5.0)])
        assert env[0].label == "x:y"

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=1e6),
                st.floats(min_value=0.1, max_value=100.0),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_staircase_properties(self, raw):
        points = [fake_perf(area, tpi) for area, tpi in raw]
        env = best_envelope(points)
        areas = [p.area_rbe for p in env]
        tpis = [p.tpi_ns for p in env]
        # strictly increasing area, strictly decreasing tpi
        assert all(a < b for a, b in zip(areas, areas[1:]))
        assert all(a > b for a, b in zip(tpis, tpis[1:]))
        # envelope reaches the global minimum tpi
        assert min(tpis) == pytest.approx(min(t for _, t in raw))
        # no input point dominates an envelope corner
        for point in env:
            for area, tpi in raw:
                assert not (area <= point.area_rbe and tpi < point.tpi_ns - 1e-9)


class TestEnvelopeTpiAt:
    def test_lookup_between_corners(self):
        env = best_envelope(
            [fake_perf(100.0, 5.0), fake_perf(200.0, 4.0), fake_perf(400.0, 3.0)]
        )
        assert envelope_tpi_at(env, 50.0) == math.inf
        assert envelope_tpi_at(env, 100.0) == 5.0
        assert envelope_tpi_at(env, 250.0) == 4.0
        assert envelope_tpi_at(env, 1e9) == 3.0

    def test_empty_envelope(self):
        assert envelope_tpi_at([], 100.0) == math.inf
