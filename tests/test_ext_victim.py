"""Victim-cache extension (Jouppi 1990 / the paper's y < x remark)."""

import numpy as np
import pytest

from repro.cache.hierarchy import Policy, simulate_hierarchy
from repro.errors import ConfigurationError
from repro.ext.victim import simulate_victim_cache
from repro.traces.address import Trace
from repro.units import kb


def conflict_trace(n_cycles: int = 64) -> Trace:
    """Data stream alternating two lines that share an L1 set."""
    i_addrs = np.zeros(n_cycles, dtype=np.int64)
    d_times = np.arange(n_cycles, dtype=np.int64)
    # For a 64 B (4-set) L1: lines 5 and 9 both map to set 1.
    d_lines = np.where(d_times % 2 == 0, 5, 9)
    return Trace("conflict", i_addrs, d_lines * 16, d_times)


class TestSemantics:
    def test_absorbs_simple_conflict_completely(self):
        trace = conflict_trace()
        stats = simulate_victim_cache(trace, 64, victim_lines=2, warmup_fraction=0.5)
        # Every post-warmup data miss swaps with the victim buffer.
        assert stats.victim_hit_rate == pytest.approx(1.0)
        assert stats.miss_rate_below == pytest.approx(0.0)

    def test_single_entry_buffer_still_works_for_two_way_pingpong(self):
        trace = conflict_trace()
        stats = simulate_victim_cache(trace, 64, victim_lines=1, warmup_fraction=0.5)
        assert stats.victim_hits == stats.l1_misses

    def test_no_victims_no_hits_on_cold_stream(self):
        # Strictly sequential lines never conflict, so the buffer only
        # ever receives cold-fill victims (none) and can never hit.
        i_addrs = np.arange(64, dtype=np.int64) * 16
        trace = Trace("seq", i_addrs, np.array([]), np.array([]))
        stats = simulate_victim_cache(trace, 64, victim_lines=4, warmup_fraction=0.0)
        assert stats.victim_hits == 0

    def test_validation(self, gcc1_tiny):
        with pytest.raises(ConfigurationError):
            simulate_victim_cache(gcc1_tiny, kb(4), victim_lines=0)
        with pytest.raises(ConfigurationError):
            simulate_victim_cache(gcc1_tiny, kb(4), warmup_fraction=1.5)


class TestAgainstExclusiveTinyL2:
    def test_bigger_buffer_never_hurts(self, gcc1_tiny):
        rates = [
            simulate_victim_cache(gcc1_tiny, kb(4), victim_lines=n).miss_rate_below
            for n in (1, 4, 16, 64)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:]))

    def test_l1_misses_match_plain_hierarchy(self, gcc1_tiny):
        """The buffer never changes L1 contents."""
        vc = simulate_victim_cache(gcc1_tiny, kb(4), victim_lines=8)
        plain = simulate_hierarchy(gcc1_tiny, kb(4))
        assert vc.l1_misses == plain.l1_misses

    def test_fully_associative_buffer_beats_dm_equivalent(self, gcc1_tiny):
        """The paper calls exclusive y<x 'a shared direct-mapped victim
        cache'; the genuine fully-associative buffer of the same
        capacity must do at least as well on conflict traffic."""
        lines = 64  # 1 KB worth of 16 B lines
        vc = simulate_victim_cache(gcc1_tiny, kb(4), victim_lines=lines)
        excl = simulate_hierarchy(
            gcc1_tiny, kb(4), lines * 16, 1, Policy.EXCLUSIVE
        )
        assert vc.miss_rate_below <= excl.global_miss_rate + 1e-3
