"""Associative-L1 (Hill, ref [3]) and split-vs-unified (intro adv. #1)."""

import pytest

from conftest import TINY
from repro.cache.hierarchy import simulate_hierarchy
from repro.errors import ConfigurationError
from repro.ext.associative_l1 import evaluate_associative_l1
from repro.ext.unified_l1 import compare_split_vs_unified
from repro.units import kb


class TestAssociativeL1:
    def test_dm_matches_fast_path_miss_rate(self, gcc1_tiny):
        """A=1 must reproduce the vectorised single-level simulation."""
        slow = evaluate_associative_l1(gcc1_tiny, kb(4), 1)
        fast = simulate_hierarchy(gcc1_tiny, kb(4))
        assert slow.l1_misses == fast.l1_misses
        assert slow.n_instructions == fast.n_instructions

    def test_miss_rate_falls_with_associativity(self, gcc1_tiny):
        rates = [
            evaluate_associative_l1(gcc1_tiny, kb(4), a).l1_miss_rate
            for a in (1, 2, 4)
        ]
        assert rates[0] >= rates[1] >= rates[2]

    def test_cycle_time_rises_with_associativity(self, gcc1_tiny):
        cycles = [
            evaluate_associative_l1(gcc1_tiny, kb(4), a).l1_cycle_ns
            for a in (1, 2, 4)
        ]
        assert cycles[0] < cycles[1] <= cycles[2]

    def test_hills_tradeoff_is_present(self, gcc1_tiny):
        """Hill's argument: associativity buys misses with cycle time.
        Whether DM wins depends on the penalty/cycle balance; the
        *tradeoff itself* (slower clock, fewer misses) must show, and
        the associative win must shrink as its time penalty is priced
        in (TPI gain < miss-rate gain)."""
        dm = evaluate_associative_l1(gcc1_tiny, kb(4), 1)
        sa = evaluate_associative_l1(gcc1_tiny, kb(4), 4)
        miss_gain = dm.l1_miss_rate / sa.l1_miss_rate
        tpi_gain = dm.tpi_ns / sa.tpi_ns
        assert tpi_gain < miss_gain

    def test_validation(self, gcc1_tiny):
        with pytest.raises(ConfigurationError):
            evaluate_associative_l1(gcc1_tiny, kb(4), 0)
        with pytest.raises(ConfigurationError):
            evaluate_associative_l1(gcc1_tiny, kb(4), 2, warmup_fraction=1.0)


class TestSplitVsUnified:
    def test_counts_consistent(self, gcc1_tiny):
        result = compare_split_vs_unified(gcc1_tiny, kb(4))
        assert result.n_refs == (
            simulate_hierarchy(gcc1_tiny, kb(4)).n_refs
        )
        assert result.split_misses == simulate_hierarchy(gcc1_tiny, kb(4)).l1_misses

    def test_associative_unified_beats_split(self):
        """The paper's advantage #1 materialises once the mixed cache
        is set-associative — which is exactly what its L2 is."""
        for workload in ("gcc1", "espresso"):
            result = compare_split_vs_unified(
                workload, kb(8), unified_associativity=4, scale=TINY
            )
            assert result.unified_miss_rate < result.split_miss_rate

    def test_dm_unified_can_lose_on_streaming(self):
        """...while a direct-mapped mixed cache lets streaming data
        evict code — half the reason L1s stay split."""
        result = compare_split_vs_unified("tomcatv", kb(8), scale=TINY)
        assert result.unified_miss_rate > result.split_miss_rate
        assert result.unified_advantage < 0

    def test_advantage_sign_convention(self, gcc1_tiny):
        result = compare_split_vs_unified(gcc1_tiny, kb(4), unified_associativity=4)
        assert result.unified_advantage == pytest.approx(
            1.0 - result.unified_misses / result.split_misses
        )

    def test_validation(self, gcc1_tiny):
        with pytest.raises(ConfigurationError):
            compare_split_vs_unified(gcc1_tiny, kb(4), warmup_fraction=-0.1)
