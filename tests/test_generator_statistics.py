"""Statistical properties of the synthetic trace generators."""

import numpy as np
import pytest

from repro.traces.synthetic import (
    InstructionModel,
    StreamComponent,
    SyntheticWorkload,
    ZipfComponent,
    _sample_zipf,
    _zipf_cdf,
)
from repro.units import kb


class TestZipfSampling:
    def test_cdf_shape(self):
        cdf = _zipf_cdf(100, 1.2)
        assert len(cdf) == 100
        assert cdf[-1] == pytest.approx(1.0)
        assert np.all(np.diff(cdf) > 0)

    def test_rank1_frequency_matches_theory(self):
        n, s = 50, 1.5
        cdf = _zipf_cdf(n, s)
        rng = np.random.default_rng(42)
        draws = _sample_zipf(rng, cdf, 100_000)
        expected = 1.0 / np.sum(np.arange(1, n + 1, dtype=float) ** (-s))
        measured = (draws == 0).mean()
        assert measured == pytest.approx(expected, rel=0.05)

    def test_higher_exponent_concentrates_mass(self):
        rng = np.random.default_rng(0)
        flat = _sample_zipf(rng, _zipf_cdf(1000, 1.0), 20_000)
        steep = _sample_zipf(rng, _zipf_cdf(1000, 2.0), 20_000)
        # Top-10 share grows with the exponent.
        assert (steep < 10).mean() > (flat < 10).mean()

    def test_all_ranks_in_range(self):
        rng = np.random.default_rng(1)
        draws = _sample_zipf(rng, _zipf_cdf(16, 1.3), 5000)
        assert draws.min() >= 0
        assert draws.max() < 16


class TestEffectiveWorkingSets:
    def _data_only(self, component, n=40_000):
        return SyntheticWorkload(
            "stat",
            InstructionModel(kb(4), 8, 1.2),
            [component],
            data_ratio=0.5,
        ).generate(n)

    def test_zipf_footprint_bounds_unique_lines(self):
        component = ZipfComponent(weight=1.0, footprint_bytes=kb(32), exponent=1.4)
        trace = self._data_only(component)
        unique = len(np.unique(trace.d_lines(16)))
        assert unique <= kb(32) // 16

    def test_steeper_exponent_smaller_hot_set(self):
        hot_sizes = {}
        for exponent in (1.1, 1.9):
            component = ZipfComponent(
                weight=1.0, footprint_bytes=kb(64), exponent=exponent
            )
            trace = self._data_only(component)
            lines, counts = np.unique(trace.d_lines(16), return_counts=True)
            counts = np.sort(counts)[::-1]
            cumulative = np.cumsum(counts) / counts.sum()
            hot_sizes[exponent] = int(np.searchsorted(cumulative, 0.9)) + 1
        assert hot_sizes[1.9] < hot_sizes[1.1]

    def test_stream_unique_lines_match_arrays(self):
        component = StreamComponent(
            weight=1.0, n_arrays=2, array_bytes=kb(4), stride_bytes=16
        )
        trace = self._data_only(component, n=30_000)
        unique = len(np.unique(trace.d_lines(16)))
        assert unique == 2 * (kb(4) // 16)


class TestInstructionStatistics:
    def test_run_length_matches_function_size(self):
        model = InstructionModel(footprint_bytes=kb(8), n_functions=16, exponent=1.3)
        workload = SyntheticWorkload(
            "runs",
            model,
            [ZipfComponent(weight=1.0, footprint_bytes=kb(4), exponent=1.3)],
            data_ratio=0.3,
        )
        trace = workload.generate(20_000)
        breaks = np.nonzero(np.diff(trace.i_addrs) != 4)[0]
        run_lengths = np.diff(np.concatenate([[0], breaks + 1]))
        # Runs are whole function bodies; occasionally two functions
        # that happen to be adjacent in the address map are called
        # back-to-back, merging runs — so the bound is a small multiple.
        assert run_lengths.max() <= 4 * model.function_instructions
        assert np.median(run_lengths) == model.function_instructions

    def test_popular_functions_dominate(self):
        model = InstructionModel(footprint_bytes=kb(32), n_functions=64, exponent=1.6)
        workload = SyntheticWorkload(
            "pop",
            model,
            [ZipfComponent(weight=1.0, footprint_bytes=kb(4), exponent=1.3)],
            data_ratio=0.3,
        )
        trace = workload.generate(50_000)
        functions = trace.i_addrs // model.function_bytes
        _, counts = np.unique(functions, return_counts=True)
        counts = np.sort(counts)[::-1]
        assert counts[:8].sum() > 0.5 * counts.sum()
