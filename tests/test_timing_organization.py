"""Array organisation enumeration and shape arithmetic."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.errors import ModelError
from repro.timing.organization import (
    ArrayOrganization,
    data_array_shape,
    enumerate_organizations,
    tag_array_shape,
    tag_bits_per_entry,
)
from repro.units import kb


class TestShapes:
    def test_data_shape_basic(self):
        g = CacheGeometry(kb(4))
        rows, cols = data_array_shape(g, 1, 1, 1)
        # 4KB / 16B lines = 256 rows; 16B * 8 = 128 columns
        assert rows == 256
        assert cols == 128

    def test_data_shape_splits(self):
        g = CacheGeometry(kb(4))
        rows, cols = data_array_shape(g, 2, 4, 1)
        assert rows == 64
        assert cols == 64

    def test_nspd_trades_rows_for_columns(self):
        g = CacheGeometry(kb(4))
        r1, c1 = data_array_shape(g, 1, 1, 1)
        r2, c2 = data_array_shape(g, 1, 1, 2)
        assert r2 == r1 // 2
        assert c2 == c1 * 2

    def test_infeasible_shape_raises(self):
        g = CacheGeometry(kb(1))  # 64 rows total
        with pytest.raises(ModelError):
            data_array_shape(g, 1, 128, 1)

    def test_tag_bits(self):
        g = CacheGeometry(kb(4))  # 256 sets, 16B lines -> 8 index, 4 offset
        # 32 - 8 - 4 = 20 tag bits + 2 status
        assert tag_bits_per_entry(g) == 22

    def test_tag_bits_shrink_with_size(self):
        small = tag_bits_per_entry(CacheGeometry(kb(1)))
        large = tag_bits_per_entry(CacheGeometry(kb(256)))
        assert small > large

    def test_tag_bits_grow_with_associativity(self):
        dm = tag_bits_per_entry(CacheGeometry(kb(64), associativity=1))
        sa = tag_bits_per_entry(CacheGeometry(kb(64), associativity=4))
        assert sa == dm + 2  # 4x fewer sets -> 2 more tag bits

    def test_tag_shape(self):
        g = CacheGeometry(kb(4), associativity=4)  # 64 sets
        rows, cols = tag_array_shape(g, 1, 1, 1)
        assert rows == 64
        assert cols == tag_bits_per_entry(g) * 4


class TestEnumeration:
    def test_every_candidate_is_feasible(self):
        g = CacheGeometry(kb(8))
        count = 0
        for org in enumerate_organizations(g):
            rows, cols = data_array_shape(g, org.ndwl, org.ndbl, org.nspd)
            trows, tcols = tag_array_shape(g, org.ntwl, org.ntbl, org.ntspd)
            assert rows >= 2 and cols >= 8
            assert trows >= 2 and tcols >= 8
            count += 1
        assert count > 10

    def test_small_cache_still_has_organizations(self):
        g = CacheGeometry(kb(1))
        assert sum(1 for _ in enumerate_organizations(g)) >= 1

    def test_non_pow2_parameters_rejected(self):
        with pytest.raises(ModelError):
            ArrayOrganization(3, 1, 1, 1, 1, 1)

    def test_subarray_counts(self):
        org = ArrayOrganization(2, 4, 1, 1, 2, 1)
        assert org.data_subarrays == 8
        assert org.tag_subarrays == 2
