"""The static-analysis engine: rules, suppressions, reporters, self-check."""

import json
from pathlib import Path

import pytest

import repro

from repro.analysis import (
    all_rules,
    lint_paths,
    lint_source,
    render_human,
    render_json,
    resolve_rules,
)
from repro.analysis.engine import LintReport, discover_files
from repro.cache.geometry import CacheGeometry, geometry_violations
from repro.errors import GeometryError, LintError

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"

RULE_FIXTURES = {
    "REP001": FIXTURES / "src" / "repro" / "study",
    "REP002": FIXTURES / "src" / "repro" / "cache",
    "REP003": FIXTURES / "src" / "repro" / "core",
    "REP004": FIXTURES / "src" / "repro" / "core",
    "REP005": FIXTURES / "benchmarks",
    "REP006": FIXTURES / "src" / "repro" / "traces",
    "REP012": FIXTURES / "src" / "repro" / "obs",
    "REP013": FIXTURES / "src" / "repro" / "runner",
}


def lint_fixture(name: str, rule: str) -> LintReport:
    directory = RULE_FIXTURES[rule]
    return lint_paths([directory / name], select=[rule])


class TestRegistry:
    def test_all_rules_catalogued(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == sorted(ids)
        for expected in (
            "REP000",
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
            "REP007",
            "REP008",
            "REP009",
            "REP010",
            "REP011",
        ):
            assert expected in ids

    def test_program_rules_are_program_scoped(self):
        by_id = {rule.rule_id: rule for rule in all_rules()}
        for rule_id in ("REP007", "REP008", "REP009", "REP010", "REP011"):
            assert by_id[rule_id].scope == "program"
        for rule_id in ("REP000", "REP001", "REP005"):
            assert by_id[rule_id].scope == "file"

    def test_every_rule_has_rationale(self):
        for rule in all_rules():
            assert rule.rationale
            assert rule.severity == "error"

    def test_select_and_ignore(self):
        assert [r.rule_id for r in resolve_rules(select=["REP001"])] == ["REP001"]
        remaining = [r.rule_id for r in resolve_rules(ignore=["REP001", "REP000"])]
        assert "REP001" not in remaining and "REP000" not in remaining

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(LintError):
            resolve_rules(select=["REP999"])
        with pytest.raises(LintError):
            resolve_rules(ignore=["bogus"])

    def test_filters_are_case_insensitive(self):
        assert [r.rule_id for r in resolve_rules(select=["rep001"])] == ["REP001"]


@pytest.mark.parametrize(
    "rule,n_bad",
    [
        ("REP001", 4),
        ("REP002", 5),
        ("REP003", 3),
        ("REP004", 5),
        ("REP005", 6),
        ("REP006", 4),
        ("REP012", 5),
        ("REP013", 4),
    ],
)
class TestRuleFixtures:
    def test_fires_on_violations(self, rule, n_bad):
        stem = f"{rule.lower()}_bad.py"
        report = lint_fixture(stem, rule)
        assert len(report.findings) == n_bad
        assert all(f.rule == rule for f in report.findings)
        assert all(f.line > 0 and f.col > 0 for f in report.findings)

    def test_silent_on_fixed_form(self, rule, n_bad):
        report = lint_fixture(f"{rule.lower()}_good.py", rule)
        assert report.clean

    def test_suppressed_with_reason(self, rule, n_bad):
        # REP000 active too: a reasoned suppression must not re-surface.
        directory = RULE_FIXTURES[rule]
        report = lint_paths(
            [directory / f"{rule.lower()}_suppressed.py"],
            select=[rule, "REP000"],
        )
        assert report.clean
        assert report.suppressed
        for finding in report.suppressed:
            assert finding.rule == rule
            assert finding.suppressed
            assert finding.suppression_reason


class TestSuppressionAudit:
    def test_reasonless_suppression_reported(self):
        findings, suppressed = lint_source(
            'open("artefact.json", "w")  # repro: lint-ok[REP001]\n',
            "src/repro/study/example.py",
        )
        rules = {f.rule for f in findings}
        assert rules == {"REP000", "REP001"}  # not suppressed, plus audit
        assert not suppressed

    def test_unknown_rule_in_suppression_reported(self):
        findings, _ = lint_source(
            "x = 1  # repro: lint-ok[REP999] not a rule\n",
            "src/repro/study/example.py",
        )
        assert [f.rule for f in findings] == ["REP000"]
        assert "unknown rule" in findings[0].message

    def test_unused_suppression_reported(self):
        findings, _ = lint_source(
            "x = 1  # repro: lint-ok[REP001] nothing to mask here\n",
            "src/repro/study/example.py",
        )
        assert [f.rule for f in findings] == ["REP000"]
        assert "masks nothing" in findings[0].message

    def test_suppression_examples_in_docstrings_are_inert(self):
        findings, _ = lint_source(
            '"""Docs: write # repro: lint-ok[REP001] reason on the line."""\n',
            "src/repro/study/example.py",
        )
        assert not findings

    def test_multiline_statement_trailing_suppression(self):
        # Regression: the comment sits on the closing-paren line but the
        # finding is reported at the call's first line; the suppression
        # covers the whole logical statement.
        findings, suppressed = lint_source(
            "open(\n"
            '    "artefact.json",\n'
            '    "w",\n'
            ")  # repro: lint-ok[REP001] trailing comment on a multiline call\n",
            "src/repro/study/example.py",
        )
        assert not findings
        assert [f.rule for f in suppressed] == ["REP001"]
        assert suppressed[0].line == 1

    def test_multiline_suppression_fixture(self):
        report = lint_paths(
            [RULE_FIXTURES["REP001"] / "rep000_multiline.py"],
            select=["REP000", "REP001"],
        )
        assert report.clean
        assert [f.rule for f in report.suppressed] == ["REP001"]

    def test_standalone_comment_masks_next_line(self):
        findings, suppressed = lint_source(
            "# repro: lint-ok[REP001] explained standalone form\n"
            'open("artefact.json", "w")\n',
            "src/repro/study/example.py",
        )
        assert not findings
        assert [f.rule for f in suppressed] == ["REP001"]


class TestEngine:
    def test_missing_target_is_lint_error(self):
        with pytest.raises(LintError):
            lint_paths([FIXTURES / "does_not_exist"])

    def test_unparsable_file_is_lint_error(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        with pytest.raises(LintError) as excinfo:
            lint_paths([bad])
        assert "broken.py" in str(excinfo.value)

    def test_discovery_skips_caches_and_output(self, tmp_path):
        (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
        (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "output").mkdir()
        (tmp_path / "pkg" / "output" / "gen.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "real.py").write_text("x = 1\n")
        files = discover_files([tmp_path])
        assert [f.name for f in files] == ["real.py"]

    def test_findings_are_sorted_and_deterministic(self):
        report = lint_paths([FIXTURES])
        keys = [f.sort_key() for f in report.findings]
        assert keys == sorted(keys)
        again = lint_paths([FIXTURES])
        assert report.findings == again.findings

    def test_parallel_matches_serial(self):
        serial = lint_paths([FIXTURES])
        parallel = lint_paths([FIXTURES], workers=2)
        assert serial.findings == parallel.findings
        assert serial.suppressed == parallel.suppressed
        assert serial.n_files == parallel.n_files


class TestReporters:
    def test_json_schema(self):
        report = lint_paths([RULE_FIXTURES["REP001"]], select=["REP001", "REP000"])
        payload = json.loads(render_json(report))
        assert payload["schema_version"] == 2
        assert payload["version"] == repro.__version__
        assert payload["cached"] == 0
        assert payload["clean"] is False
        assert payload["files"] == 4
        assert isinstance(payload["findings"], list)
        for row in payload["findings"]:
            assert set(row) == {"rule", "severity", "path", "line", "col", "message"}
        for row in payload["suppressed"]:
            assert "reason" in row and row["reason"]

    def test_human_rendering(self):
        report = lint_paths([RULE_FIXTURES["REP001"]], select=["REP001"])
        text = render_human(report)
        assert "REP001" in text
        assert "finding(s)" in text
        clean = lint_paths([RULE_FIXTURES["REP001"] / "rep001_good.py"])
        assert "clean" in render_human(clean)


class TestSharedGeometryPredicate:
    """REP005 and the runtime validator must agree exactly."""

    SHAPES = [
        (8192, 16, 1),
        (65536, 16, 4),
        (3000, 16, 1),
        (4096, 24, 1),
        (16, 32, 1),
        (4096, 16, 0),
        (64, 16, 8),
        (4096, 16, -1),
        (0, 16, 1),
        (-4096, 16, 1),
        (True, 16, 1),
        (4096, True, 1),
        (4096, 16, True),
        (4096.0, 16, 1),
    ]

    @pytest.mark.parametrize("size,line,assoc", SHAPES)
    def test_validator_raises_iff_predicate_flags(self, size, line, assoc):
        problems = geometry_violations(size, line, assoc)
        if problems:
            with pytest.raises(GeometryError):
                CacheGeometry(size, line_size=line, associativity=assoc)
        else:
            CacheGeometry(size, line_size=line, associativity=assoc)


class TestSelfCheck:
    def test_repo_is_lint_clean(self):
        """The contract the CI lint job enforces, enforced from pytest too."""
        targets = [REPO_ROOT / "src", REPO_ROOT / "benchmarks", REPO_ROOT / "examples"]
        report = lint_paths(targets)
        assert report.clean, render_human(report)
        # every suppression in the tree carries a reason (REP000 is on)
        for finding in report.suppressed:
            assert finding.suppression_reason
