"""Cache geometry validation and derived arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry, geometry_violations
from repro.errors import GeometryError
from repro.units import kb


class TestValidation:
    def test_valid_direct_mapped(self):
        g = CacheGeometry(kb(4))
        assert g.n_lines == 256
        assert g.n_sets == 256
        assert g.is_direct_mapped

    def test_valid_four_way(self):
        g = CacheGeometry(kb(64), associativity=4)
        assert g.n_lines == 4096
        assert g.n_sets == 1024
        assert not g.is_direct_mapped

    def test_fully_associative(self):
        g = CacheGeometry(256, line_size=16, associativity=16)
        assert g.is_fully_associative

    def test_non_pow2_size_rejected(self):
        with pytest.raises(GeometryError):
            CacheGeometry(3000)

    def test_non_pow2_line_rejected(self):
        with pytest.raises(GeometryError):
            CacheGeometry(kb(4), line_size=24)

    def test_line_exceeding_size_rejected(self):
        with pytest.raises(GeometryError):
            CacheGeometry(16, line_size=32)

    def test_zero_associativity_rejected(self):
        with pytest.raises(GeometryError):
            CacheGeometry(kb(4), associativity=0)

    def test_associativity_larger_than_lines_rejected(self):
        with pytest.raises(GeometryError):
            CacheGeometry(64, line_size=16, associativity=8)

    def test_zero_and_negative_sizes_rejected(self):
        with pytest.raises(GeometryError):
            CacheGeometry(0)
        with pytest.raises(GeometryError):
            CacheGeometry(-4096)

    @pytest.mark.parametrize(
        "shape",
        [
            dict(size_bytes=True),
            dict(size_bytes=kb(4), line_size=True),
            dict(size_bytes=kb(4), associativity=True),
        ],
    )
    def test_bool_dimensions_rejected(self, shape):
        # True == 1 numerically, but a bool is never a cache dimension.
        with pytest.raises(GeometryError):
            CacheGeometry(**shape)

    def test_violations_predicate_matches_validator(self):
        # The REP005 checker consumes geometry_violations directly; the
        # validator must raise exactly when it is non-empty.
        valid = geometry_violations(kb(8), 16, 1)
        assert valid == []
        problems = geometry_violations(3000, 24, 0)
        assert len(problems) == 3
        with pytest.raises(GeometryError) as excinfo:
            CacheGeometry(3000, line_size=24, associativity=0)
        for problem in problems:
            assert problem in str(excinfo.value)


class TestDerived:
    def test_set_index_wraps(self):
        g = CacheGeometry(kb(1))  # 64 sets
        assert g.set_index(0) == 0
        assert g.set_index(64) == 0
        assert g.set_index(65) == 1

    def test_labels(self):
        assert CacheGeometry(kb(32)).label() == "32K/DM"
        assert CacheGeometry(kb(64), associativity=4).label() == "64K/4-way"
        assert str(CacheGeometry(kb(1))) == "1K/DM"

    @given(
        st.sampled_from([kb(k) for k in (1, 2, 4, 8, 16, 32, 64, 128, 256)]),
        st.sampled_from([1, 2, 4, 8]),
    )
    def test_shape_identity(self, size, assoc):
        g = CacheGeometry(size, associativity=assoc)
        assert g.n_sets * g.associativity * g.line_size == g.size_bytes
