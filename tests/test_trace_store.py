"""Trace store: memoisation, scaling, environment handling."""

import pytest

from repro.errors import TraceError
from repro.traces.store import clear_trace_cache, default_scale, get_trace
from repro.traces.workloads import BASE_INSTRUCTIONS


class TestGetTrace:
    def test_memoised_identity(self):
        a = get_trace("espresso", 0.01)
        b = get_trace("espresso", 0.01)
        assert a is b

    def test_distinct_scales_distinct_traces(self):
        a = get_trace("espresso", 0.01)
        b = get_trace("espresso", 0.02)
        assert a is not b
        assert b.n_instructions == 2 * a.n_instructions

    def test_scale_sets_instruction_count(self):
        trace = get_trace("espresso", 0.05)
        assert trace.n_instructions == int(round(BASE_INSTRUCTIONS * 0.05))

    def test_unknown_workload(self):
        with pytest.raises(TraceError):
            get_trace("nosuch", 0.01)

    def test_clear_cache_forces_regeneration(self):
        a = get_trace("espresso", 0.01)
        clear_trace_cache()
        b = get_trace("espresso", 0.01)
        assert a is not b
        # content identical despite new object (determinism)
        assert a.n_refs == b.n_refs


class TestDefaultScale:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_SCALE", raising=False)
        assert default_scale() == 1.0

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.25")
        assert default_scale() == 0.25

    def test_env_not_a_number(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "lots")
        with pytest.raises(TraceError):
            default_scale()

    def test_env_nonpositive(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "-1")
        with pytest.raises(TraceError):
            default_scale()
