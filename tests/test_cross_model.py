"""Cross-model consistency: the layers must agree with each other."""

import pytest

from conftest import TINY
from repro.cache.hierarchy import Policy, simulate_hierarchy
from repro.core.config import SystemConfig
from repro.core.envelope import best_envelope, envelope_tpi_at
from repro.core.evaluate import evaluate, system_area_rbe
from repro.core.explorer import design_space, sweep
from repro.core.tpi import compute_tpi, system_timings
from repro.area.model import optimal_cache_area
from repro.power.energy import optimal_access_energy
from repro.timing.optimal import optimal_timing
from repro.traces.store import get_trace
from repro.units import kb


class TestEvaluateConsistency:
    def test_evaluate_equals_manual_pipeline(self, gcc1_tiny):
        """`evaluate` must be exactly simulate → compute_tpi → area."""
        config = SystemConfig(
            l1_bytes=kb(4), l2_bytes=kb(32), policy=Policy.EXCLUSIVE
        )
        perf = evaluate(config, gcc1_tiny)
        stats = simulate_hierarchy(
            gcc1_tiny, kb(4), kb(32), 4, Policy.EXCLUSIVE
        )
        assert perf.stats == stats
        assert perf.tpi_ns == pytest.approx(compute_tpi(config, stats).tpi_ns)
        assert perf.area_rbe == pytest.approx(system_area_rbe(config))

    def test_evaluate_by_name_uses_store(self):
        config = SystemConfig(l1_bytes=kb(2))
        by_name = evaluate(config, "espresso", scale=TINY)
        by_trace = evaluate(config, get_trace("espresso", TINY))
        assert by_name.stats == by_trace.stats

    def test_sweep_matches_individual_evaluates(self, gcc1_tiny):
        configs = design_space(
            SystemConfig(l1_bytes=kb(1)), l1_sizes=[kb(1), kb(2)], l2_sizes=[0, kb(8)]
        )
        swept = sweep("gcc1", configs, scale=TINY)
        for config, perf in zip(configs, swept):
            assert perf.tpi_ns == pytest.approx(
                evaluate(config, "gcc1", scale=TINY).tpi_ns
            )


class TestEnvelopeConsistency:
    def test_envelope_floor_is_min_of_sweep(self, gcc1_tiny):
        perfs = sweep("gcc1", design_space(SystemConfig(l1_bytes=kb(1))), scale=TINY)
        env = best_envelope(perfs)
        assert env[-1].tpi_ns == pytest.approx(min(p.tpi_ns for p in perfs))
        assert envelope_tpi_at(env, float("inf")) == pytest.approx(env[-1].tpi_ns)

    def test_every_corner_is_a_swept_point(self, gcc1_tiny):
        perfs = sweep("gcc1", design_space(SystemConfig(l1_bytes=kb(1))), scale=TINY)
        env = best_envelope(perfs)
        swept = {(p.label, round(p.tpi_ns, 9)) for p in perfs}
        for corner in env:
            assert (corner.label, round(corner.tpi_ns, 9)) in swept


class TestTimingAreaEnergyCoherence:
    """The three hardware models share geometry and must move together."""

    @pytest.mark.parametrize("size_kb", [1, 16, 256])
    def test_same_organisation_everywhere(self, size_kb):
        timing = optimal_timing(kb(size_kb))
        area = optimal_cache_area(kb(size_kb))
        energy = optimal_access_energy(kb(size_kb))
        # Area/energy are computed *for* the timing-optimal layout, so
        # all three exist and are positive; spot-check coherence by
        # recomputing area from the same organisation.
        from repro.area.model import cache_area
        from repro.cache.geometry import CacheGeometry

        recomputed = cache_area(
            CacheGeometry(kb(size_kb)), timing.organization
        )
        assert recomputed.total == pytest.approx(area.total)
        assert energy.total > 0

    def test_all_three_grow_with_size(self):
        sizes = [kb(k) for k in (1, 4, 16, 64, 256)]
        cycles = [optimal_timing(s).cycle_ns for s in sizes]
        areas = [optimal_cache_area(s).total for s in sizes]
        energies = [optimal_access_energy(s).total for s in sizes]
        for series in (cycles, areas, energies):
            assert all(a < b for a, b in zip(series, series[1:]))

    def test_timings_quantisation_consistency(self):
        config = SystemConfig(l1_bytes=kb(8), l2_bytes=kb(128))
        timings = system_timings(config)
        assert timings.l2_cycles * timings.l1_cycle_ns == pytest.approx(
            timings.l2_cycle_ns
        )


class TestMemoisationTransparency:
    def test_cache_hit_returns_equal_results(self, gcc1_tiny):
        config = SystemConfig(l1_bytes=kb(2), l2_bytes=kb(16))
        first = evaluate(config, gcc1_tiny)
        second = evaluate(config, gcc1_tiny)
        assert first.stats is second.stats  # memoised
        assert first.tpi_ns == second.tpi_ns

    def test_policy_variants_not_conflated(self, gcc1_tiny):
        conv = evaluate(
            SystemConfig(l1_bytes=kb(2), l2_bytes=kb(8)), gcc1_tiny
        )
        excl = evaluate(
            SystemConfig(l1_bytes=kb(2), l2_bytes=kb(8), policy=Policy.EXCLUSIVE),
            gcc1_tiny,
        )
        assert conv.stats != excl.stats
