"""Cross-process equivalence of the L1-filter / L2-replay decomposition.

The pool backend computes the memoised L1 filter pass inside worker
processes (pre-warmed by the sweep initializer), which means a
:class:`~repro.cache.hierarchy.MissStream` produced in one process may
feed an L2 replay in another.  These property tests prove that split
changes nothing: a stream computed in a child process is bit-identical
to the locally computed one, and a hierarchy result assembled from it
matches both the in-process fast path and the reference oracle.

Uses hypothesis when available, otherwise (and additionally, for
deterministic CI coverage) a seeded randomised grid.
"""

import atexit
import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import (
    DEFAULT_WARMUP_FRACTION,
    Policy,
    _simulate_l2,
    l1_miss_stream,
    simulate_hierarchy,
)
from repro.cache.reference import reference_simulate_hierarchy
from repro.cache.results import HierarchyStats
from repro.traces.address import Trace

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an optional extra
    HAVE_HYPOTHESIS = False

LINE_SIZE = 16

_CTX = multiprocessing.get_context(
    "fork" if "fork" in multiprocessing.get_all_start_methods() else None
)
_EXECUTOR = None


def child_executor() -> ProcessPoolExecutor:
    """A single shared one-worker pool (fresh process, own caches)."""
    global _EXECUTOR
    if _EXECUTOR is None:
        _EXECUTOR = ProcessPoolExecutor(max_workers=1, mp_context=_CTX)
        atexit.register(_EXECUTOR.shutdown)
    return _EXECUTOR


def _remote_l1_stream(trace: Trace, l1_bytes: int, line_size: int):
    """Child-process entry: run the L1 filter pass over a shipped trace."""
    return l1_miss_stream(trace, l1_bytes, line_size)


def make_trace(seed, n_instructions=300, n_lines=96, data_ratio=0.4):
    """A small uniformly-random trace (the adversarial no-locality case)."""
    rng = np.random.default_rng(seed)
    i_addrs = rng.integers(0, n_lines, size=n_instructions) * LINE_SIZE
    mask = rng.random(n_instructions) < data_ratio
    d_times = np.nonzero(mask)[0]
    d_addrs = rng.integers(0, n_lines, size=len(d_times)) * LINE_SIZE + (1 << 40)
    return Trace(f"rand{seed}", i_addrs, d_addrs, d_times)


def stats_from_stream(
    trace, stream, l2_bytes, l2_associativity, policy
) -> HierarchyStats:
    """Assemble hierarchy stats from an externally computed miss stream.

    Mirrors :func:`simulate_hierarchy` after its own L1 pass — the
    in-process comparison below fails loudly if the two ever drift.
    """
    warmup_time = int(trace.n_instructions * DEFAULT_WARMUP_FRACTION)
    counted = stream.times >= warmup_time
    l1i_misses = int((counted & stream.is_instruction).sum())
    l1d_misses = int((counted & ~stream.is_instruction).sum())
    n_instructions = trace.n_instructions - warmup_time
    n_data_refs = int(
        len(trace.d_times) - np.searchsorted(trace.d_times, warmup_time, side="left")
    )
    if l2_bytes == 0:
        return HierarchyStats(
            n_instructions=n_instructions,
            n_data_refs=n_data_refs,
            l1i_misses=l1i_misses,
            l1d_misses=l1d_misses,
            l2_hits=0,
            l2_misses=0,
            has_l2=False,
        )
    geometry = CacheGeometry(
        l2_bytes, line_size=LINE_SIZE, associativity=l2_associativity
    )
    hits, misses = _simulate_l2(stream, geometry, policy, warmup_time)
    return HierarchyStats(
        n_instructions=n_instructions,
        n_data_refs=n_data_refs,
        l1i_misses=l1i_misses,
        l1d_misses=l1d_misses,
        l2_hits=hits,
        l2_misses=misses,
        has_l2=True,
    )


def check_cross_process_equivalence(seed, l1_bytes, l2_bytes, assoc, policy):
    """The core property: child-computed L1 stream + parent L2 replay
    equals the in-process fast path equals the reference oracle."""
    trace = make_trace(seed)
    local_stream = l1_miss_stream(trace, l1_bytes, LINE_SIZE)
    remote_stream = child_executor().submit(
        _remote_l1_stream, trace, l1_bytes, LINE_SIZE
    ).result()

    # The stream survives the process boundary bit-identically.
    np.testing.assert_array_equal(local_stream.times, remote_stream.times)
    np.testing.assert_array_equal(local_stream.lines, remote_stream.lines)
    np.testing.assert_array_equal(local_stream.victims, remote_stream.victims)
    np.testing.assert_array_equal(
        local_stream.is_instruction, remote_stream.is_instruction
    )
    assert local_stream.l1i_misses == remote_stream.l1i_misses
    assert local_stream.l1d_misses == remote_stream.l1d_misses

    decomposed = stats_from_stream(trace, remote_stream, l2_bytes, assoc, policy)
    fast = simulate_hierarchy(
        trace,
        l1_bytes,
        l2_bytes,
        l2_associativity=assoc,
        policy=policy,
        line_size=LINE_SIZE,
    )
    oracle = reference_simulate_hierarchy(
        trace,
        l1_bytes,
        l2_bytes,
        l2_associativity=assoc,
        policy=policy,
        line_size=LINE_SIZE,
    )
    assert decomposed == fast
    assert decomposed == oracle


#: Deterministic seeded grid — always runs, and is the full coverage
#: when hypothesis is unavailable.
GRID = [
    (1, 256, 0, 1, Policy.CONVENTIONAL),
    (2, 256, 1024, 1, Policy.CONVENTIONAL),
    (3, 512, 2048, 4, Policy.CONVENTIONAL),
    (4, 512, 1024, 2, Policy.EXCLUSIVE),
    (5, 1024, 4096, 4, Policy.EXCLUSIVE),
    (6, 256, 4096, 1, Policy.EXCLUSIVE),
]


@pytest.mark.parametrize("seed,l1_bytes,l2_bytes,assoc,policy", GRID)
def test_cross_process_equivalence_grid(seed, l1_bytes, l2_bytes, assoc, policy):
    check_cross_process_equivalence(seed, l1_bytes, l2_bytes, assoc, policy)


if HAVE_HYPOTHESIS:

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        l1_bytes=st.sampled_from([256, 512, 1024]),
        l2_bytes=st.sampled_from([0, 1024, 2048, 4096]),
        assoc=st.sampled_from([1, 2, 4]),
        policy=st.sampled_from([Policy.CONVENTIONAL, Policy.EXCLUSIVE]),
    )
    def test_cross_process_equivalence_property(
        seed, l1_bytes, l2_bytes, assoc, policy
    ):
        check_cross_process_equivalence(seed, l1_bytes, l2_bytes, assoc, policy)


def test_workload_trace_round_trips_through_child(gcc1_tiny):
    """A realistic synthetic workload trace (not just random addresses)
    decomposes identically across the process boundary."""
    for policy in (Policy.CONVENTIONAL, Policy.EXCLUSIVE):
        remote_stream = child_executor().submit(
            _remote_l1_stream, gcc1_tiny, 1024, LINE_SIZE
        ).result()
        decomposed = stats_from_stream(gcc1_tiny, remote_stream, 8192, 4, policy)
        fast = simulate_hierarchy(
            gcc1_tiny, 1024, 8192, l2_associativity=4, policy=policy
        )
        assert decomposed == fast
