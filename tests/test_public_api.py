"""Public API surface: everything advertised must resolve and work."""

import importlib

import pytest

import repro


class TestTopLevelSurface:
    def test_all_symbols_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_docstring_quickstart_runs(self):
        """The module docstring promises this snippet works."""
        config = repro.SystemConfig(l1_bytes=repro.kb(8), l2_bytes=repro.kb(64))
        perf = repro.evaluate(config, "gcc1", scale=0.02)
        assert perf.tpi_ns > 0

    @pytest.mark.parametrize(
        "module",
        [
            "repro.traces",
            "repro.traces.io",
            "repro.cache",
            "repro.timing",
            "repro.area",
            "repro.power",
            "repro.core",
            "repro.ext",
            "repro.study",
            "repro.study.plot",
            "repro.study.sensitivity",
            "repro.cli",
        ],
    )
    def test_subpackages_importable_with_docstrings(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__) > 40

    def test_subpackage_alls_resolve(self):
        for module_name in ("repro.traces", "repro.cache", "repro.ext", "repro.power"):
            mod = importlib.import_module(module_name)
            for name in mod.__all__:
                assert hasattr(mod, name), f"{module_name}.{name}"


class TestWorkloadNamesStable:
    def test_the_seven_benchmarks(self):
        assert repro.workload_names() == [
            "gcc1",
            "espresso",
            "fpppp",
            "doduc",
            "li",
            "eqntott",
            "tomcatv",
        ]
