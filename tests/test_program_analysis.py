"""Whole-program analysis: call graph, taint, REP007-REP011, cache."""

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis import lint_paths, render_json
from repro.analysis.cache import LintCache, ruleset_key
from repro.analysis.program import link_program, summarize_source
from repro.errors import LintError

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint" / "program"
PROGRAM_RULES = ("REP007", "REP008", "REP009", "REP010", "REP011")


def build(files):
    """Link a program from {path: source} inline fixtures."""
    summaries = [
        summarize_source(source, path) for path, source in files.items()
    ]
    return link_program(summaries)


# ---------------------------------------------------------------------------
# Rule fixtures: one true positive, one avoided false positive, one
# documented suppression per interprocedural rule.


@pytest.mark.parametrize("rule", PROGRAM_RULES)
class TestProgramRuleFixtures:
    def test_fires_on_violations(self, rule):
        report = lint_paths(
            [FIXTURES / rule.lower() / "bad"], select=[rule], program=True
        )
        assert report.findings
        assert all(f.rule == rule for f in report.findings)
        assert all(f.line > 0 and f.col > 0 for f in report.findings)
        # Interprocedural findings carry the witness chain.
        assert any("->" in f.message or "repro." in f.message
                   for f in report.findings)

    def test_silent_on_fixed_form(self, rule):
        report = lint_paths(
            [FIXTURES / rule.lower() / "good"], select=[rule], program=True
        )
        assert report.clean

    def test_suppressed_with_reason(self, rule):
        # REP000 active too: a used program-rule suppression must not
        # be reported as unused by either audit.
        report = lint_paths(
            [FIXTURES / rule.lower() / "suppressed"],
            select=[rule, "REP000"],
            program=True,
        )
        assert report.clean
        assert report.suppressed
        for finding in report.suppressed:
            assert finding.rule == rule
            assert finding.suppression_reason


class TestProgramSuppressionAudit:
    def test_unused_program_suppression_reported(self, tmp_path):
        tree = tmp_path / "src" / "repro" / "serve"
        tree.mkdir(parents=True)
        (tree / "app.py").write_text(
            "async def handle(x):\n"
            "    return x  # repro: lint-ok[REP007] nothing blocks here\n"
        )
        report = lint_paths(
            [tmp_path / "src"], select=["REP007", "REP000"], program=True
        )
        assert [f.rule for f in report.findings] == ["REP000"]
        assert "masks nothing" in report.findings[0].message

    def test_program_suppression_not_audited_without_program(self, tmp_path):
        # The per-file phase must not judge a REP007 suppression it
        # cannot evaluate: without --program the suppression is neither
        # used nor reported unused.
        tree = tmp_path / "src" / "repro" / "serve"
        tree.mkdir(parents=True)
        (tree / "app.py").write_text(
            "async def handle(x):\n"
            "    return x  # repro: lint-ok[REP007] judged only by the program phase\n"
        )
        report = lint_paths([tmp_path / "src"], select=["REP000"])
        assert report.clean


class TestEngineContract:
    def test_program_rule_requires_program_flag(self, tmp_path):
        target = tmp_path / "x.py"
        target.write_text("x = 1\n")
        with pytest.raises(LintError) as excinfo:
            lint_paths([target], select=["REP007"])
        assert "--program" in str(excinfo.value)

    def test_program_rules_skipped_by_default(self):
        # Full rule set, no --program: the bad trees' violations are
        # interprocedural only, so nothing fires.
        report = lint_paths(
            [FIXTURES / "rep007" / "bad"], select=["REP007"], program=True
        )
        assert report.findings
        silent = lint_paths([FIXTURES / "rep007" / "bad"], ignore=["REP001"])
        assert not [f for f in silent.findings if f.rule in PROGRAM_RULES]

    def test_json_byte_identical_across_worker_counts(self):
        serial = lint_paths([FIXTURES], program=True, workers=1)
        parallel = lint_paths([FIXTURES], program=True, workers=4)
        assert render_json(serial) == render_json(parallel)
        assert serial.findings  # the comparison is not vacuous

    def test_syntax_error_in_program_phase_is_lint_error(self, tmp_path):
        tree = tmp_path / "src" / "repro"
        tree.mkdir(parents=True)
        (tree / "broken.py").write_text("def oops(:\n")
        with pytest.raises(LintError) as excinfo:
            lint_paths([tmp_path / "src"], select=["REP007"], program=True)
        assert "broken.py" in str(excinfo.value)


# ---------------------------------------------------------------------------
# Call-graph edge cases: conservative, never false-"safe".


class TestCallGraphEdgeCases:
    def test_decorated_function_still_resolves(self):
        program = build({
            "src/repro/serve/app.py": (
                "from . import util\n"
                "async def handle(x):\n"
                "    return util.slow(x)\n"
            ),
            "src/repro/serve/util.py": (
                "import functools, time\n"
                "def logged(fn):\n"
                "    return fn\n"
                "@logged\n"
                "def slow(x):\n"
                "    time.sleep(1)\n"
                "    return x\n"
            ),
        })
        handler = program.functions["repro.serve.app:handle"]
        (call,) = [c for c in handler.calls if c.kind == "call"]
        assert call.target == "repro.serve.util:slow"
        node = program.functions["repro.serve.util:slow"]
        assert "logged" in node.decorators

    def test_method_resolution_through_self(self):
        program = build({
            "src/repro/serve/app.py": (
                "from .memo import MemoStore\n"
                "class App:\n"
                "    def __init__(self):\n"
                "        self.memo = MemoStore()\n"
                "    def lookup(self, key):\n"
                "        return self.memo.load(key)\n"
            ),
            "src/repro/serve/memo.py": (
                "class MemoStore:\n"
                "    def load(self, key):\n"
                "        return None\n"
            ),
        })
        lookup = program.functions["repro.serve.app:App.lookup"]
        (call,) = [c for c in lookup.calls if c.kind == "call"]
        assert call.target == "repro.serve.memo:MemoStore.load"

    def test_reexported_name_chases_to_definition(self):
        program = build({
            "src/repro/runner/__init__.py": (
                "from .atomic import write_text_atomic\n"
            ),
            "src/repro/runner/atomic.py": (
                "def write_text_atomic(path, text):\n"
                "    return None\n"
            ),
            "src/repro/study/save.py": (
                "from repro.runner import write_text_atomic\n"
                "def save(path, text):\n"
                "    write_text_atomic(path, text)\n"
            ),
        })
        save = program.functions["repro.study.save:save"]
        (call,) = [c for c in save.calls if c.kind == "call"]
        assert call.target == "repro.runner.atomic:write_text_atomic"

    def test_dynamic_getattr_degrades_to_unknown(self):
        program = build({
            "src/repro/serve/app.py": (
                "from . import util\n"
                "def dispatch(name, x):\n"
                "    fn = getattr(util, name)\n"
                "    return fn(x)\n"
            ),
            "src/repro/serve/util.py": "def a(x):\n    return x\n",
        })
        dispatch = program.functions["repro.serve.app:dispatch"]
        targets = {
            (c.raw, c.target_kind) for c in dispatch.calls if c.kind == "call"
        }
        # getattr itself is external; fn(x) must stay unknown — an
        # unresolved callee is "not proven", never "safe".
        assert ("fn", "unknown") in targets

    def test_partial_argument_is_traversed_not_invoked(self):
        program = build({
            "src/repro/study/driver.py": (
                "import functools\n"
                "from . import bodies\n"
                "def launch(pool):\n"
                "    task = functools.partial(bodies.work, 1)\n"
                "    return pool.submit(task)\n"
            ),
            "src/repro/study/bodies.py": "def work(n):\n    return n\n",
        })
        launch = program.functions["repro.study.driver:launch"]
        kinds = {(c.raw, c.kind) for c in launch.calls}
        # bodies.work is referenced (reachability must see it) but not
        # called at this site.
        assert ("bodies.work", "ref") in kinds
        assert ("bodies.work", "call") not in kinds

    def test_collision_between_module_names_is_rekeyed(self):
        # Two files mapping to the same module name must not silently
        # merge their symbols.
        program = build({
            "a/src/repro/serve/app.py": "def one():\n    return 1\n",
            "b/src/repro/serve/app.py": "def two():\n    return 2\n",
        })
        names = {node.name for node in program.functions.values()}
        assert names == {"one", "two"}


class TestSummaryRoundTrip:
    def test_to_record_round_trips_through_json(self):
        source = (
            "import time\n"
            "from . import util\n"
            "class App:\n"
            "    def __init__(self):\n"
            "        self.x = util.Helper()\n"
            "    async def handle(self, req):\n"
            "        return self.x.go(req)\n"
            "def stamp():\n"
            "    return time.time()  # repro: lint-ok[REP002] fixture\n"
        )
        summary = summarize_source(source, "src/repro/serve/app.py")
        record = json.loads(json.dumps(summary.to_record()))
        restored = type(summary).from_record(record)
        assert restored == summary


# ---------------------------------------------------------------------------
# Seeded injection: the CI-style self-check catches a planted violation.


class TestSeededInjection:
    def test_injected_blocking_call_is_caught(self, tmp_path):
        src = tmp_path / "src"
        shutil.copytree(REPO_ROOT / "src", src)
        app = src / "repro" / "serve" / "app.py"
        injected = (
            "\n\n"
            "def _injected_helper_two():\n"
            "    import time\n"
            "    time.sleep(0.001)\n"
            "\n\n"
            "def _injected_helper_one():\n"
            "    _injected_helper_two()\n"
            "\n\n"
            "async def _injected_handler():\n"
            "    _injected_helper_one()\n"
        )
        app.write_text(app.read_text() + injected)
        report = lint_paths([src], select=["REP007"], program=True)
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule == "REP007"
        assert finding.path.endswith("serve/app.py")
        assert "_injected_helper_one" in finding.message

    def test_pristine_tree_is_program_clean(self):
        targets = [
            REPO_ROOT / "src",
            REPO_ROOT / "benchmarks",
            REPO_ROOT / "examples",
        ]
        report = lint_paths(targets, program=True)
        assert report.clean, "\n".join(
            f"{f.path}:{f.line} {f.rule} {f.message}" for f in report.findings
        )
        for finding in report.suppressed:
            assert finding.suppression_reason


# ---------------------------------------------------------------------------
# Content-hash cache.


class TestLintCache:
    def _tree(self, tmp_path):
        tree = tmp_path / "src" / "repro" / "study"
        tree.mkdir(parents=True)
        (tree / "a.py").write_text("def a():\n    return 1\n")
        (tree / "b.py").write_text(
            'def b(path):\n    path.write_text("x")\n'
        )
        return tmp_path / "src"

    def test_warm_run_hits_and_matches_cold(self, tmp_path):
        target = self._tree(tmp_path)
        cache = tmp_path / "cache.json"
        cold = lint_paths([target], cache=cache, program=True)
        assert cold.n_cached == 0
        assert cache.exists()
        warm = lint_paths([target], cache=cache, program=True)
        assert warm.n_cached == warm.n_files == 2
        assert warm.findings == cold.findings
        assert warm.suppressed == cold.suppressed

    def test_edit_invalidates_only_that_entry(self, tmp_path):
        target = self._tree(tmp_path)
        cache = tmp_path / "cache.json"
        lint_paths([target], cache=cache)
        (target / "repro" / "study" / "a.py").write_text(
            "def a():\n    return 2\n"
        )
        warm = lint_paths([target], cache=cache)
        assert warm.n_cached == 1  # b.py still cached, a.py re-linted

    def test_ruleset_change_discards_cache(self, tmp_path):
        target = self._tree(tmp_path)
        cache = tmp_path / "cache.json"
        lint_paths([target], cache=cache, select=["REP001"])
        warm = lint_paths([target], cache=cache, select=["REP002"])
        assert warm.n_cached == 0

    def test_corrupt_cache_is_a_miss_not_an_error(self, tmp_path):
        target = self._tree(tmp_path)
        cache = tmp_path / "cache.json"
        cache.write_text("{ not json")
        report = lint_paths([target], cache=cache)
        assert report.n_cached == 0
        assert cache.exists()  # rewritten atomically afterwards

    def test_ruleset_key_is_order_insensitive(self):
        assert ruleset_key("1.0.0", ["REP002", "REP001"]) == ruleset_key(
            "1.0.0", ["REP001", "REP002"]
        )
        assert ruleset_key("1.0.0", ["REP001"]) != ruleset_key(
            "1.0.1", ["REP001"]
        )

    def test_loaded_cache_rejects_wrong_key(self, tmp_path):
        path = tmp_path / "cache.json"
        first = LintCache.load(path, "key-a")
        first.store_findings("x.py", "sha", [], [])
        first.save()
        reloaded = LintCache.load(path, "key-b")
        assert not reloaded.entries
