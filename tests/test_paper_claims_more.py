"""Additional paper claims at moderate scale (complements
``test_paper_claims.py``, which runs the headline set at full scale)."""

import pytest

from conftest import MEDIUM
from repro.cache.hierarchy import Policy, simulate_hierarchy
from repro.core.config import SystemConfig
from repro.core.envelope import best_envelope
from repro.core.explorer import design_space, sweep
from repro.traces.store import get_trace
from repro.units import kb


@pytest.fixture(scope="module")
def traces():
    return {name: get_trace(name, MEDIUM) for name in ("gcc1", "espresso", "tomcatv", "li")}


class TestSection8AssociativityCapacityInteraction:
    """'the increase in capacity provided by two-level exclusive caching
    increases as the second level of caching is made more associative.'"""

    def test_exclusive_beats_conventional_at_both_associativities(self, traces):
        trace = traces["gcc1"]
        for assoc in (1, 4):
            conv = simulate_hierarchy(trace, kb(8), kb(32), assoc, Policy.CONVENTIONAL)
            excl = simulate_hierarchy(trace, kb(8), kb(32), assoc, Policy.EXCLUSIVE)
            assert excl.l2_misses < conv.l2_misses, assoc

    def test_combined_technique_beats_each_alone(self, traces):
        trace = traces["gcc1"]
        conv_dm = simulate_hierarchy(trace, kb(8), kb(32), 1, Policy.CONVENTIONAL)
        conv_4w = simulate_hierarchy(trace, kb(8), kb(32), 4, Policy.CONVENTIONAL)
        excl_dm = simulate_hierarchy(trace, kb(8), kb(32), 1, Policy.EXCLUSIVE)
        excl_4w = simulate_hierarchy(trace, kb(8), kb(32), 4, Policy.EXCLUSIVE)
        assert excl_4w.l2_misses <= min(conv_4w.l2_misses, excl_dm.l2_misses)
        # and both single techniques beat the plain baseline
        assert conv_4w.l2_misses < conv_dm.l2_misses
        assert excl_dm.l2_misses < conv_dm.l2_misses

    def test_exclusion_vs_associativity_comparable(self, traces):
        """§8: 'neither is found to be significantly more effective
        than the other' (gcc1)."""
        trace = traces["gcc1"]
        conv_4w = simulate_hierarchy(trace, kb(8), kb(32), 4, Policy.CONVENTIONAL)
        excl_dm = simulate_hierarchy(trace, kb(8), kb(32), 1, Policy.EXCLUSIVE)
        ratio = excl_dm.l2_misses / conv_4w.l2_misses
        assert 0.6 < ratio < 1.6


class TestSection4PerWorkload:
    def test_low_miss_rate_workloads_gain_least_from_l2(self, traces):
        """espresso's tiny working set leaves an L2 little to do."""

        def l2_benefit(trace):
            single = simulate_hierarchy(trace, kb(16))
            two = simulate_hierarchy(trace, kb(16), kb(128), 4)
            saved = single.off_chip_fetches - two.off_chip_fetches
            return saved / single.n_refs

        assert l2_benefit(traces["espresso"]) < l2_benefit(traces["gcc1"])

    def test_tomcatv_l2_benefit_is_small(self, traces):
        """Streaming defeats capacity: tomcatv's off-chip rate barely
        moves with a 256 KB L2 behind 8 KB L1s."""
        trace = traces["tomcatv"]
        single = simulate_hierarchy(trace, kb(8))
        two = simulate_hierarchy(trace, kb(8), kb(256), 4)
        assert two.global_miss_rate > 0.6 * single.global_miss_rate

    def test_li_mid_size_sweet_spot(self, traces):
        """li's envelope concentrates on small L1s with mid-size L2s."""
        perfs = sweep(
            "li", design_space(SystemConfig(l1_bytes=kb(1))), scale=MEDIUM
        )
        env = best_envelope(perfs)
        two_level = [p for p in env if p.performance.config.has_l2]
        assert two_level, "li must have two-level envelope corners"
        assert min(p.performance.config.l1_bytes for p in two_level) <= kb(16)


class TestSection6PerWorkload:
    @pytest.mark.parametrize("workload", ["espresso", "tomcatv"])
    def test_dual_ported_envelope_dominates_at_scale(self, workload):
        """§6: 'In eqntott and with all but 1KB caches in espresso the
        dual-ported cells are preferred' — low-miss-rate workloads value
        bandwidth over capacity; streaming tomcatv likewise crosses
        early."""
        base = sweep(
            workload,
            design_space(SystemConfig(l1_bytes=kb(1)), l2_sizes=[0]),
            scale=MEDIUM,
        )
        dual = sweep(
            workload,
            design_space(SystemConfig(l1_bytes=kb(1)).dual_ported(), l2_sizes=[0]),
            scale=MEDIUM,
        )
        # Same-capacity comparison: dual-ported always faster...
        for b, d in zip(base, dual):
            assert d.tpi_ns < b.tpi_ns
        # ...and at the large-area end it wins even per unit area.
        env_b = best_envelope(base)
        env_d = best_envelope(dual)
        assert env_d[-1].tpi_ns < env_b[-1].tpi_ns
