"""Chaos soak: seeded fault schedules, bit rot, byte-identical convergence.

These tests run the *composition* of every robustness mechanism in the
repository — journalled resume, retryable checkpoint errors, sidecar
verification, quarantine, and recipe-driven re-runs — against randomized
but seed-reproducible damage, and assert the one property that matters:
the soaked tree converges byte-identical with an undisturbed run.
"""

import json
import multiprocessing
import shutil

import pytest

from repro.cli import main
from repro.runner import tree_fingerprint, verify_tree
from repro.runner.integrity import SIDECAR_SUFFIX, is_volatile
from repro.study.chaos import ChaosResult, run_chaos, write_chaos_record
from repro.study.registry import _REGISTRY, ExperimentResult, Series, register
from repro.study.repair import verify_and_repair
from repro.study.resultstore import write_report

FORK = "fork" in multiprocessing.get_all_start_methods()
fork_only = pytest.mark.skipif(
    not FORK, reason="needs the fork start method to inherit parent state"
)


@pytest.fixture
def fake_experiments():
    """Register two tiny deterministic experiments; deregister after."""
    ids = ["unitA", "unitB"]

    def make(eid):
        def runner(scale):
            return ExperimentResult(
                experiment_id=eid,
                title=f"fake {eid}",
                series=(
                    Series(name="s", columns=("x", "y"), rows=((1, 2.0), (3, 4.0))),
                ),
            )

        register(eid, f"fake {eid}", "test")(runner)

    for eid in ids:
        make(eid)
    try:
        yield ids
    finally:
        for eid in ids:
            _REGISTRY.pop(eid, None)


class TestSoakConvergence:
    def test_serial_soak_converges(self, tmp_path, fake_experiments):
        result = run_chaos(
            tmp_path, seed=1, rounds=3, ids=fake_experiments, scale=None
        )
        assert result.converged, result.render()
        assert result.mismatches == []
        assert len(result.schedules) == 3
        # The converged soak tree is itself verifiably intact.
        assert verify_tree(tmp_path / "soak").clean

    def test_same_seed_reproduces_exactly(self, tmp_path, fake_experiments):
        first = run_chaos(
            tmp_path / "one", seed=7, rounds=3, ids=fake_experiments, scale=None
        )
        second = run_chaos(
            tmp_path / "two", seed=7, rounds=3, ids=fake_experiments, scale=None
        )
        assert first.schedules == second.schedules
        assert first.bitrot == second.bitrot
        assert first.converged and second.converged

    def test_distinct_seeds_draw_distinct_schedules(self, tmp_path, fake_experiments):
        drawn = set()
        for seed in (1, 2, 3):
            result = run_chaos(
                tmp_path / str(seed),
                seed=seed,
                rounds=3,
                ids=fake_experiments,
                scale=None,
            )
            assert result.converged, result.render()
            drawn.add(tuple(result.schedules))
        assert len(drawn) > 1

    @fork_only
    def test_pool_soak_converges(self, tmp_path, fake_experiments):
        result = run_chaos(
            tmp_path,
            seed=5,
            rounds=2,
            ids=fake_experiments,
            scale=None,
            workers=2,
        )
        assert result.converged, result.render()


class TestDetection:
    """Acceptance bar: verification flags 100% of injected damage."""

    def _targets(self, tree):
        targets = []
        for path in sorted(tree.rglob("*")):
            base = path.name
            if base.endswith(SIDECAR_SUFFIX):
                base = base[: -len(SIDECAR_SUFFIX)]
            if path.is_file() and not is_volatile(base):
                targets.append(path)
        return targets

    @pytest.mark.parametrize("mode", ["bitflip", "truncate"])
    def test_every_artifact_damage_is_detected(
        self, tmp_path, fake_experiments, mode
    ):
        pristine = tmp_path / "pristine"
        write_report(pristine, ids=fake_experiments)
        targets = self._targets(pristine)
        assert len(targets) >= 8  # json+txt+sidecars+RUN.json+INDEX+manifest

        for index, target in enumerate(targets):
            tree = tmp_path / f"case{mode}{index}"
            shutil.copytree(pristine, tree)
            victim = tree / target.relative_to(pristine)
            data = bytearray(victim.read_bytes())
            if mode == "bitflip":
                data[len(data) // 2] ^= 0x40
                victim.write_bytes(bytes(data))
            else:
                victim.write_bytes(bytes(data[: max(1, len(data) // 2)]))
            report = verify_tree(tree, repair=False)
            assert not report.clean, f"undetected {mode}: {victim.name}"

    def test_sidecar_name_field_flip_is_detected_and_healed(
        self, tmp_path, fake_experiments
    ):
        # A flip in the *name* portion of a sidecar leaves the digest
        # parsable and the artefact verifiable — only full-content
        # canonical-form checking catches it (chaos seed regression).
        tree = tmp_path / "report"
        write_report(tree, ids=fake_experiments)
        sidecar = tree / "unitA.txt.sha256"
        data = bytearray(sidecar.read_bytes())
        data[-3] ^= 0x20  # 'x' in ".txt" changes case
        sidecar.write_bytes(bytes(data))

        report = verify_tree(tree, repair=False)
        assert [f.kind for f in report.findings] == ["corrupt-sidecar"]
        assert verify_and_repair(tree).clean
        reference = tmp_path / "reference"
        write_report(reference, ids=fake_experiments)
        assert tree_fingerprint(tree) == tree_fingerprint(reference)

    def test_detected_damage_is_repairable(self, tmp_path, fake_experiments):
        tree = tmp_path / "report"
        write_report(tree, ids=fake_experiments)
        victim = tree / "unitA.json"
        victim.write_bytes(victim.read_bytes()[:10])
        before = tree_fingerprint(tmp_path / "report")

        outcome = verify_and_repair(tree)
        assert outcome.clean
        after = tree_fingerprint(tmp_path / "report")
        assert before != after  # the damaged artefact really was replaced
        reference = tmp_path / "reference"
        write_report(reference, ids=fake_experiments)
        assert after == tree_fingerprint(reference)


class TestChaosRecord:
    def test_record_round_trips_as_json(self, tmp_path):
        result = ChaosResult(
            seed=3,
            rounds=2,
            schedules=["fail=unitA:1", ""],
            bitrot=["unitA.json"],
            reran=["soak"],
            quarantined=1,
            converged=True,
        )
        write_chaos_record(result, tmp_path / "chaos.json")
        payload = json.loads((tmp_path / "chaos.json").read_text())
        assert payload["schema"] == 1
        assert payload["seed"] == 3
        assert payload["converged"] is True
        assert payload["schedules"] == ["fail=unitA:1", ""]

    def test_render_mentions_verdict(self):
        good = ChaosResult(seed=0, rounds=1, schedules=[""], converged=True)
        assert "converged" in good.render()
        bad = ChaosResult(
            seed=0, rounds=1, schedules=["crash=u"], mismatches=["u.json"]
        )
        assert "DIVERGED" in bad.render()
        assert "u.json" in bad.render()


class TestChaosCli:
    def test_cli_converges_and_exits_zero(self, tmp_path, fake_experiments, capsys):
        code = main(
            [
                "chaos",
                "--out",
                str(tmp_path),
                "--seed",
                "2",
                "--rounds",
                "2",
                "--ids",
                "unitA,unitB",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "converged" in out
