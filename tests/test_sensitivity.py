"""Sensitivity-analysis helpers."""

import pytest

from conftest import TINY
from repro.core.config import SystemConfig
from repro.study.sensitivity import (
    line_size_sensitivity,
    off_chip_sensitivity,
    warmup_sensitivity,
)
from repro.units import kb


class TestOffChipSensitivity:
    def test_tpi_monotone_in_off_chip_time(self):
        series = off_chip_sensitivity(
            "espresso",
            area_budgets_rbe=[1e6],
            off_chip_values_ns=(25.0, 100.0, 400.0),
            scale=TINY,
        )
        tpis = series.column("best_tpi_ns")
        assert tpis == sorted(tpis)

    def test_two_level_advantage_grows_with_latency(self):
        series = off_chip_sensitivity(
            "gcc1",
            area_budgets_rbe=[2e6],
            off_chip_values_ns=(50.0, 400.0),
            scale=TINY,
        )
        advantages = series.column("two_level_advantage_%")
        assert advantages[-1] >= advantages[0] - 1.0

    def test_row_grid_shape(self):
        series = off_chip_sensitivity(
            "espresso",
            area_budgets_rbe=[5e5, 1e6],
            off_chip_values_ns=(50.0, 200.0),
            scale=TINY,
        )
        assert len(series.rows) == 4


class TestLineSizeSensitivity:
    def test_bigger_lines_cut_sequential_misses(self):
        series = line_size_sensitivity(
            "fpppp",  # long sequential fetch runs
            SystemConfig(l1_bytes=kb(8), l2_bytes=kb(64)),
            line_sizes=(16, 64),
            scale=TINY,
        )
        rates = series.column("l1_miss_rate")
        assert rates[-1] < rates[0]

    def test_bigger_lines_cost_more_per_miss(self):
        series = line_size_sensitivity(
            "gcc1",
            SystemConfig(l1_bytes=kb(8), l2_bytes=kb(64)),
            line_sizes=(16, 32, 64),
            scale=TINY,
        )
        penalties = series.column("l2_hit_penalty_ns")
        assert penalties == sorted(penalties)
        assert penalties[-1] > penalties[0]

    def test_all_tpis_positive(self):
        series = line_size_sensitivity(
            "li", SystemConfig(l1_bytes=kb(4)), line_sizes=(16, 32), scale=TINY
        )
        assert all(t > 0 for t in series.column("tpi_ns"))


class TestWarmupSensitivity:
    def test_miss_rate_falls_then_flattens(self, gcc1_tiny):
        series = warmup_sensitivity(gcc1_tiny, kb(16))
        rates = series.column("l1_miss_rate")
        # Removing cold misses can only lower the measured rate...
        assert rates[0] >= rates[1] >= rates[2]
        # ...and the marginal change shrinks once warm.
        assert abs(rates[-1] - rates[-2]) <= abs(rates[1] - rates[0]) + 1e-4

    def test_accepts_workload_names(self):
        series = warmup_sensitivity("espresso", kb(8), kb(32), scale=TINY)
        assert len(series.rows) == 5
