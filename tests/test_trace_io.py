"""Trace file I/O: npz round-trip and din import/export."""

import gzip

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.address import Trace
from repro.traces.io import load_trace, read_din, save_trace, write_din


def small_trace():
    return Trace(
        "toy",
        np.array([0, 4, 8, 12]),
        np.array([100, 200]),
        np.array([1, 3]),
    )


class TestNpzRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "toy.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == "toy"
        assert np.array_equal(loaded.i_addrs, trace.i_addrs)
        assert np.array_equal(loaded.d_addrs, trace.d_addrs)
        assert np.array_equal(loaded.d_times, trace.d_times)

    def test_round_trip_of_generated_workload(self, tmp_path, gcc1_tiny):
        path = tmp_path / "gcc1.npz"
        save_trace(gcc1_tiny, path)
        loaded = load_trace(path)
        assert loaded.n_refs == gcc1_tiny.n_refs
        assert np.array_equal(loaded.i_addrs, gcc1_tiny.i_addrs)

    def test_bad_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.arange(4))
        with pytest.raises(TraceError, match="missing"):
            load_trace(path)

    def test_save_leaves_no_tmp_sibling(self, tmp_path):
        save_trace(small_trace(), tmp_path / "toy.npz")
        assert not list(tmp_path.glob("*.tmp"))

    def test_float_addresses_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(
            path,
            name=np.array("bad"),
            i_addrs=np.array([0.0, 4.0]),
            d_addrs=np.array([], dtype=np.int64),
            d_times=np.array([], dtype=np.int64),
        )
        with pytest.raises(TraceError, match="integer"):
            load_trace(path)

    def test_length_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(
            path,
            name=np.array("bad"),
            i_addrs=np.array([0, 4]),
            d_addrs=np.array([8, 12]),
            d_times=np.array([0]),
        )
        with pytest.raises(TraceError, match="lengths disagree"):
            load_trace(path)

    def test_decreasing_d_times_rejected_with_path(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(
            path,
            name=np.array("bad"),
            i_addrs=np.array([0, 4, 8]),
            d_addrs=np.array([16, 20]),
            d_times=np.array([2, 1]),
        )
        with pytest.raises(TraceError, match="non-decreasing"):
            load_trace(path)

    def test_out_of_range_d_times_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(
            path,
            name=np.array("bad"),
            i_addrs=np.array([0, 4]),
            d_addrs=np.array([16]),
            d_times=np.array([7]),
        )
        with pytest.raises(TraceError, match=str(path)):
            load_trace(path)


class TestDin:
    def test_read_din_basic(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text(
            "# comment\n"
            "2 0\n"
            "0 64\n"      # read at addr 0x64 issued by instr 0
            "2 4\n"
            "1 c8\n"      # write -> modelled as data ref at instr 1
            "2 8\n"
        )
        trace = read_din(path)
        assert trace.n_instructions == 3
        assert trace.n_data_refs == 2
        assert trace.i_addrs.tolist() == [0x0, 0x4, 0x8]
        assert trace.d_addrs.tolist() == [0x64, 0xC8]
        assert trace.d_times.tolist() == [0, 1]
        assert trace.name == "t"

    def test_read_din_gzip(self, tmp_path):
        path = tmp_path / "t.din.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("2 10\n0 20\n")
        trace = read_din(path, name="zipped")
        assert trace.name == "zipped"
        assert trace.n_instructions == 1

    def test_data_before_first_fetch_attributed_to_instr_zero(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("0 40\n2 0\n")
        trace = read_din(path)
        assert trace.d_times.tolist() == [0]

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("2\n")
        with pytest.raises(TraceError, match="expected"):
            read_din(path)

    def test_unparsable_address_rejected(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("2 zz zz\n")
        with pytest.raises(TraceError, match="unparsable"):
            read_din(path)

    def test_unknown_label_rejected(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("7 10\n")
        with pytest.raises(TraceError, match="unknown din label"):
            read_din(path)

    def test_no_fetches_rejected(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("0 10\n")
        with pytest.raises(TraceError, match="no instruction fetches"):
            read_din(path)

    def test_write_read_round_trip(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "toy.din"
        write_din(trace, path)
        loaded = read_din(path, name="toy")
        assert loaded.i_addrs.tolist() == trace.i_addrs.tolist()
        assert loaded.d_addrs.tolist() == trace.d_addrs.tolist()
        assert loaded.d_times.tolist() == trace.d_times.tolist()

    def test_round_trip_preserves_reference_counts(self, tmp_path):
        # Several data refs on one instruction, a ref at instruction 0,
        # stores mixed in, and a ref on the *last* instruction — every
        # shape the cursor walk has to emit.
        trace = Trace(
            "dense",
            np.array([0, 4, 8, 12]),
            np.array([100, 104, 108, 112, 116]),
            np.array([0, 0, 1, 3, 3]),
            np.array([False, True, False, True, False]),
        )
        path = tmp_path / "dense.din"
        write_din(trace, path)
        loaded = read_din(path, name="dense")
        assert loaded.n_instructions == trace.n_instructions
        assert loaded.n_data_refs == trace.n_data_refs
        assert loaded.d_addrs.tolist() == trace.d_addrs.tolist()
        assert loaded.d_times.tolist() == trace.d_times.tolist()
        assert loaded.d_is_store.tolist() == trace.d_is_store.tolist()
        assert loaded.store_fraction == trace.store_fraction

    def test_din_trace_feeds_simulator(self, tmp_path):
        from repro.cache.hierarchy import simulate_hierarchy

        trace = small_trace()
        path = tmp_path / "toy.din"
        write_din(trace, path)
        loaded = read_din(path)
        stats = simulate_hierarchy(loaded, 64, warmup_fraction=0.0)
        reference = simulate_hierarchy(trace, 64, warmup_fraction=0.0)
        assert stats.l1_misses == reference.l1_misses
