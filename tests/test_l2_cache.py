"""Set-associative cache operations: lookup, fill, invalidate."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.l2 import INVALID, SetAssociativeCache
from repro.cache.replacement import LruReplacement


def make_cache(size=256, assoc=2):
    # 256 B, 16 B lines, 2-way -> 8 sets
    return SetAssociativeCache(CacheGeometry(size, associativity=assoc))


class TestLookupAndFill:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert not cache.lookup(5)
        assert cache.fill(5) is None
        assert cache.lookup(5)

    def test_contains_does_not_touch(self):
        cache = make_cache()
        cache.fill(5)
        assert cache.contains(5)
        assert not cache.contains(13)

    def test_fill_uses_invalid_ways_first(self):
        cache = make_cache()
        # set 0 of 8 sets: lines 0 and 8
        assert cache.fill(0) is None
        assert cache.fill(8) is None
        assert cache.contains(0) and cache.contains(8)

    def test_fill_evicts_when_set_full(self):
        cache = make_cache()
        cache.fill(0)
        cache.fill(8)
        evicted = cache.fill(16)  # same set, full
        assert evicted in (0, 8)
        assert cache.contains(16)
        assert cache.n_valid_lines == 2

    def test_refill_of_resident_line_is_noop(self):
        cache = make_cache()
        cache.fill(3)
        assert cache.fill(3) is None
        assert cache.n_valid_lines == 1

    def test_direct_mapped_always_evicts_resident(self):
        cache = make_cache(assoc=1)
        cache.fill(0)
        assert cache.fill(16) == 0  # 16 sets? no: 256B DM -> 16 sets... line 16 % 16 == 0

    def test_invalidate(self):
        cache = make_cache()
        cache.fill(7)
        assert cache.invalidate(7)
        assert not cache.contains(7)
        assert not cache.invalidate(7)  # second time: not present

    def test_resident_lines_sorted(self):
        cache = make_cache()
        for line in (9, 1, 18):  # sets 1, 1, 2 of the 8-set cache
            cache.fill(line)
        assert cache.resident_lines().tolist() == [1, 9, 18]

    def test_set_contents_copy(self):
        cache = make_cache()
        cache.fill(0)
        row = cache.set_contents(0)
        row[0] = 999  # mutating the copy must not affect the cache
        assert cache.contains(0)
        assert INVALID in cache.set_contents(0)


class TestWithLru:
    def test_lru_eviction_order(self):
        geometry = CacheGeometry(256, associativity=2)  # 8 sets
        cache = SetAssociativeCache(
            geometry, replacement=LruReplacement(2, geometry.n_sets)
        )
        cache.fill(0)   # set 0, way 0
        cache.fill(8)   # set 0, way 1
        cache.lookup(0)  # 0 becomes MRU
        assert cache.fill(16) == 8  # LRU way held line 8

    def test_capacity_never_exceeded(self):
        cache = make_cache(size=128, assoc=4)  # 8 lines, 2 sets
        for line in range(40):
            cache.fill(line)
        assert cache.n_valid_lines <= 8
