"""Dynamic-energy model and the paper's power claim (intro advantage 5)."""

import pytest

from repro.core.config import SystemConfig
from repro.errors import ModelError
from repro.power.energy import (
    cache_access_energy,
    optimal_access_energy,
)
from repro.power.system import energy_per_instruction
from repro.cache.geometry import CacheGeometry
from repro.timing.optimal import optimal_timing
from repro.timing.organization import ArrayOrganization
from repro.units import kb


class TestAccessEnergy:
    def test_breakdown_sums(self):
        e = optimal_access_energy(kb(8))
        parts = (
            e.decode + e.wordline + e.bitlines + e.sense_amps + e.tag_path + e.output
        )
        assert e.total == pytest.approx(parts)

    def test_energy_grows_with_size(self):
        totals = [
            optimal_access_energy(kb(k)).total for k in (1, 4, 16, 64, 256)
        ]
        assert all(a < b for a, b in zip(totals, totals[1:]))

    def test_bitlines_dominate_large_arrays(self):
        """The intro's argument: long bit lines are the energy cost."""
        e = optimal_access_energy(kb(256))
        assert e.bitlines > 0.5 * e.total

    def test_small_cache_far_cheaper_per_access(self):
        small = optimal_access_energy(kb(1)).total
        large = optimal_access_energy(kb(256)).total
        assert large > 5 * small

    def test_subarray_splitting_saves_energy(self):
        """Splitting shortens the switched lines (speed and power agree)."""
        g = CacheGeometry(kb(64))
        flat = cache_access_energy(g, ArrayOrganization(1, 1, 1, 1, 1, 1))
        split = cache_access_energy(g, ArrayOrganization(4, 8, 1, 2, 4, 1))
        assert split.bitlines < flat.bitlines

    def test_dual_port_costs_energy(self):
        single = optimal_access_energy(kb(8), ports=1).total
        double = optimal_access_energy(kb(8), ports=2).total
        assert double > single

    def test_rejects_bad_ports(self):
        g = CacheGeometry(kb(8))
        org = optimal_timing(kb(8)).organization
        with pytest.raises(ModelError):
            cache_access_energy(g, org, ports=0)

    def test_memoised(self):
        assert optimal_access_energy(kb(8)) is optimal_access_energy(kb(8))


class TestSystemEnergy:
    def test_intro_claim_5_two_level_uses_less_power(self, gcc1_tiny):
        """'a chip with a two-level cache will usually use less power
        [than] one with a single-level organization (assuming the area
        devoted to the cache is the same)'."""
        single = SystemConfig(l1_bytes=kb(64))
        two = SystemConfig(l1_bytes=kb(8), l2_bytes=kb(128))
        e_single = energy_per_instruction(single, gcc1_tiny)
        e_two = energy_per_instruction(two, gcc1_tiny)
        assert e_two.on_chip_epi_pj < e_single.on_chip_epi_pj
        assert e_two.epi_pj < e_single.epi_pj

    def test_l1_energy_dominates_when_hit_rate_high(self, gcc1_tiny):
        config = SystemConfig(l1_bytes=kb(32), l2_bytes=kb(128))
        energy = energy_per_instruction(config, gcc1_tiny)
        assert energy.l1_energy_pj > energy.l2_energy_pj

    def test_single_level_has_no_l2_term(self, gcc1_tiny):
        energy = energy_per_instruction(SystemConfig(l1_bytes=kb(8)), gcc1_tiny)
        assert energy.l2_access_pj == 0.0
        assert energy.l2_energy_pj == 0.0

    def test_off_chip_term_scales_with_misses(self, gcc1_tiny):
        small = energy_per_instruction(SystemConfig(l1_bytes=kb(1)), gcc1_tiny)
        large = energy_per_instruction(SystemConfig(l1_bytes=kb(64)), gcc1_tiny)
        assert small.off_chip_energy_pj > large.off_chip_energy_pj

    def test_totals_consistent(self, gcc1_tiny):
        energy = energy_per_instruction(
            SystemConfig(l1_bytes=kb(4), l2_bytes=kb(32)), gcc1_tiny
        )
        assert energy.total_pj == pytest.approx(
            energy.l1_energy_pj + energy.l2_energy_pj + energy.off_chip_energy_pj
        )
        assert energy.epi_pj > energy.on_chip_epi_pj
