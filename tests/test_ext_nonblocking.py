"""Non-blocking-load extension (§10 conjecture 2)."""

import pytest

from repro.core.config import SystemConfig
from repro.core.evaluate import evaluate
from repro.errors import ConfigurationError
from repro.ext.nonblocking import evaluate_non_blocking
from repro.units import kb


class TestModel:
    def test_zero_overlap_reproduces_baseline_exactly(self, gcc1_tiny):
        for config in (
            SystemConfig(l1_bytes=kb(4)),
            SystemConfig(l1_bytes=kb(4), l2_bytes=kb(32)),
        ):
            baseline = evaluate(config, gcc1_tiny)
            nb = evaluate_non_blocking(config, gcc1_tiny, overlap=0.0)
            assert nb.tpi_ns == pytest.approx(baseline.tpi_ns)

    def test_overlap_monotone(self, gcc1_tiny):
        config = SystemConfig(l1_bytes=kb(4), l2_bytes=kb(32))
        tpis = [
            evaluate_non_blocking(config, gcc1_tiny, overlap=o).tpi_ns
            for o in (0.0, 0.25, 0.5, 1.0)
        ]
        assert all(a > b for a, b in zip(tpis, tpis[1:]))

    def test_full_overlap_leaves_instruction_miss_cost(self, gcc1_tiny):
        """Instruction fetch still blocks: overlap=1 does not reach the
        miss-free TPI."""
        config = SystemConfig(l1_bytes=kb(4), l2_bytes=kb(32))
        nb = evaluate_non_blocking(config, gcc1_tiny, overlap=1.0)
        miss_free = nb.base_ns / nb.n_instructions
        assert nb.tpi_ns > miss_free

    def test_data_share_reported(self, gcc1_tiny):
        nb = evaluate_non_blocking(
            SystemConfig(l1_bytes=kb(4), l2_bytes=kb(32)), gcc1_tiny
        )
        assert 0.0 < nb.data_miss_share < 1.0

    def test_validation(self, gcc1_tiny):
        with pytest.raises(ConfigurationError):
            evaluate_non_blocking(
                SystemConfig(l1_bytes=kb(4)), gcc1_tiny, overlap=1.5
            )


class TestPaperConjecture:
    def test_overlap_favours_two_level(self, gcc1_tiny):
        """§10: non-blocking loads 'may increase the benefits of a
        two-level on-chip caching organization'.

        With overlap, the cheap (overlappable) L2-hit penalty shrinks
        while the single-level machine still pays full off-chip trips
        for its conflict misses — the relative two-level gain grows.
        """
        single = SystemConfig(l1_bytes=kb(2))
        two = SystemConfig(l1_bytes=kb(2), l2_bytes=kb(32))
        gain_blocking = (
            evaluate_non_blocking(single, gcc1_tiny, overlap=0.0).tpi_ns
            / evaluate_non_blocking(two, gcc1_tiny, overlap=0.0).tpi_ns
        )
        gain_overlapped = (
            evaluate_non_blocking(single, gcc1_tiny, overlap=0.6).tpi_ns
            / evaluate_non_blocking(two, gcc1_tiny, overlap=0.6).tpi_ns
        )
        assert gain_overlapped == pytest.approx(gain_blocking, rel=0.25)
        # At minimum, two-level remains preferable under overlap.
        assert gain_overlapped > 1.0
