"""Calibration anchors: the timing model lands where Figure 1 does."""

import pytest

from repro.timing.optimal import optimal_timing
from repro.timing.technology import TECH_05UM, TECH_08UM, Technology
from repro.errors import ModelError
from repro.units import kb


class TestFigure1Anchors:
    """Figure 1 (0.5 µm): ~1.7/2.0 ns at 1 KB, ≈2x spread to 256 KB."""

    def test_1kb_access_near_figure(self):
        access = optimal_timing(kb(1)).access_ns
        assert 1.3 <= access <= 2.2

    def test_1kb_cycle_near_figure(self):
        cycle = optimal_timing(kb(1)).cycle_ns
        assert 1.5 <= cycle <= 2.5

    def test_256kb_cycle_near_figure(self):
        cycle = optimal_timing(kb(256)).cycle_ns
        assert 3.0 <= cycle <= 6.0

    def test_cycle_spread_close_to_paper(self):
        """§2.1: 'a variation in machine cycle time of about 1.8X'."""
        ratio = optimal_timing(kb(256)).cycle_ns / optimal_timing(kb(1)).cycle_ns
        assert 1.6 <= ratio <= 2.6

    def test_set_associative_penalty_modest(self):
        """§5: the 4-way penalty exists but is small (often hidden by
        the cycle quantisation)."""
        for size_kb in (8, 64, 256):
            dm = optimal_timing(kb(size_kb)).cycle_ns
            sa = optimal_timing(kb(size_kb), 4).cycle_ns
            assert 1.0 < sa / dm < 1.35


class TestTechnology:
    def test_05um_is_08um_halved(self):
        assert TECH_05UM.time_scale == pytest.approx(0.5 * TECH_08UM.time_scale)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ModelError):
            TECH_08UM.scaled(0)

    def test_scaled_composes(self):
        quarter = TECH_08UM.scaled(0.5).scaled(0.5)
        assert quarter.time_scale == pytest.approx(0.25)

    def test_scaled_names(self):
        assert TECH_05UM.name == "0.5um"
        assert "*0.25" in TECH_08UM.scaled(0.25).name

    def test_resistance_helpers(self):
        tech = Technology(name="t")
        assert tech.r_nmos(2.0) == pytest.approx(tech.r_nmos_per_um / 2.0)
        assert tech.r_pmos(2.0) == pytest.approx(tech.r_nmos(2.0) * tech.pmos_ratio)

    def test_capacitance_helpers(self):
        tech = Technology(name="t")
        assert tech.c_gate(3.0) == pytest.approx(3.0 * tech.c_gate_per_um)
        assert tech.c_diff(3.0) == pytest.approx(3.0 * tech.c_diff_per_um)
