"""Resilient execution engine: journal, isolation, retries, timeouts,
fault injection, and the kill-and-resume round trip through
``write_report`` and ``run_sweep``."""

import json
import threading
import time

import pytest

from repro.core.config import SystemConfig
from repro.core.explorer import SweepPoint, as_point, run_sweep
from repro.errors import (
    CheckpointError,
    ModelError,
    RunnerError,
    UnitTimeoutError,
)
from repro.runner import (
    RetryPolicy,
    RunJournal,
    Runner,
    RunUnit,
    atomic_open,
    execute_attempts,
    unit_key,
    unit_timeout,
    write_text_atomic,
)
from repro.runner import faults
from repro.study.registry import _REGISTRY, ExperimentResult, Series, register
from repro.study.resultstore import load_result, write_report
from repro.units import kb


@pytest.fixture(autouse=True)
def clean_faults():
    faults.clear()
    yield
    faults.clear()


def make_unit(unit_id, fn=None, **kwargs):
    return RunUnit(
        unit_id=unit_id,
        payload={"id": unit_id},
        run=fn if fn is not None else lambda: unit_id,
        **kwargs,
    )


def no_tmp_leftovers(directory):
    return not list(directory.rglob("*.tmp"))


class TestAtomicWrites:
    def test_write_text_atomic(self, tmp_path):
        path = tmp_path / "a" / "b.txt"
        write_text_atomic(path, "hello")
        assert path.read_text() == "hello"
        assert no_tmp_leftovers(tmp_path)

    def test_failed_write_leaves_nothing(self, tmp_path):
        path = tmp_path / "x.json"
        with pytest.raises(RuntimeError):
            with atomic_open(path) as handle:
                handle.write("{half a docu")
                raise RuntimeError("simulated crash mid-write")
        assert not path.exists()
        assert no_tmp_leftovers(tmp_path)

    def test_failed_rewrite_keeps_previous_content(self, tmp_path):
        path = tmp_path / "x.json"
        write_text_atomic(path, "old complete artefact")
        with pytest.raises(RuntimeError):
            with atomic_open(path) as handle:
                handle.write("new torn")
                raise RuntimeError("boom")
        assert path.read_text() == "old complete artefact"


class TestJournal:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RunJournal.open(path)
        key = unit_key({"id": "u1"})
        journal.record("u1", key, "ok", attempts=2, elapsed_s=0.5)
        reloaded = RunJournal.open(path, resume=True)
        assert reloaded.completed("u1", key)
        assert reloaded.entry("u1")["attempts"] == 2
        assert no_tmp_leftovers(tmp_path)

    def test_key_mismatch_not_completed(self, tmp_path):
        journal = RunJournal.open(tmp_path / "j.jsonl")
        journal.record("u1", unit_key({"scale": 0.1}), "ok")
        assert not journal.completed("u1", unit_key({"scale": 0.2}))

    def test_failed_entry_not_completed(self, tmp_path):
        journal = RunJournal.open(tmp_path / "j.jsonl")
        key = unit_key({"id": "u1"})
        journal.record("u1", key, "failed", error={"type": "ModelError"})
        assert not journal.completed("u1", key)

    def test_open_without_resume_discards_state(self, tmp_path):
        path = tmp_path / "j.jsonl"
        key = unit_key({"id": "u1"})
        RunJournal.open(path).record("u1", key, "ok")
        fresh = RunJournal.open(path, resume=False)
        assert not fresh.completed("u1", key)

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal.open(path)
        key = unit_key({"id": "u1"})
        journal.record("u1", key, "ok")
        with open(path, "a") as handle:
            handle.write('{"unit": "u2", "stat')  # torn append, no newline flush
        reloaded = RunJournal.open(path, resume=True)
        assert reloaded.completed("u1", key)
        assert reloaded.entry("u2") is None

    def test_corrupt_header_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(CheckpointError, match="header"):
            RunJournal.open(path, resume=True)

    def test_corrupt_middle_entry_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal.open(path)
        journal.record("u1", unit_key({"id": "u1"}), "ok")
        lines = path.read_text().splitlines()
        lines[1] = "garbage {{{"
        path.write_text("\n".join(lines) + "\n" + '{"more": "after"}\n')
        with pytest.raises(CheckpointError, match="corrupt journal entry"):
            RunJournal.open(path, resume=True)

    def test_unit_key_deterministic_and_order_free(self):
        assert unit_key({"a": 1, "b": 2}) == unit_key({"b": 2, "a": 1})
        assert unit_key({"a": 1}) != unit_key({"a": 2})


class TestRetry:
    def test_retry_then_succeed(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ModelError("transient")
            return "done"

        delays = []
        runner = Runner(
            retry=RetryPolicy(max_attempts=3, backoff_s=0.01),
            sleep=delays.append,
        )
        result = runner.run([make_unit("u", flaky)])
        outcome = result.outcomes[0]
        assert outcome.status == "ok"
        assert outcome.value == "done"
        assert outcome.attempts == 3
        assert delays == [0.01, 0.02]  # exponential backoff

    def test_retries_exhausted(self):
        runner = Runner(
            retry=RetryPolicy(max_attempts=2, backoff_s=0),
            keep_going=True,
            sleep=lambda _: None,
        )

        def always_fails():
            raise ModelError("permanent")

        result = runner.run([make_unit("u", always_fails)])
        outcome = result.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.attempts == 2
        assert outcome.error["type"] == "ModelError"

    def test_backoff_capped(self):
        policy = RetryPolicy(backoff_s=1.0, backoff_factor=10.0, max_backoff_s=3.0)
        assert policy.delay(1) == 1.0
        assert policy.delay(2) == 3.0

    def test_invalid_policy_rejected(self):
        with pytest.raises(RunnerError):
            RetryPolicy(max_attempts=0)

    def test_injected_fault_retried_via_hook(self):
        faults.install(faults.FaultPlan(fail_unit="u", fail_times=2))
        calls = []
        runner = Runner(
            retry=RetryPolicy(max_attempts=3, backoff_s=0), sleep=lambda _: None
        )
        result = runner.run([make_unit("u", lambda: calls.append(1) or "ok")])
        assert result.outcomes[0].status == "ok"
        assert result.outcomes[0].attempts == 3
        assert len(calls) == 1  # the first two attempts died in the hook


class TestIsolation:
    def test_one_failure_does_not_kill_the_run(self):
        def boom():
            raise ModelError("degenerate configuration")

        units = [make_unit("a"), make_unit("b", boom), make_unit("c")]
        result = Runner(keep_going=True).run(units)
        assert [o.status for o in result.outcomes] == ["ok", "failed", "ok"]
        record = result.failed[0].error
        assert record["unit"] == "b"
        assert record["type"] == "ModelError"
        assert record["message"] == "degenerate configuration"
        assert record["config"] == {"id": "b"}
        assert record["elapsed_s"] >= 0

    def test_without_keep_going_stops_at_failure(self):
        ran = []

        def boom():
            raise ModelError("nope")

        units = [
            make_unit("a", lambda: ran.append("a")),
            make_unit("b", boom),
            make_unit("c", lambda: ran.append("c")),
        ]
        result = Runner(keep_going=False).run(units)
        assert ran == ["a"]
        assert len(result.outcomes) == 2
        with pytest.raises(ModelError):
            result.raise_first_failure()


class TestTimeout:
    def test_slow_unit_aborted(self):
        faults.install(faults.FaultPlan(delay_unit="slow", delay_s=5.0))
        runner = Runner(timeout_s=0.2, keep_going=True)
        result = runner.run([make_unit("slow"), make_unit("fast")])
        slow, fast = result.outcomes
        assert slow.status == "failed"
        assert slow.error["type"] == "UnitTimeoutError"
        assert slow.elapsed_s < 2.0
        assert fast.status == "ok"

    def test_timeout_not_retried(self):
        faults.install(faults.FaultPlan(delay_unit="slow", delay_s=5.0))
        runner = Runner(
            timeout_s=0.2,
            retry=RetryPolicy(max_attempts=3, backoff_s=0),
            keep_going=True,
            sleep=lambda _: None,
        )
        result = runner.run([make_unit("slow")])
        assert result.outcomes[0].attempts == 1


class TestTimeoutPortability:
    """The budget is enforced by *both* mechanisms: pre-emptive SIGALRM
    on a POSIX main thread, and the post-hoc deadline check everywhere
    else (worker threads, pool workers without SIGALRM).  Historically
    the context silently skipped enforcement off the main thread."""

    def test_deadline_path_raises_after_completion(self):
        with pytest.raises(UnitTimeoutError, match="deadline check"):
            with unit_timeout(0.05, force_deadline=True):
                time.sleep(0.12)

    def test_deadline_path_passes_within_budget(self):
        with unit_timeout(5.0, force_deadline=True):
            pass

    def test_preemptive_path_aborts_midflight(self):
        started = time.monotonic()
        with pytest.raises(UnitTimeoutError):
            with unit_timeout(0.1):
                time.sleep(5.0)
        assert time.monotonic() - started < 2.0

    def test_runner_enforces_timeout_off_main_thread(self):
        """A Runner driven from a worker thread (no SIGALRM there) must
        still fail an overrunning unit via the deadline fallback."""
        box = {}

        def drive():
            runner = Runner(timeout_s=0.05, keep_going=True)
            box["result"] = runner.run(
                [make_unit("slow", fn=lambda: time.sleep(0.15))]
            )

        thread = threading.Thread(target=drive)
        thread.start()
        thread.join(timeout=30)
        assert not thread.is_alive()
        (outcome,) = box["result"].outcomes
        assert outcome.status == "failed"
        assert outcome.error["type"] == "UnitTimeoutError"

    def test_execute_attempts_deadline_not_retried(self):
        outcome = execute_attempts(
            make_unit("slow", fn=lambda: time.sleep(0.12)),
            retry=RetryPolicy(max_attempts=3, backoff_s=0),
            timeout_s=0.05,
            sleep=lambda _: None,
            force_deadline=True,
        )
        assert outcome.status == "failed"
        assert outcome.attempts == 1
        assert outcome.error["type"] == "UnitTimeoutError"


class TestFaultPlans:
    def test_parse_full_spec(self):
        plan = faults.parse_plan("fail=fig5:2,crash=fig7,delay=fig3:0.5,corrupt=fig9")
        assert plan.fail_unit == "fig5" and plan.fail_times == 2
        assert plan.crash_unit == "fig7"
        assert plan.delay_unit == "fig3" and plan.delay_s == 0.5
        assert plan.corrupt_unit == "fig9"

    def test_bad_spec_rejected(self):
        with pytest.raises(RunnerError):
            faults.parse_plan("explode=fig5")
        with pytest.raises(RunnerError):
            faults.parse_plan("fail=fig5:lots")

    def test_colon_bearing_unit_ids(self):
        """Sweep unit ids contain colons; the arg splits off the last one."""
        plan = faults.parse_plan("fail=0007:8:64:2,crash=0001:1:0,delay=0002:2:4:0.5")
        assert plan.fail_unit == "0007:8:64" and plan.fail_times == 2
        assert plan.crash_unit == "0001:1:0"
        assert plan.delay_unit == "0002:2:4" and plan.delay_s == 0.5

    def test_parse_extended_grammar(self):
        plan = faults.parse_plan(
            "bitflip=fig5:8,partial=fig7:16,enospc=fig3:2,killworker=fig9"
        )
        assert plan.bitflip_unit == "fig5" and plan.bitflip_offset == 8
        assert plan.partial_unit == "fig7" and plan.partial_bytes == 16
        assert plan.enospc_unit == "fig3" and plan.enospc_times == 2
        assert plan.killworker_unit == "fig9"

    def test_extended_grammar_defaults(self):
        plan = faults.parse_plan("bitflip=u,partial=v,enospc=w")
        assert plan.bitflip_unit == "u" and plan.bitflip_offset is None
        assert plan.partial_unit == "v" and plan.partial_bytes is None
        assert plan.enospc_unit == "w" and plan.enospc_times == 1

    def test_extended_grammar_bad_args_rejected(self):
        for spec in ("bitflip=u:mid", "partial=u:half", "enospc=u:forever"):
            with pytest.raises(RunnerError):
                faults.parse_plan(spec)

    def test_env_var_plan(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "fail=u:1")
        runner = Runner(keep_going=True)
        result = runner.run([make_unit("u")])
        assert result.outcomes[0].status == "failed"
        assert result.outcomes[0].error["type"] == "InjectedFault"

    def test_crash_is_not_isolated(self):
        faults.install(faults.FaultPlan(crash_unit="b"))
        with pytest.raises(faults.InjectedCrash):
            Runner(keep_going=True).run([make_unit("a"), make_unit("b")])


class TestKillAndResume:
    def test_journal_replay_skips_completed_units(self, tmp_path):
        path = tmp_path / "j.jsonl"
        calls = {"a": 0, "b": 0, "c": 0}

        def units():
            def bump(uid):
                calls[uid] += 1
                return uid

            return [make_unit(uid, lambda uid=uid: bump(uid)) for uid in "abc"]

        faults.install(faults.FaultPlan(crash_unit="b"))
        with pytest.raises(faults.InjectedCrash):
            Runner(journal=RunJournal.open(path)).run(units())
        assert calls == {"a": 1, "b": 0, "c": 0}

        faults.clear()
        result = Runner(journal=RunJournal.open(path, resume=True)).run(units())
        assert calls == {"a": 1, "b": 1, "c": 1}
        assert [o.status for o in result.outcomes] == ["skipped", "ok", "ok"]

    def test_resume_restores_recorded_values(self, tmp_path):
        path = tmp_path / "j.jsonl"
        unit = make_unit(
            "u",
            lambda: 41 + 1,
            to_record=lambda v: {"value": v},
            from_record=lambda r: r["value"],
        )
        Runner(journal=RunJournal.open(path)).run([unit])
        result = Runner(journal=RunJournal.open(path, resume=True)).run([unit])
        assert result.outcomes[0].status == "skipped"
        assert result.outcomes[0].value == 42

    def test_check_skip_forces_rerun(self, tmp_path):
        path = tmp_path / "j.jsonl"
        calls = []
        unit = make_unit("u", lambda: calls.append(1))
        Runner(journal=RunJournal.open(path)).run([unit])
        stale = make_unit("u", lambda: calls.append(1), check_skip=lambda: False)
        Runner(journal=RunJournal.open(path, resume=True)).run([stale])
        assert len(calls) == 2


class TestEnospcWrites:
    """Injected disk exhaustion surfaces as a retryable CheckpointError."""

    def writing_unit(self, path):
        return make_unit("u", lambda: write_text_atomic(path, "artefact body"))

    def test_exhausted_retries_fail_with_checkpoint_error(self, tmp_path):
        faults.install(faults.FaultPlan(enospc_unit="u", enospc_times=2))
        result = Runner(keep_going=True).run([self.writing_unit(tmp_path / "a.txt")])
        outcome = result.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.error["type"] == "CheckpointError"
        assert isinstance(outcome.exception, CheckpointError)
        assert not (tmp_path / "a.txt").exists()
        assert no_tmp_leftovers(tmp_path)

    def test_transient_enospc_is_retried_to_success(self, tmp_path):
        faults.install(faults.FaultPlan(enospc_unit="u", enospc_times=1))
        runner = Runner(
            retry=RetryPolicy(max_attempts=2, backoff_s=0), sleep=lambda _: None
        )
        result = runner.run([self.writing_unit(tmp_path / "a.txt")])
        outcome = result.outcomes[0]
        assert outcome.status == "ok"
        assert outcome.attempts == 2
        assert (tmp_path / "a.txt").read_text() == "artefact body"

    def test_enospc_targets_only_the_named_unit(self, tmp_path):
        faults.install(faults.FaultPlan(enospc_unit="other", enospc_times=99))
        result = Runner().run([self.writing_unit(tmp_path / "a.txt")])
        assert result.outcomes[0].status == "ok"
        assert result.outcomes[0].attempts == 1


class TestRewriteOrdered:
    """The canonical-reorder pass and the kill windows around it.

    A parallel run appends outcomes in arrival order and reorders them
    only on successful completion, so a kill *before* the rewrite must
    leave a journal the resume path accepts, and the rewrite itself
    must never reorder entries replayed from a previous run.
    """

    def record_ok(self, journal, unit_id):
        journal.record(unit_id, unit_key({"id": unit_id}), "ok")

    def test_rewrite_orders_current_run_entries(self, tmp_path):
        journal = RunJournal.open(tmp_path / "j.jsonl")
        for uid in ("c", "a", "b"):  # arrival order under 3 workers
            self.record_ok(journal, uid)
        journal.rewrite_ordered(["a", "b", "c"])
        assert [e["unit"] for e in journal.entries] == ["a", "b", "c"]
        reloaded = RunJournal.open(tmp_path / "j.jsonl", resume=True)
        assert [e["unit"] for e in reloaded.entries] == ["a", "b", "c"]

    def test_kill_before_rewrite_still_resumes(self, tmp_path):
        # Arrival-ordered journal with no canonical pass = a run killed
        # in the window between the last append and rewrite_ordered.
        path = tmp_path / "j.jsonl"
        journal = RunJournal.open(path)
        for uid in ("b", "a"):
            self.record_ok(journal, uid)

        resumed = RunJournal.open(path, resume=True)
        for uid in ("a", "b", "c"):
            assert resumed.completed(uid, unit_key({"id": uid})) == (uid != "c")

    def test_rewrite_never_moves_replayed_entries(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal.open(path)
        for uid in ("b", "a"):
            self.record_ok(journal, uid)

        resumed = RunJournal.open(path, resume=True)
        self.record_ok(resumed, "d")
        self.record_ok(resumed, "c")
        resumed.rewrite_ordered(["a", "b", "c", "d"])
        # Replayed prefix keeps its (arrival) order; only this run's
        # tail is canonicalised — matching what the serial engine would
        # have appended after the same resume.
        assert [e["unit"] for e in resumed.entries] == ["b", "a", "c", "d"]

    def test_rewrite_after_kill_converges_with_clean_run(self, tmp_path):
        killed = RunJournal.open(tmp_path / "killed.jsonl")
        for uid in ("b", "a"):
            self.record_ok(killed, uid)
        resumed = RunJournal.open(tmp_path / "killed.jsonl", resume=True)
        self.record_ok(resumed, "c")
        resumed.rewrite_ordered(["a", "b", "c"])

        reloaded = RunJournal.open(tmp_path / "killed.jsonl", resume=True)
        for uid in ("a", "b", "c"):
            assert reloaded.completed(uid, unit_key({"id": uid}))
        assert len(reloaded.entries) == 3

    def test_unknown_units_sort_after_known(self, tmp_path):
        journal = RunJournal.open(tmp_path / "j.jsonl")
        for uid in ("stray", "b", "a"):
            self.record_ok(journal, uid)
        journal.rewrite_ordered(["a", "b"])
        assert [e["unit"] for e in journal.entries] == ["a", "b", "stray"]

    def test_torn_final_append_is_dropped_on_resume(self, tmp_path):
        # A kill *during* a journal append leaves a half-written final
        # line; replay drops exactly that entry and re-runs its unit.
        path = tmp_path / "j.jsonl"
        journal = RunJournal.open(path)
        self.record_ok(journal, "a")
        with open(path, "a") as handle:  # repro: lint-ok[REP001] deliberately tears the journal tail to emulate a mid-append kill
            handle.write('{"unit": "b", "status"')
        resumed = RunJournal.open(path, resume=True)
        assert resumed.completed("a", unit_key({"id": "a"}))
        assert not resumed.completed("b", unit_key({"id": "b"}))


# --- write_report integration -------------------------------------------


@pytest.fixture
def fake_experiments():
    """Register three tiny experiments; deregister on teardown."""

    ids = ["unitA", "unitB", "unitC"]
    calls = {eid: 0 for eid in ids}

    def make(eid):
        def runner(scale):
            calls[eid] += 1
            return ExperimentResult(
                experiment_id=eid,
                title=f"fake {eid}",
                series=(
                    Series(name="s", columns=("x", "y"), rows=((1, 2.0), (3, 4.0))),
                ),
            )

        register(eid, f"fake {eid}", "test")(runner)

    for eid in ids:
        make(eid)
    try:
        yield ids, calls
    finally:
        for eid in ids:
            _REGISTRY.pop(eid, None)


class TestWriteReportResilience:
    def test_kill_and_resume_round_trip(self, tmp_path, fake_experiments):
        ids, calls = fake_experiments
        out = tmp_path / "report"

        faults.install(faults.FaultPlan(crash_unit="unitB"))
        with pytest.raises(faults.InjectedCrash):
            write_report(out, ids=ids)
        assert calls == {"unitA": 1, "unitB": 0, "unitC": 0}
        assert load_result(out / "unitA.json").experiment_id == "unitA"
        assert not (out / "unitB.json").exists()
        assert no_tmp_leftovers(out)

        faults.clear()
        written = write_report(out, ids=ids, resume=True)
        assert written == ids
        assert calls == {"unitA": 1, "unitB": 1, "unitC": 1}
        index = (out / "INDEX.tsv").read_text()
        for eid in ids:
            assert eid in index

    def test_keep_going_partial_report_and_manifest(self, tmp_path, fake_experiments):
        ids, calls = fake_experiments
        out = tmp_path / "report"
        faults.install(faults.FaultPlan(fail_unit="unitB", fail_times=99))

        written = write_report(out, ids=ids, keep_going=True)
        assert written == ["unitA", "unitC"]
        manifest = json.loads((out / "FAILURES.json").read_text())
        assert manifest["schema"] == 1
        (entry,) = manifest["failures"]
        assert entry["unit"] == "unitB"
        assert entry["type"] == "InjectedFault"
        assert entry["config"]["experiment_id"] == "unitB"
        assert "unitB" not in (out / "INDEX.tsv").read_text()

        # The failure is journalled too, so resume retries only unitB.
        faults.clear()
        written = write_report(out, ids=ids, resume=True)
        assert written == ids
        assert calls == {"unitA": 1, "unitB": 1, "unitC": 1}
        assert not (out / "FAILURES.json").exists()

    def test_failure_without_keep_going_raises_but_journals(
        self, tmp_path, fake_experiments
    ):
        ids, _ = fake_experiments
        out = tmp_path / "report"
        faults.install(faults.FaultPlan(fail_unit="unitB", fail_times=99))
        with pytest.raises(faults.InjectedFault):
            write_report(out, ids=ids)
        assert (out / "unitA.json").exists()
        assert json.loads((out / "FAILURES.json").read_text())["failures"]

    def test_retry_then_succeed(self, tmp_path, fake_experiments):
        ids, calls = fake_experiments
        out = tmp_path / "report"
        faults.install(faults.FaultPlan(fail_unit="unitA", fail_times=2))
        written = write_report(out, ids=["unitA"], retries=2)
        assert written == ["unitA"]
        journal = json.loads((out / "journal.jsonl").read_text().splitlines()[-1])
        assert journal["status"] == "ok"
        assert journal["attempts"] == 3

    def test_timeout_recorded_in_manifest(self, tmp_path, fake_experiments):
        ids, _ = fake_experiments
        out = tmp_path / "report"
        faults.install(faults.FaultPlan(delay_unit="unitA", delay_s=5.0))
        written = write_report(out, ids=ids, keep_going=True, timeout_s=0.2)
        assert written == ["unitB", "unitC"]
        (entry,) = json.loads((out / "FAILURES.json").read_text())["failures"]
        assert entry["type"] == "UnitTimeoutError"

    def test_corrupt_artifact_rerun_on_resume(self, tmp_path, fake_experiments):
        ids, calls = fake_experiments
        out = tmp_path / "report"
        faults.install(faults.FaultPlan(corrupt_unit="unitA"))
        write_report(out, ids=["unitA"])
        with pytest.raises(Exception):
            load_result(out / "unitA.json")

        # Journal says OK, but resume validates artefacts and re-runs.
        faults.clear()
        written = write_report(out, ids=["unitA"], resume=True)
        assert written == ["unitA"]
        assert calls["unitA"] == 2
        assert load_result(out / "unitA.json").experiment_id == "unitA"

    def test_resume_skips_valid_artifacts(self, tmp_path, fake_experiments):
        ids, calls = fake_experiments
        out = tmp_path / "report"
        write_report(out, ids=ids)
        written = write_report(out, ids=ids, resume=True)
        assert written == ids
        assert all(count == 1 for count in calls.values())

    def test_scale_change_invalidates_journal_entries(
        self, tmp_path, fake_experiments
    ):
        ids, calls = fake_experiments
        out = tmp_path / "report"
        write_report(out, ids=["unitA"], scale=0.1)
        write_report(out, ids=["unitA"], scale=0.2, resume=True)
        assert calls["unitA"] == 2


# --- sweep integration --------------------------------------------------


class TestSweepResilience:
    def configs(self):
        return [
            SystemConfig(l1_bytes=kb(1)),
            SystemConfig(l1_bytes=kb(2)),
            SystemConfig(l1_bytes=kb(4)),
        ]

    def test_keep_going_isolates_one_point(self):
        configs = self.configs()
        unit_id = f"0001:{configs[1].label}"
        faults.install(faults.FaultPlan(fail_unit=unit_id, fail_times=99))
        result = run_sweep("espresso", configs, scale=0.02, keep_going=True)
        assert len(result.completed) == 2
        assert result.failed[0].error["unit"] == unit_id

    def test_journal_resume_restores_points(self, tmp_path):
        configs = self.configs()
        journal = tmp_path / "sweep.jsonl"
        first = run_sweep("espresso", configs, scale=0.02, journal_path=journal)
        fresh_points = [as_point(value) for value in first.values()]

        resumed = run_sweep(
            "espresso", configs, scale=0.02, journal_path=journal, resume=True
        )
        assert all(o.status == "skipped" for o in resumed.outcomes)
        restored = resumed.values()
        assert all(isinstance(p, SweepPoint) for p in restored)
        assert [(p.label, round(p.tpi_ns, 6)) for p in restored] == [
            (p.label, round(p.tpi_ns, 6)) for p in fresh_points
        ]
