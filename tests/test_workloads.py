"""The seven workload models: catalogue integrity and Table 1 ratios."""

import pytest

from repro.errors import TraceError
from repro.traces.workloads import WORKLOADS, get_workload, workload_names

#: Table 1 of the paper: (instruction refs M, data refs M).
PAPER_TABLE1 = {
    "gcc1": (22.7, 7.2),
    "espresso": (135.3, 31.8),
    "fpppp": (244.1, 136.2),
    "doduc": (283.6, 108.2),
    "li": (1247.1, 452.8),
    "eqntott": (1484.7, 293.6),
    "tomcatv": (1986.3, 963.6),
}


class TestCatalog:
    def test_exactly_the_seven_benchmarks(self):
        assert set(workload_names()) == set(PAPER_TABLE1)

    def test_order_matches_table1(self):
        assert workload_names() == list(PAPER_TABLE1)

    def test_paper_reference_counts(self):
        for name, (instr, data) in PAPER_TABLE1.items():
            spec = WORKLOADS[name]
            assert spec.paper_instruction_refs == instr
            assert spec.paper_data_refs == data
            assert spec.paper_total_refs == pytest.approx(instr + data)

    def test_data_ratio_taken_from_table1(self):
        for name, (instr, data) in PAPER_TABLE1.items():
            assert WORKLOADS[name].data_ratio == pytest.approx(data / instr)

    def test_get_workload_unknown_name(self):
        with pytest.raises(TraceError, match="unknown workload"):
            get_workload("dhrystone")

    def test_every_spec_builds(self):
        for name in workload_names():
            generator = get_workload(name).build()
            assert generator.name == name

    def test_descriptions_present(self):
        for spec in WORKLOADS.values():
            assert len(spec.description) > 10


class TestGeneratedCharacter:
    def test_generated_ratio_matches_spec(self):
        for name in ("gcc1", "tomcatv"):
            spec = get_workload(name)
            trace = spec.build().generate(30000)
            assert trace.data_ratio == pytest.approx(spec.data_ratio, abs=0.03)

    def test_tomcatv_is_stream_dominated(self):
        spec = get_workload("tomcatv")
        stream_weight = sum(
            c.weight for c in spec.data_components if hasattr(c, "n_arrays")
        )
        total = sum(c.weight for c in spec.data_components)
        assert stream_weight / total > 0.5

    def test_fpppp_has_the_longest_functions(self):
        lengths = {
            name: WORKLOADS[name].instructions.function_instructions
            for name in workload_names()
        }
        assert max(lengths, key=lengths.get) == "fpppp"

    def test_code_footprints_span_small_to_large(self):
        footprints = [
            spec.instructions.footprint_bytes for spec in WORKLOADS.values()
        ]
        assert min(footprints) <= 8 * 1024
        assert max(footprints) >= 128 * 1024
