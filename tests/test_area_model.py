"""rbe area model: anchors, monotonicity, porting, organisation cost."""

import pytest

from repro.area.model import cache_area, optimal_cache_area
from repro.area.rbe import RBE_PER_COMPARATOR, RBE_PER_SRAM_BIT
from repro.cache.geometry import CacheGeometry
from repro.errors import ModelError
from repro.timing.optimal import optimal_timing
from repro.timing.organization import ArrayOrganization
from repro.units import kb

SIZES = [kb(k) for k in (1, 2, 4, 8, 16, 32, 64, 128, 256)]


class TestPublishedConstants:
    def test_sram_cell_is_0_6_rbe(self):
        assert RBE_PER_SRAM_BIT == 0.6

    def test_comparator_is_six_cells(self):
        """The paper: 'a comparator only occupies 6x0.6 rbe's'."""
        assert RBE_PER_COMPARATOR == pytest.approx(3.6)


class TestCacheArea:
    def _area(self, size, assoc=1, ports=1):
        return optimal_cache_area(size, associativity=assoc, ports=ports)

    def test_data_cells_dominate_large_caches(self):
        area = self._area(kb(256))
        assert area.cell_fraction > 0.9

    def test_small_caches_pay_big_periphery(self):
        area = self._area(kb(1))
        assert area.cell_fraction < 0.75

    def test_data_cell_area_exact(self):
        g = CacheGeometry(kb(4))
        org = optimal_timing(kb(4)).organization
        area = cache_area(g, org)
        assert area.data_cells == pytest.approx(kb(4) * 8 * 0.6)

    def test_monotonic_in_size(self):
        totals = [self._area(size).total for size in SIZES]
        assert all(a < b for a, b in zip(totals, totals[1:]))

    def test_roughly_linear_at_large_sizes(self):
        a128, a256 = self._area(kb(128)).total, self._area(kb(256)).total
        assert 1.8 < a256 / a128 < 2.2

    def test_dual_port_near_double(self):
        """§6: 'A cache with two ports typically requires twice the area'."""
        for size in (kb(4), kb(32), kb(256)):
            single = self._area(size).total
            double = self._area(size, ports=2).total
            assert 1.6 <= double / single <= 2.1

    def test_set_associativity_costs_little(self):
        """§5: comparators are small next to data/tag arrays."""
        for size in (kb(16), kb(256)):
            dm = self._area(size).total
            sa = self._area(size, assoc=4).total
            assert 0.95 < sa / dm < 1.2

    def test_figure1_axis_anchors(self):
        """Fig 1's X axis: a pair of 1 KB L1s near 2e4 rbe, a pair of
        256 KB near 3e6 rbe."""
        pair_1k = 2 * self._area(kb(1)).total
        pair_256k = 2 * self._area(kb(256)).total
        assert 1.2e4 <= pair_1k <= 4e4
        assert 2e6 <= pair_256k <= 4.5e6

    def test_rejects_bad_ports(self):
        g = CacheGeometry(kb(4))
        org = optimal_timing(kb(4)).organization
        with pytest.raises(ModelError):
            cache_area(g, org, ports=0)

    def test_more_subarrays_cost_more_area(self):
        g = CacheGeometry(kb(16))
        flat = cache_area(g, ArrayOrganization(1, 1, 1, 1, 1, 1))
        split = cache_area(g, ArrayOrganization(4, 4, 1, 2, 2, 1))
        assert split.total > flat.total

    def test_breakdown_total_is_sum(self):
        area = self._area(kb(8))
        parts = (
            area.data_cells
            + area.tag_cells
            + area.sense_amps
            + area.column_circuitry
            + area.row_circuitry
            + area.decoders
            + area.comparators
            + area.output_drivers
            + area.control
        )
        assert area.total == pytest.approx(parts)

    def test_memoised(self):
        assert optimal_cache_area(kb(8)) is optimal_cache_area(kb(8))
