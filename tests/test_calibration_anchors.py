"""Miss-rate anchors from the paper's §3, at full trace scale.

The paper states three 32 KB miss rates explicitly; the synthetic
workloads were calibrated against them.  These run at scale 1.0 and are
the slowest tests in the suite — they share generated traces with
``test_paper_claims`` through the trace store.
"""

import pytest

from conftest import FULL
from repro.cache.hierarchy import simulate_hierarchy
from repro.traces.store import get_trace
from repro.units import kb


def miss_rate(workload: str, size_kb: int) -> float:
    trace = get_trace(workload, FULL)
    return simulate_hierarchy(trace, kb(size_kb)).l1_miss_rate


class TestPaperStatedAnchors:
    def test_espresso_32k(self):
        """'espresso ... low miss rates (0.0100 ... at 32KB)'."""
        assert miss_rate("espresso", 32) == pytest.approx(0.0100, abs=0.004)

    def test_eqntott_32k(self):
        """'eqntott ... (0.0149 ...) at 32KB'."""
        assert miss_rate("eqntott", 32) == pytest.approx(0.0149, abs=0.005)

    def test_tomcatv_32k(self):
        """'tomcatv ... relatively high miss rate (0.109 at 32KB)'."""
        assert miss_rate("tomcatv", 32) == pytest.approx(0.109, abs=0.02)

    def test_tomcatv_flat_beyond_32k(self):
        """'the miss rate does not drop appreciably as the cache size is
        increased'."""
        at_32 = miss_rate("tomcatv", 32)
        at_256 = miss_rate("tomcatv", 256)
        assert at_256 > 0.85 * at_32


class TestQualitativeCurves:
    @pytest.mark.parametrize(
        "workload", ["gcc1", "espresso", "fpppp", "doduc", "li", "eqntott"]
    )
    def test_miss_rate_decreases_with_size(self, workload):
        rates = [miss_rate(workload, k) for k in (1, 4, 16, 64, 256)]
        assert all(a >= b - 1e-4 for a, b in zip(rates, rates[1:]))

    def test_small_cache_rates_in_spec89_range(self):
        """1 KB split caches missed ~5-25 % on SPEC89 workloads."""
        for workload in ("gcc1", "espresso", "li", "eqntott"):
            rate = miss_rate(workload, 1)
            assert 0.03 < rate < 0.30, workload

    def test_fpppp_keeps_improving_to_256k(self):
        """fpppp's huge code footprint rewards very large caches."""
        assert miss_rate("fpppp", 256) < 0.5 * miss_rate("fpppp", 64)

    def test_espresso_gains_little_beyond_32k(self):
        """'there is little potential for a larger cache to remove
        significantly more misses'."""
        drop = miss_rate("espresso", 32) - miss_rate("espresso", 256)
        assert drop < 0.01
