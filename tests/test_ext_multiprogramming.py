"""Multiprogramming extension: interleaving and interference."""

import numpy as np
import pytest

from conftest import TINY
from repro.errors import TraceError
from repro.ext.multiprogramming import (
    interleave_traces,
    multiprogramming_study,
)
from repro.traces.address import Trace
from repro.traces.store import get_trace
from repro.units import kb


def tiny_trace(name, n, base=0):
    i = np.arange(n, dtype=np.int64) * 4 + base
    return Trace(name, i, np.array([]), np.array([]))


class TestInterleave:
    def test_total_lengths_preserved(self):
        a, b = tiny_trace("a", 25), tiny_trace("b", 10)
        merged = interleave_traces(a, b, quantum_instructions=4)
        assert merged.n_instructions == 35

    def test_round_robin_order(self):
        a, b = tiny_trace("a", 4), tiny_trace("b", 4)
        merged = interleave_traces(a, b, quantum_instructions=2)
        spaces = (merged.i_addrs // (1 << 44)).tolist()
        assert spaces == [1, 1, 2, 2, 1, 1, 2, 2]

    def test_address_spaces_disjoint(self):
        a = get_trace("espresso", TINY)
        b = get_trace("li", TINY)
        merged = interleave_traces(a, b, 1000)
        spaces = set((merged.i_addrs // (1 << 44)).tolist())
        assert spaces == {1, 2}

    def test_data_refs_follow_their_quantum(self):
        i = np.arange(6, dtype=np.int64) * 4
        a = Trace("a", i, np.array([100, 200]), np.array([0, 5]))
        b = tiny_trace("b", 6)
        merged = interleave_traces(a, b, quantum_instructions=3)
        # a's instr 0 runs at merged time 0; a's instr 5 runs in the
        # second quantum of a, i.e. merged time 3 (b's quantum) + ...
        assert merged.d_times.tolist() == [0, 8]
        assert merged.n_data_refs == 2

    def test_times_monotone_on_real_workloads(self):
        a = get_trace("espresso", TINY)
        b = get_trace("li", TINY)
        merged = interleave_traces(a, b, 5000)
        assert np.all(np.diff(merged.d_times) >= 0)
        assert merged.n_refs == a.n_refs + b.n_refs

    def test_default_name(self):
        merged = interleave_traces(tiny_trace("a", 4), tiny_trace("b", 4), 2)
        assert merged.name == "a+b"

    def test_bad_quantum(self):
        with pytest.raises(TraceError):
            interleave_traces(tiny_trace("a", 4), tiny_trace("b", 4), 0)


class TestStudy:
    def test_interference_inflates_misses(self):
        result = multiprogramming_study(
            "espresso", "li", kb(4), kb(32), quantum_instructions=2000, scale=TINY
        )
        assert result.interference_factor >= 1.0

    def test_smaller_quantum_interferes_more(self):
        coarse = multiprogramming_study(
            "espresso", "li", kb(4), quantum_instructions=10_000, scale=TINY
        )
        fine = multiprogramming_study(
            "espresso", "li", kb(4), quantum_instructions=500, scale=TINY
        )
        assert fine.interference_factor >= coarse.interference_factor - 0.02

    def test_bigger_l2_absorbs_interference(self):
        small = multiprogramming_study(
            "espresso", "li", kb(2), kb(8), quantum_instructions=2000, scale=TINY
        )
        large = multiprogramming_study(
            "espresso", "li", kb(2), kb(128), quantum_instructions=2000, scale=TINY
        )
        assert large.combined.global_miss_rate <= small.combined.global_miss_rate
