"""Shared fixtures and helpers for the test suite.

Traces are expensive, so fixtures are session-scoped and the library's
own memoisation (the trace store, the L1 miss-stream cache) is relied
on heavily: tests asking for the same (workload, scale) pair share one
generated trace.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.address import Trace
from repro.traces.store import get_trace

#: Tiny scale for correctness tests (2 % of the base instruction count).
TINY = 0.02

#: Moderate scale for qualitative shape checks.
MEDIUM = 0.2

#: Full scale for the calibration anchors.
FULL = 1.0


def make_random_trace(
    seed: int,
    n_instructions: int = 400,
    n_lines: int = 64,
    data_ratio: float = 0.4,
    name: str = "random",
) -> Trace:
    """A small uniformly-random trace for oracle comparisons.

    Uniform random addresses are the adversarial case for the
    vectorised simulators (no locality structure to hide behind).
    """
    rng = np.random.default_rng(seed)
    i_addrs = rng.integers(0, n_lines, size=n_instructions) * 16
    mask = rng.random(n_instructions) < data_ratio
    d_times = np.nonzero(mask)[0]
    d_addrs = rng.integers(0, n_lines, size=len(d_times)) * 16 + (1 << 40)
    return Trace(name, i_addrs, d_addrs, d_times)


@pytest.fixture(scope="session")
def gcc1_tiny() -> Trace:
    return get_trace("gcc1", TINY)


@pytest.fixture(scope="session")
def li_tiny() -> Trace:
    return get_trace("li", TINY)


@pytest.fixture(scope="session")
def gcc1_full() -> Trace:
    return get_trace("gcc1", FULL)
