"""Write-back traffic accounting (§2.2's abstraction, quantified)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.directmap import dirty_victim_mask
from repro.cache.hierarchy import Policy
from repro.core.config import SystemConfig
from repro.core.evaluate import evaluate
from repro.errors import ConfigurationError, TraceError
from repro.ext.writes import count_write_traffic, evaluate_with_writes
from repro.traces.address import Trace
from repro.units import kb


def reference_dirty(lines, stores, n_sets):
    """Dict-based oracle for dirty-victim computation."""
    resident = {}
    dirty = {}
    out = []
    for line, store in zip(lines, stores):
        index = line % n_sets
        current = resident.get(index)
        if current == line:
            dirty[index] = dirty.get(index, False) or store
            out.append(False)
        else:
            out.append(current is not None and dirty.get(index, False))
            resident[index] = line
            dirty[index] = store
    return out


class TestDirtyVictimMask:
    def test_clean_stream_has_no_dirty_victims(self):
        lines = np.array([1, 5, 1, 5])
        stores = np.zeros(4, dtype=bool)
        assert not dirty_victim_mask(lines, stores, 4).any()

    def test_store_marks_victim_dirty(self):
        # line 1 stored to, then evicted by line 5 (same set of 4).
        lines = np.array([1, 5])
        stores = np.array([True, False])
        assert dirty_victim_mask(lines, stores, 4).tolist() == [False, True]

    def test_dirtiness_cleared_after_eviction(self):
        # 1 (store) -> 5 evicts dirty -> 1 evicts clean 5 -> 5 evicts clean 1
        lines = np.array([1, 5, 1, 5])
        stores = np.array([True, False, False, False])
        assert dirty_victim_mask(lines, stores, 4).tolist() == [
            False,
            True,
            False,
            False,
        ]

    def test_empty_stream(self):
        assert len(dirty_victim_mask(np.array([]), np.array([], dtype=bool), 4)) == 0

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(TraceError):
            dirty_victim_mask(np.array([1, 2]), np.array([True]), 4)

    @settings(max_examples=150, deadline=None)
    @given(
        data=st.lists(
            st.tuples(st.integers(0, 30), st.booleans()), min_size=1, max_size=200
        ),
        n_sets=st.sampled_from([1, 2, 4, 8]),
    )
    def test_matches_reference(self, data, n_sets):
        lines = np.array([d[0] for d in data], dtype=np.int64)
        stores = np.array([d[1] for d in data], dtype=bool)
        fast = dirty_victim_mask(lines, stores, n_sets).tolist()
        assert fast == reference_dirty(lines.tolist(), stores.tolist(), n_sets)


class TestCountWriteTraffic:
    def test_single_level_all_dirty_victims_offchip(self, gcc1_tiny):
        traffic = count_write_traffic(gcc1_tiny, kb(4))
        assert traffic.l1_writebacks_offchip == traffic.l1_dirty_victims
        assert traffic.l2_dirty_evictions == 0

    def test_l2_absorbs_most_writebacks(self, gcc1_tiny):
        single = count_write_traffic(gcc1_tiny, kb(4))
        two = count_write_traffic(gcc1_tiny, kb(4), kb(64), 4)
        assert two.offchip_writes < single.offchip_writes

    def test_exclusive_keeps_dirty_data_on_chip(self, gcc1_tiny):
        """Exclusion writes victims into the L2 unconditionally, so
        fewer dirty lines fall straight off-chip than conventionally."""
        conv = count_write_traffic(
            gcc1_tiny, kb(4), kb(32), 4, Policy.CONVENTIONAL
        )
        excl = count_write_traffic(gcc1_tiny, kb(4), kb(32), 4, Policy.EXCLUSIVE)
        assert excl.l1_writebacks_offchip == 0
        assert excl.offchip_writes <= conv.offchip_writes * 1.5

    def test_no_stores_no_traffic(self):
        i = np.arange(100, dtype=np.int64) * 4
        d = np.arange(50, dtype=np.int64) * 16 + (1 << 40)
        trace = Trace("loads", i, d, np.arange(50, dtype=np.int64))
        traffic = count_write_traffic(trace, 64, 1024, 4)
        assert traffic.l1_dirty_victims == 0
        assert traffic.offchip_writes == 0

    def test_rates(self, gcc1_tiny):
        traffic = count_write_traffic(gcc1_tiny, kb(4), kb(32), 4)
        assert 0.0 <= traffic.writeback_rate_per_store <= 1.0
        assert traffic.n_stores < traffic.n_data_refs

    def test_bad_warmup(self, gcc1_tiny):
        with pytest.raises(ConfigurationError):
            count_write_traffic(gcc1_tiny, kb(4), warmup_fraction=1.0)


class TestEvaluateWithWrites:
    def test_overhead_small_vindicating_paper_abstraction(self, gcc1_tiny):
        """The paper modelled writes as reads; with a write buffer the
        TPI error that introduces should be small (a few percent)."""
        result = evaluate_with_writes(
            SystemConfig(l1_bytes=kb(8), l2_bytes=kb(64)), gcc1_tiny
        )
        assert 0.0 <= result.writeback_overhead < 0.10

    def test_no_buffer_costs_more(self, gcc1_tiny):
        config = SystemConfig(l1_bytes=kb(8), l2_bytes=kb(64))
        buffered = evaluate_with_writes(
            config, gcc1_tiny, write_buffer_efficiency=0.9
        )
        raw = evaluate_with_writes(config, gcc1_tiny, write_buffer_efficiency=0.0)
        assert raw.tpi_ns > buffered.tpi_ns

    def test_perfect_buffer_equals_baseline(self, gcc1_tiny):
        config = SystemConfig(l1_bytes=kb(8), l2_bytes=kb(64))
        result = evaluate_with_writes(
            config, gcc1_tiny, write_buffer_efficiency=1.0
        )
        baseline = evaluate(config, gcc1_tiny)
        assert result.tpi_ns == pytest.approx(baseline.tpi_ns)

    def test_validation(self, gcc1_tiny):
        with pytest.raises(ConfigurationError):
            evaluate_with_writes(
                SystemConfig(l1_bytes=kb(8)), gcc1_tiny, write_buffer_efficiency=2.0
            )
