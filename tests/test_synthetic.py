"""Synthetic workload generator: determinism, structure, components."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.synthetic import (
    InstructionModel,
    StreamComponent,
    SyntheticWorkload,
    ZipfComponent,
)
from repro.units import kb


def small_workload(name="toy", data_ratio=0.4):
    return SyntheticWorkload(
        name=name,
        instructions=InstructionModel(
            footprint_bytes=kb(8), n_functions=32, exponent=1.4
        ),
        data_components=[
            ZipfComponent(weight=0.6, footprint_bytes=kb(16), exponent=1.5),
            StreamComponent(weight=0.4, n_arrays=2, array_bytes=kb(8)),
        ],
        data_ratio=data_ratio,
    )


class TestComponentValidation:
    def test_zipf_rejects_bad_weight(self):
        with pytest.raises(TraceError):
            ZipfComponent(weight=0.0, footprint_bytes=kb(1), exponent=1.0)

    def test_zipf_rejects_tiny_footprint(self):
        with pytest.raises(TraceError):
            ZipfComponent(weight=1.0, footprint_bytes=8, exponent=1.0)

    def test_zipf_rejects_bad_exponent(self):
        with pytest.raises(TraceError):
            ZipfComponent(weight=1.0, footprint_bytes=kb(1), exponent=0.0)

    def test_stream_rejects_zero_arrays(self):
        with pytest.raises(TraceError):
            StreamComponent(weight=1.0, n_arrays=0, array_bytes=kb(1))

    def test_stream_rejects_array_smaller_than_stride(self):
        with pytest.raises(TraceError):
            StreamComponent(weight=1.0, n_arrays=1, array_bytes=4, stride_bytes=8)

    def test_instruction_model_rejects_tiny_footprint(self):
        with pytest.raises(TraceError):
            InstructionModel(footprint_bytes=8, n_functions=4, exponent=1.0)

    def test_workload_rejects_bad_ratio(self):
        with pytest.raises(TraceError):
            small_workload(data_ratio=1.5)

    def test_workload_requires_components(self):
        with pytest.raises(TraceError):
            SyntheticWorkload(
                "x",
                InstructionModel(kb(8), 32, 1.4),
                data_components=[],
                data_ratio=0.3,
            )


class TestGeneration:
    def test_exact_instruction_count(self):
        trace = small_workload().generate(12345)
        assert trace.n_instructions == 12345

    def test_deterministic_across_calls(self):
        a = small_workload().generate(5000)
        b = small_workload().generate(5000)
        assert np.array_equal(a.i_addrs, b.i_addrs)
        assert np.array_equal(a.d_addrs, b.d_addrs)
        assert np.array_equal(a.d_times, b.d_times)

    def test_different_names_differ(self):
        a = small_workload("alpha").generate(5000)
        b = small_workload("beta").generate(5000)
        assert not np.array_equal(a.i_addrs, b.i_addrs)

    def test_data_ratio_close_to_target(self):
        trace = small_workload(data_ratio=0.35).generate(50000)
        assert trace.data_ratio == pytest.approx(0.35, abs=0.02)

    def test_instruction_footprint_bounded(self):
        workload = small_workload()
        trace = workload.generate(30000)
        footprint = workload.instructions.footprint_bytes
        assert trace.i_addrs.max() < footprint
        assert trace.i_addrs.min() >= 0

    def test_instruction_stream_is_sequential_runs(self):
        trace = small_workload().generate(2000)
        deltas = np.diff(trace.i_addrs)
        # Most fetches advance by one instruction (4 bytes).
        assert (deltas == 4).mean() > 0.8

    def test_data_regions_disjoint_from_code(self):
        trace = small_workload().generate(20000)
        assert trace.d_addrs.min() >= 1 << 34

    def test_components_live_in_disjoint_regions(self):
        trace = small_workload().generate(20000)
        regions = set((trace.d_addrs // (1 << 34)).tolist())
        assert regions == {1, 2}

    def test_rejects_nonpositive_length(self):
        with pytest.raises(TraceError):
            small_workload().generate(0)


class TestStreamComponent:
    def test_stride_walk_wraps(self):
        workload = SyntheticWorkload(
            "s",
            InstructionModel(kb(4), 8, 1.2),
            [StreamComponent(weight=1.0, n_arrays=1, array_bytes=256, stride_bytes=64)],
            data_ratio=0.5,
        )
        trace = workload.generate(4000)
        offsets = trace.d_addrs - trace.d_addrs.min()
        assert set(np.unique(offsets)) <= {0, 64, 128, 192}

    def test_stagger_prevents_power_of_two_alignment(self):
        component = StreamComponent(weight=1.0, n_arrays=4, array_bytes=kb(64))
        workload = SyntheticWorkload(
            "s2",
            InstructionModel(kb(4), 8, 1.2),
            [component],
            data_ratio=0.5,
        )
        trace = workload.generate(4000)
        lines = np.unique(trace.d_addrs // 16)
        # With stagger, arrays do not collapse onto identical sets of a
        # 64 KB direct-mapped cache.
        sets = np.unique(lines % (kb(64) // 16))
        assert len(sets) > len(lines) / 4
