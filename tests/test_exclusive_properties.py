"""Semantic properties of two-level exclusive caching (§8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_random_trace
from repro.cache.hierarchy import Policy, simulate_hierarchy
from repro.study.experiments.exclusion_demo import (
    LINE_A,
    LINE_B,
    LINE_E,
    alternating_trace,
)
from repro.traces.address import Trace
from repro.units import kb


class TestFigure21Scenarios:
    """The paper's didactic Figure 21, as executable checks."""

    def test_l2_conflict_thrashes_conventionally(self):
        trace = alternating_trace(LINE_A, LINE_E)
        stats = simulate_hierarchy(
            trace, 64, 256, 1, Policy.CONVENTIONAL, warmup_fraction=0.5
        )
        # Every post-warmup data reference goes off-chip.
        assert stats.l2_misses == stats.n_data_refs
        assert stats.l2_hits == 0

    def test_l2_conflict_swaps_exclusively(self):
        trace = alternating_trace(LINE_A, LINE_E)
        stats = simulate_hierarchy(
            trace, 64, 256, 1, Policy.EXCLUSIVE, warmup_fraction=0.5
        )
        # Exclusion: both lines stay on-chip, alternating via swaps.
        assert stats.l2_misses == 0
        assert stats.l2_hits == stats.n_data_refs

    def test_l1_only_conflict_keeps_inclusion_either_way(self):
        trace = alternating_trace(LINE_A, LINE_B)
        for policy in Policy:
            stats = simulate_hierarchy(
                trace, 64, 256, 1, policy, warmup_fraction=0.5
            )
            assert stats.l2_misses == 0, policy

    def test_line_constants_match_figure(self):
        # A and E collide in both levels; B collides with A in L1 only.
        assert LINE_A % 16 == LINE_E % 16 == 13
        assert LINE_A % 4 == LINE_E % 4 == LINE_B % 4
        assert LINE_B % 16 != LINE_A % 16


class TestCapacityAdvantage:
    def test_exclusive_holds_l1_plus_l2_distinct_lines(self):
        """2x + y lines fit on-chip exclusively but not conventionally.

        A cyclic sweep over exactly (L1_I + L1_D + L2) distinct lines:
        conventional caching duplicates L1 contents in the L2, so the
        sweep always misses somewhere; exclusive caching converges to
        holding every line on-chip.
        """
        l1_bytes, l2_bytes = 64, 256  # 4 + 16 lines
        # Data sweep of 4 (L1D) + 16 (L2) = 20 lines; instruction stream
        # pinned to one line so it occupies a single L2 set at most.
        n_lines = 20
        reps = 60
        d_lines = np.tile(np.arange(n_lines, dtype=np.int64), reps)
        n_data = len(d_lines)
        i_addrs = np.zeros(n_data, dtype=np.int64)
        trace = Trace("sweep", i_addrs, d_lines * 16, np.arange(n_data))

        excl = simulate_hierarchy(
            trace, l1_bytes, l2_bytes, 4, Policy.EXCLUSIVE, warmup_fraction=0.5
        )
        conv = simulate_hierarchy(
            trace, l1_bytes, l2_bytes, 4, Policy.CONVENTIONAL, warmup_fraction=0.5
        )
        assert excl.l2_misses < conv.l2_misses

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_exclusive_never_increases_l1_misses(self, seed):
        trace = make_random_trace(seed, n_instructions=400, n_lines=60)
        conv = simulate_hierarchy(trace, 512, 2048, 4, Policy.CONVENTIONAL)
        excl = simulate_hierarchy(trace, 512, 2048, 4, Policy.EXCLUSIVE)
        assert conv.l1_misses == excl.l1_misses

    def test_exclusive_helps_on_real_workload(self, gcc1_tiny):
        conv = simulate_hierarchy(gcc1_tiny, kb(4), kb(16), 4, Policy.CONVENTIONAL)
        excl = simulate_hierarchy(gcc1_tiny, kb(4), kb(16), 4, Policy.EXCLUSIVE)
        assert excl.l2_misses < conv.l2_misses


class TestVictimCacheDegenerateCase:
    def test_l2_smaller_than_l1_acts_as_victim_cache(self, gcc1_tiny):
        """With y < x the paper notes the L2 becomes a shared victim
        cache; it must still reduce off-chip traffic under exclusion."""
        single = simulate_hierarchy(gcc1_tiny, kb(8))
        victim = simulate_hierarchy(gcc1_tiny, kb(8), kb(4), 4, Policy.EXCLUSIVE)
        assert victim.off_chip_fetches < single.off_chip_fetches

    def test_conventional_tiny_l2_is_nearly_useless(self, gcc1_tiny):
        """Conventionally a 2:1-sized L2 mostly duplicates the L1s."""
        conv = simulate_hierarchy(gcc1_tiny, kb(8), kb(4), 4, Policy.CONVENTIONAL)
        excl = simulate_hierarchy(gcc1_tiny, kb(8), kb(4), 4, Policy.EXCLUSIVE)
        assert excl.l2_hits > conv.l2_hits
