"""Stream-buffer extension (Jouppi 1990, sequential prefetch)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ext.stream_buffer import simulate_stream_buffer
from repro.traces.address import Trace
from repro.units import kb


def sequential_code_trace(n_lines: int = 200, reps: int = 4) -> Trace:
    """Long sequential instruction sweeps (one fetch per line)."""
    lines = np.tile(np.arange(n_lines, dtype=np.int64), reps)
    return Trace("seq", lines * 16, np.array([]), np.array([]))


class TestSemantics:
    def test_sequential_stream_almost_fully_prefetched(self):
        # A 64 B L1 cannot hold the 200-line sweep; the stream buffer
        # catches everything after the first miss of each sweep.
        trace = sequential_code_trace()
        stats = simulate_stream_buffer(
            trace, 64, n_buffers=1, buffer_depth=4, warmup_fraction=0.5
        )
        assert stats.buffer_hit_rate > 0.95

    def test_random_stream_gets_no_benefit(self):
        rng = np.random.default_rng(7)
        lines = rng.permutation(np.arange(2, 4000, 2))  # never sequential
        trace = Trace("rand", lines * 16, np.array([]), np.array([]))
        stats = simulate_stream_buffer(trace, 64, warmup_fraction=0.0)
        assert stats.buffer_hit_rate < 0.02

    def test_data_misses_pass_through(self):
        i = np.zeros(50, dtype=np.int64)
        d = np.arange(50, dtype=np.int64) * 16 + (1 << 40)
        trace = Trace("d", i, d, np.arange(50, dtype=np.int64))
        stats = simulate_stream_buffer(trace, 64, warmup_fraction=0.0)
        # every data miss continues below; the single I-miss too
        assert stats.misses_below == stats.l1d_misses + stats.l1i_misses

    def test_interleaved_streams_need_multiple_buffers(self):
        # Two alternating sequential streams: one buffer thrashes, two
        # buffers track both.
        a = np.arange(100, dtype=np.int64)        # lines 0..99
        b = np.arange(100, dtype=np.int64) + 301  # lines 301..400
        lines = np.empty(200, dtype=np.int64)
        lines[0::2] = a
        lines[1::2] = b
        trace = Trace("two", lines * 16, np.array([]), np.array([]))
        one = simulate_stream_buffer(
            trace, 64, n_buffers=1, buffer_depth=4, warmup_fraction=0.0
        )
        two = simulate_stream_buffer(
            trace, 64, n_buffers=2, buffer_depth=4, warmup_fraction=0.0
        )
        assert two.buffer_hits > one.buffer_hits

    def test_validation(self, gcc1_tiny):
        with pytest.raises(ConfigurationError):
            simulate_stream_buffer(gcc1_tiny, kb(4), n_buffers=0)
        with pytest.raises(ConfigurationError):
            simulate_stream_buffer(gcc1_tiny, kb(4), buffer_depth=0)
        with pytest.raises(ConfigurationError):
            simulate_stream_buffer(gcc1_tiny, kb(4), warmup_fraction=1.0)


class TestOnWorkloads:
    def test_fpppp_benefits_most(self):
        """Huge sequential basic blocks are the stream buffer's dream."""
        fpppp = simulate_stream_buffer("fpppp", kb(2), scale=0.02)
        eqntott = simulate_stream_buffer("eqntott", kb(2), scale=0.02)
        assert fpppp.buffer_hit_rate > eqntott.buffer_hit_rate

    def test_reduces_traffic_below(self, gcc1_tiny):
        stats = simulate_stream_buffer(gcc1_tiny, kb(2))
        assert stats.misses_below < stats.l1_misses

    def test_counts_partition(self, gcc1_tiny):
        stats = simulate_stream_buffer(gcc1_tiny, kb(2))
        assert stats.buffer_hits + stats.misses_below == stats.l1_misses
