"""Smoke-run every registered experiment at a tiny trace scale.

These tests prove each exhibit's pipeline runs end-to-end and emits
well-formed series; the qualitative *shape* assertions live in
``test_paper_claims.py`` at a larger scale.
"""

import pytest

from conftest import TINY
from repro.study import experiment_ids, run_experiment

#: Experiments that involve no trace simulation run at any scale.
SCALE_FREE = {"fig1", "fig2", "fig21"}

#: Figure experiments grouped by cost so the heavy sweeps share traces.
ALL_IDS = experiment_ids()


@pytest.mark.parametrize("experiment_id", ALL_IDS)
def test_experiment_runs_and_is_well_formed(experiment_id):
    scale = None if experiment_id in SCALE_FREE else TINY
    result = run_experiment(experiment_id, scale=scale)
    assert result.experiment_id == experiment_id
    assert result.series, "every experiment must emit at least one series"
    for series in result.series:
        assert series.rows, f"series {series.name!r} is empty"
    text = result.render()
    assert experiment_id in text


def test_tpi_figures_expose_standard_columns():
    result = run_experiment("fig3", scale=TINY)
    for series in result.series:
        assert series.columns == ("config", "area_rbe", "tpi_ns")
        tpis = series.column("tpi_ns")
        assert all(t > 0 for t in tpis)


def test_envelopes_are_staircases():
    result = run_experiment("fig6", scale=TINY)
    for series in result.series:
        areas = series.column("area_rbe")
        tpis = series.column("tpi_ns")
        if "best" in series.name or "1-level only" in series.name:
            assert areas == sorted(areas)
            assert all(a > b for a, b in zip(tpis, tpis[1:]))


def test_table1_shape():
    result = run_experiment("table1", scale=TINY)
    series = result.series[0]
    assert len(series.rows) == 7
    programs = series.column("program")
    assert programs[0] == "gcc1" and programs[-1] == "tomcatv"
    # synthetic ratio tracks the paper ratio
    for synth, paper in zip(
        series.column("synth_data_ratio"), series.column("paper_data_ratio")
    ):
        assert synth == pytest.approx(paper, abs=0.05)
