"""Unit helpers: conversions, power-of-two arithmetic, quantisation."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError, ModelError
from repro.units import (
    KB,
    ceil_div,
    fmt_size,
    is_pow2,
    kb,
    log2_int,
    round_up_to_multiple,
    to_kb,
)


class TestKb:
    def test_kb_is_1024_bytes(self):
        assert KB == 1024
        assert kb(1) == 1024
        assert kb(256) == 256 * 1024

    def test_fractional_kb_allowed_when_whole_bytes(self):
        assert kb(0.5) == 512

    def test_fractional_kb_rejected_when_not_whole(self):
        with pytest.raises(GeometryError):
            kb(0.0001)

    def test_roundtrip(self):
        assert to_kb(kb(32)) == 32.0


class TestPow2:
    def test_is_pow2_basics(self):
        assert is_pow2(1)
        assert is_pow2(4096)
        assert not is_pow2(0)
        assert not is_pow2(-4)
        assert not is_pow2(3)

    def test_is_pow2_rejects_bools(self):
        # bool is an int subtype; True would otherwise read as 2**0 and
        # let CacheGeometry(True) slip through the validator.
        assert not is_pow2(True)
        assert not is_pow2(False)

    def test_is_pow2_rejects_non_integers(self):
        assert not is_pow2(4.0)
        assert not is_pow2("4")
        assert not is_pow2(None)

    def test_log2_int(self):
        assert log2_int(1) == 0
        assert log2_int(65536) == 16

    def test_log2_int_rejects_non_pow2(self):
        with pytest.raises(GeometryError):
            log2_int(12)

    @given(st.integers(min_value=0, max_value=60))
    def test_log2_roundtrip(self, exponent):
        assert log2_int(1 << exponent) == exponent


class TestCeilDiv:
    def test_exact_and_inexact(self):
        assert ceil_div(8, 4) == 2
        assert ceil_div(9, 4) == 3
        assert ceil_div(0, 4) == 0

    def test_rejects_bad_divisor(self):
        with pytest.raises(ModelError):
            ceil_div(4, 0)

    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=1, max_value=10**6))
    def test_matches_math_ceil(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b)


class TestRoundUpToMultiple:
    def test_rounds_up(self):
        assert round_up_to_multiple(4.1, 2.0) == pytest.approx(6.0)

    def test_exact_multiple_unchanged(self):
        assert round_up_to_multiple(4.0, 2.0) == pytest.approx(4.0)

    def test_float_noise_does_not_add_a_cycle(self):
        # 3 * 0.7 is not representable exactly; quantisation must not
        # bump an "exact" multiple up a whole quantum.
        assert round_up_to_multiple(0.7 * 3, 0.7) == pytest.approx(2.1)

    def test_zero_value(self):
        assert round_up_to_multiple(0.0, 2.5) == 0.0

    def test_rejects_nonpositive_quantum(self):
        with pytest.raises(ModelError):
            round_up_to_multiple(1.0, 0.0)

    @given(
        st.floats(min_value=0.01, max_value=1e6),
        st.floats(min_value=0.01, max_value=1e3),
    )
    def test_result_is_multiple_and_not_less(self, value, quantum):
        result = round_up_to_multiple(value, quantum)
        assert result >= value - 1e-9 * max(1.0, value)
        ratio = result / quantum
        assert abs(ratio - round(ratio)) < 1e-6


class TestFmtSize:
    def test_kilobyte_labels(self):
        assert fmt_size(32768) == "32K"
        assert fmt_size(1024) == "1K"

    def test_sub_kb_labels(self):
        assert fmt_size(512) == "512B"
        assert fmt_size(1536) == "1536B"
