"""Property tests: the set-associative cache against a model oracle,
and the exclusivity invariant of the swap policy."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_random_trace
from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import Policy
from repro.cache.l2 import SetAssociativeCache
from repro.cache.reference import ReferenceDirectMapped
from repro.cache.replacement import LruReplacement


class ModelCache:
    """Oracle: an LRU set-associative cache as a dict of lists."""

    def __init__(self, n_sets: int, assoc: int) -> None:
        self.n_sets = n_sets
        self.assoc = assoc
        self.sets = {index: [] for index in range(n_sets)}

    def lookup(self, line: int) -> bool:
        bucket = self.sets[line % self.n_sets]
        if line in bucket:
            bucket.remove(line)
            bucket.insert(0, line)
            return True
        return False

    def fill(self, line: int):
        bucket = self.sets[line % self.n_sets]
        if line in bucket:
            bucket.remove(line)
            bucket.insert(0, line)
            return None
        evicted = None
        if len(bucket) >= self.assoc:
            evicted = bucket.pop()
        bucket.insert(0, line)
        return evicted

    def invalidate(self, line: int) -> bool:
        bucket = self.sets[line % self.n_sets]
        if line in bucket:
            bucket.remove(line)
            return True
        return False

    def resident(self):
        return sorted(line for bucket in self.sets.values() for line in bucket)


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["lookup", "fill", "invalidate"]),
        st.integers(min_value=0, max_value=40),
    ),
    min_size=1,
    max_size=150,
)


class TestAgainstModelOracle:
    @settings(max_examples=120, deadline=None)
    @given(ops=ops_strategy)
    def test_lru_cache_matches_model(self, ops):
        geometry = CacheGeometry(512, associativity=4)  # 8 sets x 4 ways
        cache = SetAssociativeCache(
            geometry, LruReplacement(4, geometry.n_sets)
        )
        model = ModelCache(geometry.n_sets, 4)
        for op, line in ops:
            if op == "lookup":
                assert cache.lookup(line) == model.lookup(line)
            elif op == "fill":
                assert cache.fill(line) == model.fill(line)
            else:
                assert cache.invalidate(line) == model.invalidate(line)
        assert cache.resident_lines().tolist() == model.resident()

    @settings(max_examples=60, deadline=None)
    @given(ops=ops_strategy)
    def test_capacity_invariant_any_policy(self, ops):
        geometry = CacheGeometry(256, associativity=2)
        cache = SetAssociativeCache(geometry)
        for op, line in ops:
            if op == "fill":
                cache.fill(line)
            elif op == "invalidate":
                cache.invalidate(line)
        assert cache.n_valid_lines <= geometry.n_lines
        resident = cache.resident_lines()
        # Every resident line sits in its own set.
        for line in resident.tolist():
            assert line in cache.set_contents(line % geometry.n_sets)


class TestExclusivityInvariant:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_no_line_in_both_levels_after_exclusive_run(self, seed):
        """Replay a trace through explicit L1 models + the exclusive L2
        and assert the defining invariant: at the end, no line resides
        in an L1 *and* the L2 via that L1's own traffic.

        (A line victimised by the I-cache may legitimately sit in the
        L2 while the D-cache holds its own copy — the paper's split L1s
        share the L2 — so the invariant is checked per cache.)
        """
        trace = make_random_trace(seed, n_instructions=300, n_lines=48)
        l1_geometry = CacheGeometry(256)  # 16 sets
        icache = ReferenceDirectMapped(l1_geometry.n_sets)
        dcache = ReferenceDirectMapped(l1_geometry.n_sets)
        l2 = SetAssociativeCache(CacheGeometry(1024, associativity=4))

        def touch(cache, line):
            miss, victim = cache.access(line)
            if not miss:
                return
            if l2.lookup(line):
                l2.invalidate(line)
            if victim != -1:
                l2.fill(victim)

        d_cursor = 0
        d_lines = trace.d_lines(16).tolist()
        d_times = trace.d_times.tolist()
        for cycle, line in enumerate(trace.i_lines(16).tolist()):
            touch(icache, line)
            while d_cursor < len(d_lines) and d_times[d_cursor] == cycle:
                touch(dcache, d_lines[d_cursor])
                d_cursor += 1

        resident_l2 = set(l2.resident_lines().tolist())
        # I-stream and D-stream use disjoint address regions in
        # make_random_trace, so per-cache exclusion is checkable.
        i_resident = set(icache.contents.values())
        d_resident = set(dcache.contents.values())
        assert not (i_resident & resident_l2)
        assert not (d_resident & resident_l2)


class TestPolicyOrderings:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_exclusive_never_more_offchip_than_conventional(self, seed):
        from repro.cache.hierarchy import simulate_hierarchy

        trace = make_random_trace(seed, n_instructions=400, n_lines=80)
        conv = simulate_hierarchy(trace, 512, 2048, 4, Policy.CONVENTIONAL)
        excl = simulate_hierarchy(trace, 512, 2048, 4, Policy.EXCLUSIVE)
        # Not a theorem for adversarial traces, but random traces favour
        # capacity: allow a tiny tolerance for replacement noise.
        assert excl.l2_misses <= conv.l2_misses * 1.05 + 2

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        sizes=st.sampled_from([(1024, 4096), (512, 4096), (1024, 8192)]),
    )
    def test_bigger_l2_never_more_offchip(self, seed, sizes):
        from repro.cache.hierarchy import simulate_hierarchy

        l1, l2 = sizes
        trace = make_random_trace(seed, n_instructions=400, n_lines=100)
        small = simulate_hierarchy(trace, l1, l2, 4)
        large = simulate_hierarchy(trace, l1, l2 * 2, 4)
        assert large.l2_misses <= small.l2_misses + 2
