"""Design-space enumeration and sweeping."""

import pytest

from conftest import TINY
from repro.cache.hierarchy import Policy
from repro.core.config import SystemConfig
from repro.core.explorer import (
    design_space,
    standard_l1_sizes,
    standard_l2_sizes,
    sweep,
)
from repro.units import kb


class TestStandardSizes:
    def test_l1_sizes_match_paper(self):
        sizes = standard_l1_sizes()
        assert sizes[0] == kb(1)
        assert sizes[-1] == kb(256)
        assert len(sizes) == 9

    def test_l2_sizes_start_at_twice_l1(self):
        sizes = standard_l2_sizes(kb(8))
        assert sizes[0] == 0
        assert sizes[1] == kb(16)
        assert sizes[-1] == kb(256)

    def test_l2_sizes_for_max_l1(self):
        # 256 KB L1s leave no valid (>= 2x) L2 at the 256 KB cap.
        assert standard_l2_sizes(kb(256)) == [0]


class TestDesignSpace:
    def test_default_space_counts(self):
        configs = design_space()
        # 9 single-level + sum over L1 of valid L2 counts
        singles = [c for c in configs if not c.has_l2]
        assert len(singles) == 9
        assert all(c.l2_bytes == 0 or c.l2_bytes >= 2 * c.l1_bytes for c in configs)
        assert len(configs) == 45

    def test_template_fields_propagate(self):
        template = SystemConfig(
            l1_bytes=kb(1),
            policy=Policy.EXCLUSIVE,
            off_chip_ns=200.0,
            l2_associativity=1,
        )
        configs = design_space(template)
        for config in configs:
            assert config.off_chip_ns == 200.0
            assert config.l2_associativity == 1
            if config.has_l2:
                assert config.policy is Policy.EXCLUSIVE

    def test_single_level_points_use_conventional_policy(self):
        template = SystemConfig(l1_bytes=kb(1), policy=Policy.EXCLUSIVE)
        singles = [c for c in design_space(template) if not c.has_l2]
        assert all(c.policy is Policy.CONVENTIONAL for c in singles)

    def test_exclude_single_level(self):
        configs = design_space(include_single_level=False)
        assert all(c.has_l2 for c in configs)

    def test_explicit_sizes(self):
        configs = design_space(
            l1_sizes=[kb(1), kb(2)], l2_sizes=[0, kb(2), kb(8)]
        )
        labels = {c.label for c in configs}
        assert labels == {"1:0", "1:2", "1:8", "2:0", "2:8"}


class TestSweep:
    def test_sweep_returns_one_perf_per_config(self):
        configs = design_space(l1_sizes=[kb(1), kb(2)], l2_sizes=[0, kb(8)])
        perfs = sweep("espresso", configs, scale=TINY)
        assert len(perfs) == len(configs)
        assert [p.config for p in perfs] == list(configs)

    def test_sweep_is_deterministic(self):
        configs = design_space(l1_sizes=[kb(1)], l2_sizes=[0, kb(4)])
        a = sweep("espresso", configs, scale=TINY)
        b = sweep("espresso", configs, scale=TINY)
        assert [p.tpi_ns for p in a] == [p.tpi_ns for p in b]
