"""Text table rendering."""

from repro.study.report import format_value, render_table


class TestFormatValue:
    def test_floats_by_magnitude(self):
        assert format_value(123456.0) == "123,456"
        assert format_value(123.456) == "123.5"
        assert format_value(1.23456) == "1.235"
        assert format_value(0.00123) == "0.00123"
        assert format_value(0.0) == "0"

    def test_ints_grouped(self):
        assert format_value(1234567) == "1,234,567"

    def test_bool_before_int(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_strings_pass_through(self):
        assert format_value("32:256") == "32:256"


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(("name", "value"), [("a", 1), ("long", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("value")
        assert set(lines[1]) <= {"-", " "}
        # all rows same width
        assert len({len(line) for line in lines}) == 1

    def test_empty_rows(self):
        text = render_table(("a",), [])
        assert "a" in text
