"""ASCII log-log plot rendering."""

import pytest

from repro.errors import ExperimentError
from repro.study.plot import plot_experiment, plot_series
from repro.study.registry import ExperimentResult, Series


def series(name, rows, columns=("config", "area_rbe", "tpi_ns")):
    return Series(name=name, columns=columns, rows=tuple(rows))


class TestPlotSeries:
    def test_points_appear_with_series_glyphs(self):
        s1 = series("alpha", [("a", 1e4, 5.0), ("b", 1e6, 2.0)])
        s2 = series("beta", [("c", 1e5, 10.0)])
        plot = plot_series([s1, s2])
        text = plot.render()
        assert "o" in text and "x" in text
        assert ("o", "alpha") in plot.legend
        assert ("x", "beta") in plot.legend

    def test_axes_labelled_with_log_ticks(self):
        s = series("a", [("p", 1e4, 1.0), ("q", 1e6, 100.0)])
        text = plot_series([s]).render()
        assert "100k" in text or "1M" in text
        assert "10" in text

    def test_single_point_renders(self):
        s = series("a", [("p", 5e4, 7.0)])
        text = plot_series([s]).render()
        assert "o" in text

    def test_non_positive_points_skipped(self):
        s = series("a", [("p", 0.0, 5.0), ("q", 1e5, 4.0)])
        plot = plot_series([s])
        body = "\n".join(plot.lines)
        assert body.count("o") == 1

    def test_empty_input_raises(self):
        with pytest.raises(ExperimentError):
            plot_series([series("a", [])])

    def test_dimensions_respected(self):
        s = series("a", [("p", 1e4, 1.0), ("q", 1e6, 10.0)])
        plot = plot_series([s], width=40, height=10)
        data_rows = [line for line in plot.lines if "|" in line and "+" not in line]
        assert len(data_rows) >= 10

    def test_glyphs_cycle_beyond_eight_series(self):
        many = [
            series(f"s{i}", [(f"p{i}", 10.0 ** (4 + i / 10), float(i + 1))])
            for i in range(10)
        ]
        plot = plot_series(many)
        assert plot.legend[0][0] == plot.legend[8][0]  # cycled


class TestPlotExperiment:
    def test_plots_figure_result(self):
        result = ExperimentResult(
            experiment_id="figX",
            title="demo",
            series=(series("env", [("a", 1e4, 5.0), ("b", 1e6, 3.0)]),),
        )
        text = plot_experiment(result)
        assert "figX" in text and "log-log" in text

    def test_selecting_named_series(self):
        result = ExperimentResult(
            experiment_id="figX",
            title="demo",
            series=(
                series("one", [("a", 1e4, 5.0)]),
                series("two", [("b", 1e5, 4.0)]),
            ),
        )
        text = plot_experiment(result, series_names=["two"])
        assert "two" in text and "  one" not in text

    def test_table_only_result_raises(self):
        result = ExperimentResult(
            experiment_id="table1",
            title="refs",
            series=(series("t", [("gcc1", 1)], columns=("program", "refs")),),
        )
        with pytest.raises(ExperimentError):
            plot_experiment(result)


class TestCliPlot:
    def test_plot_command(self, capsys):
        from repro.cli import main

        assert main(["plot", "fig4", "--scale", "0.02", "--width", "50"]) == 0
        out = capsys.readouterr().out
        assert "log-log" in out
        assert "tomcatv" in out
