"""Banked vs dual-ported L1 extension (§6 remark, Sohi & Franklin)."""

import pytest

from repro.core.config import SystemConfig
from repro.core.evaluate import evaluate
from repro.errors import ConfigurationError
from repro.ext.banking import evaluate_banked
from repro.units import kb


class TestModel:
    def test_effective_issue_below_two(self, gcc1_tiny):
        result = evaluate_banked(SystemConfig(l1_bytes=kb(8)), gcc1_tiny)
        assert 1.0 < result.effective_issue < 2.0
        assert result.conflict_probability == pytest.approx(0.25)

    def test_more_banks_fewer_conflicts(self, gcc1_tiny):
        config = SystemConfig(l1_bytes=kb(8))
        few = evaluate_banked(config, gcc1_tiny, n_banks=2)
        many = evaluate_banked(config, gcc1_tiny, n_banks=16)
        assert many.effective_issue > few.effective_issue
        assert many.tpi_ns < few.tpi_ns

    def test_banked_cheaper_but_slower_than_dual_ported(self, gcc1_tiny):
        config = SystemConfig(l1_bytes=kb(8), l2_bytes=kb(64))
        banked = evaluate_banked(config, gcc1_tiny, n_banks=4)
        dual = evaluate(config.dual_ported(), gcc1_tiny)
        assert banked.area_rbe < dual.area_rbe
        assert banked.tpi_ns > dual.tpi_ns

    def test_banked_faster_than_single_issue(self, gcc1_tiny):
        config = SystemConfig(l1_bytes=kb(8))
        banked = evaluate_banked(config, gcc1_tiny)
        single = evaluate(config, gcc1_tiny)
        assert banked.tpi_ns < single.tpi_ns
        assert banked.area_rbe > single.area_rbe

    def test_validation(self, gcc1_tiny):
        config = SystemConfig(l1_bytes=kb(8))
        with pytest.raises(ConfigurationError):
            evaluate_banked(config, gcc1_tiny, n_banks=3)
        with pytest.raises(ConfigurationError):
            evaluate_banked(config, gcc1_tiny, n_banks=1)
        with pytest.raises(ConfigurationError):
            evaluate_banked(config, gcc1_tiny, bank_area_factor=0.5)

    def test_miss_handling_unchanged(self, gcc1_tiny):
        """Banking only affects issue bandwidth; miss counts and their
        penalties equal the single-issue machine's."""
        config = SystemConfig(l1_bytes=kb(8), l2_bytes=kb(64))
        banked = evaluate_banked(config, gcc1_tiny)
        baseline = evaluate(config, gcc1_tiny)
        # TPI difference must equal the base-time difference exactly.
        base_single = baseline.tpi.base_ns / baseline.stats.n_instructions
        base_banked = base_single / banked.effective_issue
        expected = baseline.tpi_ns - base_single + base_banked
        assert banked.tpi_ns == pytest.approx(expected)
