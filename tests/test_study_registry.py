"""Experiment registry: ids, lookup, series plumbing."""

import pytest

from repro.errors import ExperimentError
from repro.study import experiment_ids, get_experiment, run_experiment
from repro.study.registry import ExperimentResult, Series

EXPECTED_IDS = (
    [f"ext{n}" for n in range(1, 11)]
    + [f"fig{n}" for n in range(1, 27)]
    + ["table1"]
)


class TestRegistry:
    def test_every_paper_exhibit_registered(self):
        assert experiment_ids() == EXPECTED_IDS

    def test_natural_ordering(self):
        ids = experiment_ids()
        assert ids.index("fig2") < ids.index("fig10")

    def test_lookup_known(self):
        experiment = get_experiment("fig5")
        assert "gcc1" in experiment.title
        assert experiment.paper_reference.startswith("Figure 5")

    def test_lookup_unknown(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            get_experiment("fig99")

    def test_every_paper_experiment_has_paper_reference(self):
        for eid in experiment_ids():
            if eid.startswith("fig") or eid.startswith("table"):
                ref = get_experiment(eid).paper_reference
                assert "Figure" in ref or "Table" in ref


class TestSeries:
    def test_row_width_validated(self):
        with pytest.raises(ExperimentError):
            Series(name="s", columns=("a", "b"), rows=((1,),))

    def test_column_extraction(self):
        series = Series(name="s", columns=("a", "b"), rows=((1, 2), (3, 4)))
        assert series.column("b") == [2, 4]

    def test_unknown_column(self):
        series = Series(name="s", columns=("a",), rows=())
        with pytest.raises(ExperimentError):
            series.column("zz")


class TestExperimentResult:
    def test_get_series_and_render(self):
        result = run_experiment("fig21")
        assert isinstance(result, ExperimentResult)
        series = result.get_series("alternating references, post-warmup counts")
        assert len(series.rows) == 4
        text = result.render()
        assert "fig21" in text
        assert "exclusive" in text

    def test_get_series_unknown(self):
        result = run_experiment("fig21")
        with pytest.raises(ExperimentError, match="no series"):
            result.get_series("nope")
