"""Lifecycle supervision: drain tokens, two-phase signals, heartbeats,
hung-worker rescue, and the SIGTERM-mid-sweep kill-and-resume round trip."""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.errors import AbortError
from repro.runner import (
    EXIT_ABORTED,
    EXIT_DRAINED,
    CancelToken,
    Heartbeat,
    HeartbeatRecord,
    PoolRunner,
    ResourceWatchdog,
    RunJournal,
    Runner,
    RunUnit,
    Supervisor,
    WatchdogPolicy,
    read_heartbeats,
)
from repro.runner import faults
from repro.runner.integrity import tree_fingerprint

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Module-level callables reach pool workers only under fork (the
#: parent defines them; spawn would re-import this module instead).
FORK = "fork" in multiprocessing.get_all_start_methods()
fork_only = pytest.mark.skipif(
    not FORK, reason="needs the fork start method to inherit parent state"
)


@pytest.fixture(autouse=True)
def clean_faults():
    faults.clear()
    yield
    faults.clear()


def make_unit(unit_id, fn=None, **kwargs):
    return RunUnit(
        unit_id=unit_id,
        payload={"id": unit_id},
        run=fn if fn is not None else lambda: unit_id,
        **kwargs,
    )


class TestCancelToken:
    def test_starts_clear(self):
        token = CancelToken()
        assert not token.cancelled
        assert token.reason is None
        assert not token.expired()
        token.raise_if_expired()  # no-op while clear

    def test_first_cancel_wins(self):
        token = CancelToken()
        assert token.cancel("first") is True
        assert token.cancel("second") is False
        assert token.cancelled
        assert token.reason == "first"

    def test_without_grace_never_expires(self):
        token = CancelToken()
        token.cancel("drain forever")
        assert not token.expired()
        token.raise_if_expired()

    def test_grace_deadline_aborts(self):
        token = CancelToken()
        token.cancel("bounded drain", grace_s=0.01)
        assert not token.expired()
        time.sleep(0.03)
        assert token.expired()
        with pytest.raises(AbortError, match="--resume"):
            token.raise_if_expired()

    def test_second_cancel_cannot_rearm_the_deadline(self):
        token = CancelToken()
        token.cancel("no deadline")
        token.cancel("too late", grace_s=0.001)
        time.sleep(0.01)
        assert not token.expired()


class TestSupervisor:
    def test_first_signal_drains(self):
        drained = []
        with Supervisor(on_drain=drained.append) as supervisor:
            assert supervisor.installed
            assert not supervisor.triggered
            os.kill(os.getpid(), signal.SIGTERM)
            time.sleep(0.01)  # bytecode boundary: deliver the signal
            assert supervisor.triggered
            assert not supervisor.aborted
        assert supervisor.token.reason == "received SIGTERM"
        assert drained == ["SIGTERM"]
        assert supervisor.exit_code() == EXIT_DRAINED

    def test_second_signal_aborts(self):
        with Supervisor() as supervisor:
            os.kill(os.getpid(), signal.SIGINT)
            time.sleep(0.01)
            assert supervisor.triggered
            with pytest.raises(AbortError, match="--resume"):
                os.kill(os.getpid(), signal.SIGINT)
                time.sleep(0.05)
        assert supervisor.aborted
        assert supervisor.exit_code() == EXIT_ABORTED

    def test_handlers_restored_on_exit(self):
        before = signal.getsignal(signal.SIGTERM)
        with Supervisor():
            assert signal.getsignal(signal.SIGTERM) != before
        assert signal.getsignal(signal.SIGTERM) == before

    def test_inert_off_the_main_thread(self):
        seen = {}

        def enter():
            with Supervisor() as supervisor:
                seen["installed"] = supervisor.installed
                seen["triggered"] = supervisor.triggered

        thread = threading.Thread(target=enter)
        thread.start()
        thread.join()
        assert seen == {"installed": False, "triggered": False}

    def test_manual_cancel_still_works_off_thread(self):
        supervisor = Supervisor()
        supervisor.token.cancel("manual")
        assert supervisor.triggered
        assert supervisor.exit_code() == EXIT_DRAINED


class TestHeartbeat:
    def test_beat_and_read_roundtrip(self, tmp_path):
        Heartbeat(tmp_path).beat("0001:2:16", phase="run")
        records = read_heartbeats(tmp_path)
        assert len(records) == 1
        record = records[0]
        assert record.pid == os.getpid()
        assert record.unit_id == "0001:2:16"
        assert record.running
        assert record.age_s >= 0.0

    def test_idle_stamp_is_not_running(self, tmp_path):
        Heartbeat(tmp_path).beat(None, phase="idle")
        (record,) = read_heartbeats(tmp_path)
        assert not record.running
        assert record.unit_id is None

    def test_torn_stamp_is_skipped(self, tmp_path):
        (tmp_path / "123.json").write_text('{"pid": 123, "uni')
        Heartbeat(tmp_path).beat("u", phase="run")
        records = read_heartbeats(tmp_path)
        assert [r.pid for r in records] == [os.getpid()]

    def test_missing_directory_reads_empty(self, tmp_path):
        assert read_heartbeats(tmp_path / "nope") == []

    def test_beat_never_raises(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        Heartbeat(blocker / "sub").beat("u")  # mkdir fails; swallowed

    def test_unit_timeout_still_reexported_from_engine(self):
        from repro.runner.engine import unit_timeout as engine_alias
        from repro.runner.lifecycle import unit_timeout

        assert engine_alias is unit_timeout


class TestHungWorkerPolicy:
    def test_policy_validation(self):
        from repro.errors import ResourceError

        with pytest.raises(ResourceError):
            WatchdogPolicy(hang_timeout_s=0.0)
        with pytest.raises(ResourceError):
            WatchdogPolicy(max_rescues=-1)

    def test_hung_workers_need_a_limit(self):
        beats = [HeartbeatRecord(pid=1, unit_id="u", phase="run", age_s=999.0)]
        assert ResourceWatchdog().hung_workers(beats) == []

    def test_only_stale_running_stamps_count(self):
        watchdog = ResourceWatchdog(WatchdogPolicy(hang_timeout_s=1.0))
        beats = [
            HeartbeatRecord(pid=1, unit_id="a", phase="run", age_s=5.0),
            HeartbeatRecord(pid=2, unit_id="b", phase="run", age_s=0.1),
            HeartbeatRecord(pid=3, unit_id=None, phase="idle", age_s=50.0),
        ]
        assert [b.pid for b in watchdog.hung_workers(beats)] == [1]


class TestSerialDrain:
    def test_runner_stops_between_units_and_resume_finishes(self, tmp_path):
        token = CancelToken()
        journal_path = tmp_path / "j.jsonl"
        executed = []

        def body(uid, cancel_after=False):
            def run():
                executed.append(uid)
                if cancel_after:
                    token.cancel("drain request")
                return uid

            return run

        units = [
            make_unit("u0", body("u0")),
            make_unit("u1", body("u1", cancel_after=True)),
            make_unit("u2", body("u2")),
        ]
        runner = Runner(journal=RunJournal.open(journal_path), cancel=token)
        result = runner.run(units)
        # u1 tripped the token mid-body: it still finished and
        # journalled; u2 never started.
        assert executed == ["u0", "u1"]
        assert [o.unit_id for o in result.completed] == ["u0", "u1"]
        assert result.interrupted == "drain request"

        resumed = Runner(journal=RunJournal.open(journal_path, resume=True))
        final = resumed.run(units)
        assert executed == ["u0", "u1", "u2"]  # completed units not re-run
        assert final.interrupted is None
        assert [o.unit_id for o in final.completed] == ["u0", "u1", "u2"]

    def test_expired_grace_aborts_instead_of_draining(self):
        token = CancelToken()
        token.cancel("bounded", grace_s=0.001)
        time.sleep(0.01)
        runner = Runner(cancel=token)
        with pytest.raises(AbortError):
            runner.run([make_unit("u0")])


# --- pool-side helpers (module-level: picklable) -------------------------


@dataclass(frozen=True)
class _LoggedRun:
    """Append one line per execution, then return; optionally wedge."""

    unit_id: str
    log: str
    marker: str = ""
    hang_in_worker: bool = False

    def __call__(self):
        with open(self.log, "a") as handle:
            handle.write(f"{self.unit_id}\n")
        if self.marker and not os.path.exists(self.marker):
            # First execution anywhere: wedge without heartbeating.
            Path(self.marker).write_text("wedged once")
            time.sleep(60.0)
        if self.hang_in_worker and multiprocessing.parent_process() is not None:
            time.sleep(60.0)  # wedges in every pool worker, serial no-op
        return self.unit_id


def executions(log: Path):
    if not log.exists():
        return []
    return log.read_text().splitlines()


@dataclass(frozen=True)
class _SlowRun:
    unit_id: str
    log: str
    sleep_s: float

    def __call__(self):
        time.sleep(self.sleep_s)
        with open(self.log, "a") as handle:
            handle.write(f"{self.unit_id}\n")
        return self.unit_id


@fork_only
class TestPoolDrain:
    def test_cancel_drains_pool_and_resume_completes(self, tmp_path):
        token = CancelToken()
        journal_path = tmp_path / "j.jsonl"
        log = tmp_path / "log.txt"
        ids = [f"u{i}" for i in range(10)]
        units = [make_unit(uid, _SlowRun(uid, str(log), 0.25)) for uid in ids]
        runner = PoolRunner(
            journal=RunJournal.open(journal_path), workers=2, cancel=token
        )
        # Cancel during the first wave: the executor pre-buffers a few
        # queued items that cannot be cancelled, so leave a wide margin
        # of genuinely-queued units behind them.
        timer = threading.Timer(0.1, token.cancel, args=("mid-flight drain",))
        timer.start()
        try:
            result = runner.run(units)
        finally:
            timer.cancel()
        assert result.interrupted == "mid-flight drain"
        done_first = {o.unit_id for o in result.completed}
        assert 0 < len(done_first) < len(ids)  # drained mid-flight
        assert all(o.status == "ok" for o in result.completed)

        resumed = PoolRunner(
            journal=RunJournal.open(journal_path, resume=True), workers=2
        )
        final = resumed.run(units)
        assert final.interrupted is None
        assert [o.unit_id for o in final.completed] == ids
        # No unit body ran twice: the drain abandoned only *queued*
        # work, and resume skipped everything journalled.
        assert sorted(executions(log)) == ids


@fork_only
class TestHungWorkerRescue:
    def test_wedged_worker_is_killed_and_unit_requeued(self, tmp_path):
        log = tmp_path / "log.txt"
        marker = tmp_path / "wedge.marker"
        units = [
            make_unit(
                "wedge", _LoggedRun("wedge", str(log), marker=str(marker))
            ),
            make_unit("a", _LoggedRun("a", str(log))),
            make_unit("b", _LoggedRun("b", str(log))),
        ]
        runner = PoolRunner(
            journal=RunJournal.open(tmp_path / "j.jsonl"),
            workers=2,
            watchdog=ResourceWatchdog(
                WatchdogPolicy(hang_timeout_s=0.75, max_rescues=3)
            ),
        )
        result = runner.run(units)
        assert [o.status for o in result.completed] == ["ok", "ok", "ok"]
        assert runner.rescues == 1
        assert runner.degraded_reason is None
        lines = executions(log)
        # The wedge executed twice (the killed attempt plus its rescue);
        # the completed units were never re-executed.
        assert lines.count("wedge") == 2
        assert lines.count("a") == 1
        assert lines.count("b") == 1

    def test_repeat_offender_degrades_to_serial(self, tmp_path):
        log = tmp_path / "log.txt"
        units = [
            make_unit(
                "stuck", _LoggedRun("stuck", str(log), hang_in_worker=True)
            ),
            make_unit("a", _LoggedRun("a", str(log))),
        ]
        runner = PoolRunner(
            journal=RunJournal.open(tmp_path / "j.jsonl"),
            workers=2,
            watchdog=ResourceWatchdog(
                WatchdogPolicy(hang_timeout_s=0.4, max_rescues=5)
            ),
        )
        result = runner.run(units)
        # Two rescues of the same unit prove it hangs deterministically;
        # the serial rung (where the wedge is a no-op) finishes it.
        assert runner.rescues == 2
        assert runner.degraded_reason is not None
        assert "hung-worker rescue budget exhausted" in runner.degraded_reason
        assert {o.unit_id: o.status for o in result.completed} == {
            "stuck": "ok",
            "a": "ok",
        }


class TestSigtermMidSweep:
    """A real SIGTERM mid-sweep must drain (exit 75), then resume to a
    tree byte-identical with an undisturbed run."""

    SWEEP_ARGS = ["sweep", "--workload", "espresso", "--scale", "0.01"]

    @staticmethod
    def signal_unit():
        # A specific early-ish unit id: the fault must fire exactly once
        # in the whole process tree (sigterm=* would fire once per pool
        # worker, and the second signal escalates a drain to an abort).
        from repro.core.explorer import design_space

        configs = design_space()
        assert len(configs) > 12  # the drain must leave work behind
        return f"0006:{configs[6].label}"

    def run_cli(self, args, cwd, extra_env=None):
        env = os.environ.copy()
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop(faults.ENV_VAR, None)
        if extra_env:
            env.update(extra_env)
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            cwd=cwd,
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )

    @pytest.mark.parametrize("workers", [None, "4"])
    def test_drain_resume_byte_identical(self, tmp_path, workers):
        worker_args = ["--workers", workers] if workers else []
        clean = tmp_path / "clean"
        interrupted = tmp_path / "interrupted"

        reference = self.run_cli(
            self.SWEEP_ARGS + ["--out", str(clean)] + worker_args, tmp_path
        )
        assert reference.returncode == 0, reference.stderr
        total = len(
            (clean / "sweep.journal.jsonl").read_text().splitlines()
        ) - 1

        signalled = self.run_cli(
            self.SWEEP_ARGS + ["--out", str(interrupted)] + worker_args,
            tmp_path,
            extra_env={faults.ENV_VAR: f"sigterm={self.signal_unit()}"},
        )
        assert signalled.returncode == EXIT_DRAINED, signalled.stderr
        assert "drained" in signalled.stderr
        assert "--resume" in signalled.stderr
        journal = interrupted / "sweep.journal.jsonl"
        assert journal.exists()  # the drain flushed, not vanished
        completed = [
            entry["unit"]
            for entry in map(json.loads, journal.read_text().splitlines()[1:])
        ]
        assert 0 < len(completed) < total  # stopped mid-flight

        resumed = self.run_cli(
            self.SWEEP_ARGS
            + ["--out", str(interrupted), "--resume"]
            + worker_args,
            tmp_path,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert tree_fingerprint(interrupted) == tree_fingerprint(clean)
