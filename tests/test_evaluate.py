"""End-to-end evaluation: config + workload -> TPI and area."""

import pytest

from conftest import TINY
from repro.cache.hierarchy import Policy
from repro.core.config import SystemConfig
from repro.core.evaluate import evaluate, system_area_rbe
from repro.area.model import optimal_cache_area
from repro.units import kb


class TestSystemArea:
    def test_single_level_is_two_l1_arrays(self):
        config = SystemConfig(l1_bytes=kb(8))
        expected = 2 * optimal_cache_area(kb(8)).total
        assert system_area_rbe(config) == pytest.approx(expected)

    def test_two_level_adds_l2(self):
        config = SystemConfig(l1_bytes=kb(8), l2_bytes=kb(64), l2_associativity=4)
        expected = (
            2 * optimal_cache_area(kb(8)).total
            + optimal_cache_area(kb(64), associativity=4).total
        )
        assert system_area_rbe(config) == pytest.approx(expected)

    def test_dual_ported_l1_grows_area_but_not_l2(self):
        base = SystemConfig(l1_bytes=kb(8), l2_bytes=kb(64))
        dual = base.dual_ported()
        l2_area = optimal_cache_area(kb(64), associativity=4).total
        delta = system_area_rbe(dual) - system_area_rbe(base)
        l1_single = 2 * optimal_cache_area(kb(8)).total
        l1_double = 2 * optimal_cache_area(kb(8), ports=2).total
        assert delta == pytest.approx(l1_double - l1_single)
        assert delta < l2_area * 2  # sanity: L2 unchanged


class TestEvaluate:
    def test_by_name_and_by_trace_agree(self, gcc1_tiny):
        config = SystemConfig(l1_bytes=kb(2), l2_bytes=kb(16))
        by_name = evaluate(config, "gcc1", scale=TINY)
        by_trace = evaluate(config, gcc1_tiny)
        assert by_name.tpi_ns == pytest.approx(by_trace.tpi_ns)
        assert by_name.workload == by_trace.workload == "gcc1"

    def test_policy_changes_results(self, gcc1_tiny):
        conv = evaluate(
            SystemConfig(l1_bytes=kb(2), l2_bytes=kb(8)), gcc1_tiny
        )
        excl = evaluate(
            SystemConfig(l1_bytes=kb(2), l2_bytes=kb(8), policy=Policy.EXCLUSIVE),
            gcc1_tiny,
        )
        assert excl.tpi_ns < conv.tpi_ns

    def test_off_chip_time_changes_tpi_not_stats(self, gcc1_tiny):
        near = evaluate(SystemConfig(l1_bytes=kb(2)), gcc1_tiny)
        far = evaluate(
            SystemConfig(l1_bytes=kb(2), off_chip_ns=200.0), gcc1_tiny
        )
        assert far.tpi_ns > near.tpi_ns
        assert far.stats == near.stats  # simulation shared via memoisation

    def test_tpi_positive_and_at_least_cycle_time(self, gcc1_tiny):
        perf = evaluate(SystemConfig(l1_bytes=kb(4)), gcc1_tiny)
        assert perf.tpi_ns >= perf.tpi.timings.l1_cycle_ns

    def test_label_and_repr(self, gcc1_tiny):
        perf = evaluate(SystemConfig(l1_bytes=kb(2), l2_bytes=kb(16)), gcc1_tiny)
        assert perf.label == "2:16"
        assert "gcc1" in repr(perf)

    def test_policy_ignored_without_l2(self, gcc1_tiny):
        conv = evaluate(SystemConfig(l1_bytes=kb(2)), gcc1_tiny)
        excl = evaluate(
            SystemConfig(l1_bytes=kb(2), policy=Policy.EXCLUSIVE), gcc1_tiny
        )
        assert conv.stats == excl.stats
        assert conv.tpi_ns == pytest.approx(excl.tpi_ns)
