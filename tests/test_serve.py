"""The sweep service: normalization, memo integrity, fault walls."""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.config import SystemConfig
from repro.core.evaluate import evaluate
from repro.errors import ServeError
from repro.runner import ResourceWatchdog, WatchdogPolicy, faults, write_text_atomic
from repro.runner.integrity import write_sidecar
from repro.serve import (
    AdmissionController,
    BackgroundServer,
    BadRequestError,
    BreakerOpenError,
    CircuitBreaker,
    MemoStore,
    ServePolicy,
    ShedError,
    SingleFlight,
    canonical_json,
    normalize_point,
    normalize_sweep,
    point_key,
    point_record,
)

CONFIG = SystemConfig(l1_bytes=2048, l2_bytes=16384)
PAYLOAD = {"l1_kb": 2, "l2_kb": 16, "workload": "gcc1", "scale": 0.02}


@pytest.fixture(autouse=True)
def _no_leaked_faults(monkeypatch):
    """Serve tests drive REPRO_FAULTS; never leak a plan across tests."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.clear()
    yield
    faults.clear()


def reference_bytes(payload=PAYLOAD):
    config = SystemConfig(
        l1_bytes=payload["l1_kb"] * 1024, l2_bytes=payload["l2_kb"] * 1024
    )
    perf = evaluate(config, payload["workload"], scale=payload["scale"])
    return canonical_json(point_record(perf)).encode("utf-8")


class TestNormalization:
    def test_flag_and_config_spellings_share_a_key(self):
        from_flags = normalize_point(PAYLOAD)
        from_config = normalize_point(
            {
                "config": CONFIG.to_dict(),
                "workload": "gcc1",
                "scale": 0.02,
            }
        )
        assert point_key(*from_flags) == point_key(*from_config)

    def test_key_ignores_field_order_and_numeric_spelling(self):
        a = normalize_point({"l1_kb": 2, "l2_kb": 16, "scale": 0.02})
        b = normalize_point({"scale": "0.02", "l2_kb": 16.0, "l1_kb": 2.0})
        assert point_key(*a) == point_key(*b)

    def test_different_configs_get_different_keys(self):
        a = normalize_point({"l1_kb": 2, "l2_kb": 16})
        b = normalize_point({"l1_kb": 2, "l2_kb": 32})
        assert point_key(*a) != point_key(*b)

    def test_unknown_workload_is_a_400(self):
        with pytest.raises(BadRequestError, match="unknown workload"):
            normalize_point({"l1_kb": 2, "workload": "doom"})

    def test_invalid_geometry_is_a_400(self):
        with pytest.raises(BadRequestError):
            normalize_point({"l1_kb": 3})

    def test_non_object_body_is_a_400(self):
        with pytest.raises(BadRequestError, match="JSON object"):
            normalize_point([1, 2, 3])

    def test_bad_scale_is_a_400(self):
        with pytest.raises(BadRequestError, match="scale"):
            normalize_point({"l1_kb": 2, "scale": -1})

    def test_sweep_follows_design_space_order(self):
        configs, workload, scale = normalize_sweep(
            {"workload": "gcc1", "l1_sizes_kb": [1, 2], "l2_sizes_kb": [0, 8]}
        )
        assert workload == "gcc1" and scale is None
        labels = [c.label for c in configs]
        assert labels == ["1:0", "1:8", "2:0", "2:8"]

    def test_empty_sweep_is_a_400(self):
        with pytest.raises(BadRequestError, match="zero design points"):
            normalize_sweep({"l1_sizes_kb": [1], "l2_sizes_kb": [0],
                             "include_single_level": False})


class TestMemoStore:
    RECORD = {"schema": 1, "kind": "evaluate", "label": "2:16", "tpi_ns": 4.2}

    def test_roundtrip_and_counters(self, tmp_path):
        store = MemoStore(tmp_path / "memo")
        assert store.load("k1") is None
        store.store("k1", self.RECORD)
        assert store.load("k1") == self.RECORD
        assert store.hits == 1 and store.misses == 1
        assert len(store) == 1

    def test_store_is_integrity_tracked(self, tmp_path):
        store = MemoStore(tmp_path / "memo")
        store.store("k1", self.RECORD)
        assert (tmp_path / "memo" / "k1.json.sha256").exists()
        assert (tmp_path / "memo" / "MANIFEST.json").exists()

    def test_poisoned_entry_is_quarantined_never_served(self, tmp_path):
        store = MemoStore(tmp_path / "memo")
        store.store("k1", self.RECORD)
        path = store.path("k1")
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x01
        path.write_bytes(bytes(data))
        assert store.load("k1") is None
        assert store.quarantined == 1
        quarantine = tmp_path / "memo" / "quarantine"
        assert quarantine.is_dir() and list(quarantine.glob("k1.json*"))

    def test_unvouched_entry_is_not_served(self, tmp_path):
        store = MemoStore(tmp_path / "memo")
        store.path("k1").write_text(json.dumps(self.RECORD))
        assert store.load("k1") is None  # no sidecar: nobody vouches
        assert store.quarantined == 0  # not corruption, just untracked

    def test_rotten_sidecar_is_not_trusted(self, tmp_path):
        store = MemoStore(tmp_path / "memo")
        store.store("k1", self.RECORD)
        sidecar = tmp_path / "memo" / "k1.json.sha256"
        sidecar.write_text("not a digest line")
        assert store.load("k1") is None

    def test_hash_valid_garbage_is_dropped(self, tmp_path):
        store = MemoStore(tmp_path / "memo")
        path = store.path("k1")
        write_text_atomic(path, "[1, 2, 3]\n", track=False)
        write_sidecar(path)
        assert store.load("k1") is None
        assert not path.exists()

    def test_poisonmemo_fault_fires_after_sidecar(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "poisonmemo=k1:1")
        store = MemoStore(tmp_path / "memo")
        store.store("k1", self.RECORD)
        assert store.load("k1") is None  # detected, not served
        assert store.quarantined == 1


class TestSingleFlight:
    def test_waiters_coalesce_onto_one_computation(self):
        async def scenario():
            flight = SingleFlight()
            calls = []

            async def compute():
                calls.append(1)
                await asyncio.sleep(0.05)
                return "value"

            results = await asyncio.gather(
                *(flight.run("k", compute) for _ in range(5))
            )
            return calls, results

        calls, results = asyncio.run(scenario())
        assert len(calls) == 1
        assert [value for value, _ in results] == ["value"] * 5
        assert sum(1 for _, leader in results if leader) == 1

    def test_failure_propagates_and_key_is_released(self):
        async def scenario():
            flight = SingleFlight()

            async def boom():
                raise ServeError("injected")

            with pytest.raises(ServeError):
                await flight.run("k", boom)

            async def fine():
                return 42

            value, leader = await flight.run("k", fine)
            return value, leader, len(flight)

        value, leader, inflight = asyncio.run(scenario())
        assert (value, leader, inflight) == (42, True, 0)

    def test_cancelled_waiter_does_not_kill_the_leader(self):
        async def scenario():
            flight = SingleFlight()
            finished = asyncio.Event()

            async def compute():
                await asyncio.sleep(0.1)
                finished.set()
                return "late"

            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(flight.run("k", compute), timeout=0.01)
            await asyncio.wait_for(finished.wait(), timeout=2.0)
            return finished.is_set()

        assert asyncio.run(scenario())


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=3, cooldown_s=5.0, clock=lambda: clock[0])
        for _ in range(2):
            breaker.record_failure()
        breaker.check()  # still closed
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(BreakerOpenError) as excinfo:
            breaker.check()
        assert excinfo.value.retry_after_s == pytest.approx(5.0)

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_success_closes(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0, clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 6.0
        assert breaker.state == "half-open"
        breaker.check()  # the probe is admitted
        with pytest.raises(BreakerOpenError):
            breaker.check()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.check()

    def test_half_open_probe_failure_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0, clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 6.0
        breaker.check()
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(BreakerOpenError):
            breaker.check()


class TestAdmission:
    def test_sheds_past_the_waiting_cap(self):
        async def scenario():
            admission = AdmissionController(max_active=1, max_waiting=1)
            release = asyncio.Event()

            async def hold():
                async with admission.slot():
                    await release.wait()

            async def wait_slot():
                async with admission.slot():
                    pass

            holder = asyncio.create_task(hold())
            await asyncio.sleep(0.01)
            waiter = asyncio.create_task(wait_slot())
            await asyncio.sleep(0.01)
            with pytest.raises(ShedError) as excinfo:
                async with admission.slot():
                    pass
            assert excinfo.value.retry_after_s is not None
            release.set()
            await asyncio.gather(holder, waiter)
            return admission.shed, admission.active, admission.waiting

        shed, active, waiting = asyncio.run(scenario())
        assert (shed, active, waiting) == (1, 0, 0)


class TestServeHTTP:
    def test_three_tier_resolution_is_byte_identical(self, tmp_path):
        with BackgroundServer(tmp_path / "store") as server:
            s1, h1, b1 = server.request("POST", "/v1/evaluate", PAYLOAD)
            s2, h2, b2 = server.request("POST", "/v1/evaluate", PAYLOAD)
        assert (s1, s2) == (200, 200)
        assert h1["x-repro-source"] == "cold"
        assert h2["x-repro-source"] == "memo"
        assert b1 == b2 == reference_bytes()

    def test_memo_persists_across_restarts(self, tmp_path):
        with BackgroundServer(tmp_path / "store") as server:
            server.request("POST", "/v1/evaluate", PAYLOAD)
        with BackgroundServer(tmp_path / "store") as server:
            status, headers, body = server.request("POST", "/v1/evaluate", PAYLOAD)
        assert status == 200
        assert headers["x-repro-source"] == "memo"
        assert body == reference_bytes()

    def test_concurrent_identical_requests_coalesce(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "slowworker=*:0.4")
        with BackgroundServer(tmp_path / "store") as server:
            results = []

            def fire():
                results.append(server.request("POST", "/v1/evaluate", PAYLOAD))

            threads = [threading.Thread(target=fire) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        sources = sorted(headers["x-repro-source"] for _, headers, _ in results)
        assert sources == ["coalesced", "cold"]
        bodies = {body for _, _, body in results}
        assert bodies == {reference_bytes()}

    def test_tpi_is_a_projection_of_the_same_memo_entry(self, tmp_path):
        with BackgroundServer(tmp_path / "store") as server:
            server.request("POST", "/v1/evaluate", PAYLOAD)
            status, headers, body = server.request("POST", "/v1/tpi", PAYLOAD)
        assert status == 200
        assert headers["x-repro-source"] == "memo"
        record = json.loads(body)
        full = json.loads(reference_bytes())
        assert record["kind"] == "tpi"
        assert record["tpi_ns"] == full["tpi_ns"]
        assert record["area_rbe"] == full["area_rbe"]

    def test_sweep_and_envelope(self, tmp_path):
        request = {
            "workload": "gcc1",
            "scale": 0.02,
            "l1_sizes_kb": [1, 2],
            "l2_sizes_kb": [0, 8],
        }
        with BackgroundServer(tmp_path / "store") as server:
            s1, h1, b1 = server.request("POST", "/v1/sweep", request)
            s2, _, b2 = server.request("POST", "/v1/envelope", request)
        assert (s1, s2) == (200, 200)
        swept = json.loads(b1)
        assert [p["label"] for p in swept["points"]] == ["1:0", "1:8", "2:0", "2:8"]
        envelope = json.loads(b2)
        areas = [p["area_rbe"] for p in envelope["points"]]
        tpis = [p["tpi_ns"] for p in envelope["points"]]
        assert areas == sorted(areas)
        assert tpis == sorted(tpis, reverse=True)
        assert json.loads(h1["x-repro-sources"]) == {"cold": 4}

    def test_error_model(self, tmp_path):
        with BackgroundServer(tmp_path / "store") as server:
            bad_json = server.request("POST", "/v1/evaluate", None)
            bad_config = server.request("POST", "/v1/evaluate", {"l1_kb": 3})
            missing = server.request("GET", "/nope")
        assert bad_json[0] == 200 or bad_json[0] == 400  # empty body = defaults
        assert bad_config[0] == 400
        error = json.loads(bad_config[2])["error"]
        assert error["type"] == "BadRequestError"
        assert "traceback" not in bad_config[2].decode().lower()
        assert missing[0] == 404

    def test_deadline_is_a_504_with_retry_after(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "slowworker=*:1.0")
        policy = ServePolicy(deadline_s=0.2, retries=0)
        with BackgroundServer(tmp_path / "store", policy=policy) as server:
            status, headers, body = server.request("POST", "/v1/evaluate", PAYLOAD)
        assert status == 504
        assert "retry-after" in headers
        assert json.loads(body)["error"]["type"] == "DeadlineError"

    def test_pool_death_degrades_but_still_answers(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "pooldeath=*:1")
        with BackgroundServer(tmp_path / "store", workers=2) as server:
            status, headers, body = server.request("POST", "/v1/evaluate", PAYLOAD)
            health = json.loads(server.request("GET", "/healthz")[2])
        assert status == 200
        assert body == reference_bytes()
        assert health["status"] == "degraded"
        assert "pool died" in health["degraded_reason"]
        assert health["pool_deaths"] >= 1

    def test_poisoned_entry_recomputed_not_served(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "poisonmemo=*:1")
        with BackgroundServer(tmp_path / "store") as server:
            s1, h1, b1 = server.request("POST", "/v1/evaluate", PAYLOAD)
            s2, h2, b2 = server.request("POST", "/v1/evaluate", PAYLOAD)
            health = json.loads(server.request("GET", "/healthz")[2])
        assert (s1, s2) == (200, 200)
        assert b1 == b2 == reference_bytes()
        assert h2["x-repro-source"] == "cold"  # the poisoned entry was not trusted
        assert health["memo"]["quarantined"] == 1


class TestWatchdogDegradation:
    """Driving the pool past the RSS ceiling must degrade, not die."""

    def test_rss_breach_propagates_to_health_and_journal(self, tmp_path):
        watchdog = ResourceWatchdog(WatchdogPolicy(max_worker_rss_bytes=1))
        with BackgroundServer(
            tmp_path / "store", workers=2, watchdog=watchdog
        ) as server:
            status, _, body = server.request("POST", "/v1/evaluate", PAYLOAD)
            health = json.loads(server.request("GET", "/healthz")[2])
            # A later request is served serially, still byte-identical.
            other = dict(PAYLOAD, l2_kb=32)
            s2, _, b2 = server.request("POST", "/v1/evaluate", other)
        assert status == 200 and body == reference_bytes()
        assert s2 == 200 and b2 == reference_bytes(other)
        assert health["status"] == "degraded"
        assert "RSS" in health["degraded_reason"]
        journal = (tmp_path / "store" / "serve.journal.jsonl").read_text()
        entries = [json.loads(line) for line in journal.splitlines()[1:]]
        degraded = [
            e for e in entries if e.get("result", {}).get("degraded_reason")
        ]
        assert degraded, "journal must carry the degradation reason"
        assert "RSS" in degraded[-1]["result"]["degraded_reason"]


class TestServeLintClean:
    """Satellite: the serve/runner backoff paths must be REP002-clean."""

    def test_runner_and_serve_pass_determinism_lint(self):
        from repro.analysis import lint_paths

        report = lint_paths(["src/repro/runner", "src/repro/serve"], select=["REP002"])
        assert report.clean, [str(f) for f in report.findings]

    def test_global_rng_in_serve_code_is_flagged(self, tmp_path):
        from repro.analysis import lint_paths

        bad = tmp_path / "src" / "repro" / "serve" / "jitterbug.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import random\n\n\ndef backoff():\n    return random.random()\n"
        )
        report = lint_paths([str(bad)], select=["REP002"])
        assert not report.clean
        finding = report.findings[0]
        assert finding.rule == "REP002"
        assert "jitter_unit" in finding.message

    def test_clocks_are_allowed_in_exec_code_banned_in_models(self, tmp_path):
        from repro.analysis import lint_paths

        exec_mod = tmp_path / "src" / "repro" / "serve" / "deadline.py"
        exec_mod.parent.mkdir(parents=True)
        exec_mod.write_text(
            "import time\n\n\ndef now():\n    return time.monotonic()\n"
        )
        model_mod = tmp_path / "src" / "repro" / "cache" / "clocky.py"
        model_mod.parent.mkdir(parents=True)
        model_mod.write_text(
            "import time\n\n\ndef now():\n    return time.monotonic()\n"
        )
        assert lint_paths([str(exec_mod)], select=["REP002"]).clean
        assert not lint_paths([str(model_mod)], select=["REP002"]).clean


class TestServeChaosSoak:
    """The seeded serve soak holds its contract and reproduces."""

    def test_soak_passes_and_serves_zero_wrong_answers(self, tmp_path):
        from repro.study.serve_chaos import run_serve_chaos

        result = run_serve_chaos(
            tmp_path, seed=3, rounds=3, requests_per_round=4,
            workers=2, scale=0.02,
        )
        assert result.passed, result.render()
        assert result.availability_ok
        assert result.requests > 0 and result.ok > 0
        assert not result.wrong_answers
        assert not result.missing_retry_after
        assert not result.unexpected
        record = result.to_record()
        assert record["kind"] == "serve-chaos"
        assert record["passed"] is True

    def test_same_seed_draws_the_same_schedules(self, tmp_path):
        from repro.study.serve_chaos import run_serve_chaos

        a = run_serve_chaos(
            tmp_path / "a", seed=7, rounds=2, requests_per_round=2,
            workers=None, scale=0.02,
        )
        b = run_serve_chaos(
            tmp_path / "b", seed=7, rounds=2, requests_per_round=2,
            workers=None, scale=0.02,
        )
        assert a.schedules == b.schedules


class TestObservabilityEndpoints:
    """Tentpole: /metrics and /v1/stats counters provably move under load."""

    def test_memo_hit_and_miss_counters_move_over_http(self, tmp_path):
        with BackgroundServer(tmp_path / "store") as server:
            s0, h0, b0 = server.request("GET", "/metrics")
            s1, h1, _ = server.request("POST", "/v1/evaluate", PAYLOAD)
            s2, h2, _ = server.request("POST", "/v1/evaluate", PAYLOAD)
            text = server.request("GET", "/metrics")[2].decode()
            stats = json.loads(server.request("GET", "/v1/stats")[2])
            health = json.loads(server.request("GET", "/healthz")[2])
        assert (s0, s1, s2) == (200, 200, 200)
        assert h0["content-type"].startswith("text/plain")
        assert "repro_serve_memo_hits_total 0" in b0.decode()
        # One cold compute, one memo hit — and the scrape says so.
        assert "repro_serve_memo_hits_total 1" in text
        assert "repro_serve_cold_total 1" in text
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_request_seconds_count" in text
        assert stats["requests"]["cold"] == 1 and stats["requests"]["memo"] == 1
        # A cold request probes the memo twice (pre-admission and in
        # the resolution path), so one hit in three lookups.
        assert stats["memo"]["hit_rate"] == 0.3333
        assert stats["uptime_s"] > 0
        assert stats["breaker"] == "closed"
        assert stats["spans_recorded"] >= 3  # one span per request so far
        # Satellite: /healthz grew the same live signals.
        assert health["uptime_s"] > 0
        assert health["in_flight"] >= 1  # the health request itself
        assert health["memo"]["hit_rate"] == 0.3333

    def test_every_request_is_tagged_with_a_fresh_id(self, tmp_path):
        with BackgroundServer(tmp_path / "store") as server:
            _, h1, _ = server.request("GET", "/healthz")
            _, h2, _ = server.request("GET", "/healthz")
        assert h1["x-repro-request"].startswith("req-")
        assert h1["x-repro-request"] != h2["x-repro-request"]

    def test_shed_counter_moves_under_overload(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "slowworker=*:0.5")
        policy = ServePolicy(max_active=1, max_waiting=0, retries=0)
        with BackgroundServer(tmp_path / "store", policy=policy) as server:
            results = []

            def fire(l2_kb):
                results.append(
                    server.request(
                        "POST", "/v1/evaluate", dict(PAYLOAD, l2_kb=l2_kb)
                    )
                )

            threads = [
                threading.Thread(target=fire, args=(l2,)) for l2 in (16, 32, 64)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            text = server.request("GET", "/metrics")[2].decode()
            stats = json.loads(server.request("GET", "/v1/stats")[2])
        statuses = sorted(status for status, _, _ in results)
        assert statuses[0] == 200 and statuses[-1] == 503
        shed = [
            line
            for line in text.splitlines()
            if line.startswith("repro_serve_shed_total")
        ]
        assert shed and float(shed[0].split()[-1]) >= 1
        assert stats["admission"]["shed"] >= 1

    def test_breaker_transitions_are_counted(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "pooldeath=*:1")
        policy = ServePolicy(
            retries=0, breaker_threshold=1, breaker_cooldown_s=60.0
        )
        with BackgroundServer(
            tmp_path / "store", workers=2, policy=policy
        ) as server:
            s1, _, b1 = server.request("POST", "/v1/evaluate", PAYLOAD)
            s2, _, b2 = server.request(
                "POST", "/v1/evaluate", dict(PAYLOAD, l2_kb=32)
            )
            text = server.request("GET", "/metrics")[2].decode()
            stats = json.loads(server.request("GET", "/v1/stats")[2])
        assert s1 == 503
        assert json.loads(b1)["error"]["type"] == "UpstreamError"
        assert s2 == 503  # breaker open: fail fast, no compute attempted
        assert json.loads(b2)["error"]["type"] == "BreakerOpenError"
        assert stats["breaker"] == "open"
        assert (
            'repro_serve_breaker_transitions_total{from="closed",to="open"} 1'
            in text
        )
        assert "repro_serve_breaker_state 2" in text


class TestLifecycleDrain:
    """Graceful shutdown: 503 during drain, freed slots, honest counters."""

    def test_draining_refuses_compute_but_keeps_reads(self, tmp_path):
        with BackgroundServer(tmp_path / "store") as server:
            warm = server.request("POST", "/v1/evaluate", PAYLOAD)
            server.call(server.app.begin_drain, "received SIGTERM")
            health = json.loads(server.request("GET", "/healthz")[2])
            status, headers, body = server.request(
                "POST", "/v1/evaluate", dict(PAYLOAD, l2_kb=32)
            )
            metrics = server.request("GET", "/metrics")
        assert warm[0] == 200
        assert health["status"] == "draining"
        assert health["draining"] is True
        assert status == 503
        assert "retry-after" in headers
        error = json.loads(body)["error"]
        assert error["type"] == "DrainingError"
        assert "received SIGTERM" in error["message"]
        assert metrics[0] == 200  # read-only endpoints outlive the drain

    def test_deadline_frees_the_pool_slot(self, tmp_path, monkeypatch):
        # Wedge only the first request's compute (2.0s against a 0.4s
        # budget); the budget travels into the worker as budget_s, so
        # the 504 frees the single slot for the second request.
        key = point_key(*normalize_point(PAYLOAD))
        monkeypatch.setenv(faults.ENV_VAR, f"slowworker={key}:2.0")
        policy = ServePolicy(deadline_s=0.4, retries=0)
        with BackgroundServer(
            tmp_path / "store", workers=1, policy=policy
        ) as server:
            s1, h1, _ = server.request("POST", "/v1/evaluate", PAYLOAD)
            other = dict(PAYLOAD, l2_kb=32)
            started = time.monotonic()
            s2, _, b2 = server.request("POST", "/v1/evaluate", other)
            elapsed = time.monotonic() - started
            stats = json.loads(server.request("GET", "/v1/stats")[2])
        assert s1 == 504 and "retry-after" in h1
        assert s2 == 200 and b2 == reference_bytes(other)
        # Well under the 2.0s wedge: the slot was freed at the deadline,
        # the second compute never queued behind the abandoned one.
        assert elapsed < 1.5
        assert stats["requests"]["timeouts"] >= 1

    def test_abandoned_pool_futures_are_counted(self, tmp_path):
        with BackgroundServer(tmp_path / "store", workers=2) as server:
            warm = server.request("POST", "/v1/evaluate", PAYLOAD)

            def abandon():
                app = server.app
                future = asyncio.get_running_loop().create_future()
                app._pool_futures.add(future)
                app._degrade("pool thrown away mid-compute (test)")
                future.cancel()
                app._pool_futures.discard(future)
                return app.stats["abandoned"]

            abandoned = server.call(abandon)
            stats = json.loads(server.request("GET", "/v1/stats")[2])
            text = server.request("GET", "/metrics")[2].decode()
        assert warm[0] == 200
        assert abandoned == 1
        assert stats["requests"]["abandoned"] == 1
        assert "repro_serve_abandoned_total 1" in text


class TestServeSignalShutdown:
    """`repro serve` drains on SIGTERM and exits 0 (satellite)."""

    def test_sigterm_drains_and_exits_cleanly(self, tmp_path):
        repo_root = Path(__file__).resolve().parents[1]
        env = os.environ.copy()
        env["PYTHONPATH"] = str(repo_root / "src")
        env.pop(faults.ENV_VAR, None)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--store", str(tmp_path / "store"),
                "--port", "0", "--workers", "serial",
            ],
            cwd=tmp_path,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            assert "listening" in line, line
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "draining" in out
