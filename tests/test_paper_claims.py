"""Integration tests for the paper's qualitative claims (full scale).

Each test corresponds to a sentence in the paper's evaluation or
conclusions; EXPERIMENTS.md cross-references them.  Full-scale sweeps
are expensive, so they are computed once per module via fixtures and
shared (the library memoises simulations by cache shape, so the 50 ns /
200 ns spaces share all their simulation work).
"""

import math
from dataclasses import replace

import pytest

from conftest import FULL
from repro.cache.hierarchy import Policy
from repro.core.config import SystemConfig
from repro.core.envelope import best_envelope, envelope_tpi_at
from repro.core.explorer import design_space, standard_l1_sizes, sweep
from repro.units import kb

BASE = SystemConfig(l1_bytes=kb(1))


def _sweep(workload, **overrides):
    template = replace(BASE, **overrides) if overrides else BASE
    return sweep(workload, design_space(template), scale=FULL)


@pytest.fixture(scope="module")
def gcc1_50():
    return _sweep("gcc1")


@pytest.fixture(scope="module")
def gcc1_200():
    return _sweep("gcc1", off_chip_ns=200.0)


@pytest.fixture(scope="module")
def gcc1_50_exclusive():
    return _sweep("gcc1", policy=Policy.EXCLUSIVE)


@pytest.fixture(scope="module")
def gcc1_50_dm_l2():
    return _sweep("gcc1", l2_associativity=1)


def singles(perfs):
    return [p for p in perfs if not p.config.has_l2]


class TestSection3SingleLevel:
    """'All seven workloads exhibit a minimum TPI between 8KB and 128KB.'"""

    @pytest.mark.parametrize(
        "workload", ["gcc1", "espresso", "li", "eqntott", "tomcatv"]
    )
    def test_interior_tpi_minimum(self, workload):
        perfs = sweep(
            workload,
            design_space(BASE, l2_sizes=[0]),
            scale=FULL,
        )
        tpis = {p.config.l1_bytes: p.tpi_ns for p in perfs}
        best_size = min(tpis, key=tpis.get)
        assert kb(8) <= best_size <= kb(128), workload
        # and the largest cache is strictly worse than the best
        assert tpis[kb(256)] > tpis[best_size]


class TestSection4Baseline:
    def test_tiny_l2_is_dominated(self, gcc1_50):
        """'1KB first-level caches with a 2KB second-level cache would
        be a bad choice ... the "2:0" configuration occupies
        approximately the same area, and has a lower TPI.'"""
        by_label = {p.label: p for p in gcc1_50}
        assert by_label["2:0"].tpi_ns < by_label["1:2"].tpi_ns
        assert by_label["2:0"].area_rbe < 1.5 * by_label["1:2"].area_rbe

    def test_two_level_wins_only_at_large_areas(self, gcc1_50):
        """'single-level configurations tend to dominate ... below about
        300,000 rbe's, while for larger available areas, two-level
        configurations become marginally preferable.'"""
        env = best_envelope(gcc1_50)
        two_level_corners = [p for p in env if p.performance.config.has_l2]
        assert two_level_corners, "two-level configs must appear on the envelope"
        assert min(p.area_rbe for p in two_level_corners) > 250_000

    def test_envelope_reaches_lower_tpi_than_singles(self, gcc1_50):
        env_all = best_envelope(gcc1_50)
        env_single = best_envelope(singles(gcc1_50))
        assert env_all[-1].tpi_ns < env_single[-1].tpi_ns


class TestSection5DirectMappedL2:
    def test_4way_l2_slightly_better_at_area(self, gcc1_50, gcc1_50_dm_l2):
        """'For most benchmarks, 4-way set-associative caches perform
        slightly better than direct-mapped caches' (at equal area)."""
        env4 = best_envelope(gcc1_50)
        env1 = best_envelope(gcc1_50_dm_l2)
        budget = 2_000_000.0
        assert envelope_tpi_at(env4, budget) <= envelope_tpi_at(env1, budget) * 1.02

    def test_dm_l2_still_beats_single_level(self, gcc1_50_dm_l2):
        env = best_envelope(gcc1_50_dm_l2)
        env_single = best_envelope(singles(gcc1_50_dm_l2))
        assert env[-1].tpi_ns < env_single[-1].tpi_ns


class TestSection7LongOffChip:
    def test_small_cache_penalty_about_3x(self, gcc1_50, gcc1_200):
        """'A system with 1KB on-chip caches pays a penalty of about 3X
        in run time' at 200 ns."""
        tpi50 = next(p.tpi_ns for p in gcc1_50 if p.label == "1:0")
        tpi200 = next(p.tpi_ns for p in gcc1_200 if p.label == "1:0")
        assert 2.3 <= tpi200 / tpi50 <= 4.2

    def test_big_hierarchy_less_sensitive(self, gcc1_50, gcc1_200):
        """'For a system with 32KB L1 ... 256KB L2 ... much less
        difference between 50ns and 200ns.'"""
        small_ratio = next(
            p.tpi_ns for p in gcc1_200 if p.label == "1:0"
        ) / next(p.tpi_ns for p in gcc1_50 if p.label == "1:0")
        big_ratio = next(
            p.tpi_ns for p in gcc1_200 if p.label == "32:256"
        ) / next(p.tpi_ns for p in gcc1_50 if p.label == "32:256")
        assert big_ratio < 0.6 * small_ratio

    def test_two_level_gap_larger_at_200ns(self, gcc1_50, gcc1_200):
        """'the "distance" between the single-level and two-level
        best-performance envelopes is larger when the off-chip time is
        200ns.'"""

        def gap(perfs):
            env_all = best_envelope(perfs)
            env_single = best_envelope(singles(perfs))
            budgets = [5e5, 1e6, 2e6, 3e6]
            total = 0.0
            for budget in budgets:
                a = envelope_tpi_at(env_all, budget)
                s = envelope_tpi_at(env_single, budget)
                if math.isfinite(a) and math.isfinite(s):
                    total += (s - a) / s
            return total

        assert gap(gcc1_200) > gap(gcc1_50)


class TestSection8Exclusive:
    def test_exclusive_never_hurts_two_level_configs(
        self, gcc1_50, gcc1_50_exclusive
    ):
        for conv, excl in zip(gcc1_50, gcc1_50_exclusive):
            if conv.config.has_l2:
                assert excl.tpi_ns <= conv.tpi_ns + 1e-9, conv.label

    def test_exclusive_envelope_dominates_conventional(
        self, gcc1_50, gcc1_50_exclusive
    ):
        env_c = best_envelope(gcc1_50)
        env_e = best_envelope(gcc1_50_exclusive)
        for budget in (5e5, 1e6, 2e6, 3e6):
            assert envelope_tpi_at(env_e, budget) <= envelope_tpi_at(
                env_c, budget
            ) + 1e-9

    def test_exclusive_dm_about_as_good_as_conventional_4way(
        self, gcc1_50, gcc1_50_dm_l2
    ):
        """'the exclusive caching scheme with a direct-mapped second-
        level cache performs about as well as ... a 4-way set-
        associative second-level cache' (non-exclusive)."""
        excl_dm = sweep(
            "gcc1",
            design_space(
                replace(BASE, policy=Policy.EXCLUSIVE, l2_associativity=1)
            ),
            scale=FULL,
        )
        env_excl_dm = best_envelope(excl_dm)
        env_conv_4way = best_envelope(gcc1_50)
        for budget in (1e6, 2e6, 3e6):
            a = envelope_tpi_at(env_excl_dm, budget)
            b = envelope_tpi_at(env_conv_4way, budget)
            assert a == pytest.approx(b, rel=0.08)

    def test_exclusive_4way_best_of_all(self, gcc1_50, gcc1_50_exclusive):
        """'Combining set-associativity and exclusive caching can
        improve performance beyond what either technique alone
        accomplishes.'"""
        excl_dm = sweep(
            "gcc1",
            design_space(
                replace(BASE, policy=Policy.EXCLUSIVE, l2_associativity=1)
            ),
            scale=FULL,
        )
        budget = 2e6
        best_combined = envelope_tpi_at(best_envelope(gcc1_50_exclusive), budget)
        assert best_combined <= envelope_tpi_at(best_envelope(gcc1_50), budget) + 1e-9
        assert best_combined <= envelope_tpi_at(best_envelope(excl_dm), budget) + 1e-9


class TestSection6DualPorted:
    @pytest.fixture(scope="class")
    def espresso_spaces(self):
        base = sweep("espresso", design_space(BASE, l2_sizes=[0]), scale=FULL)
        dual = sweep(
            "espresso",
            design_space(BASE.dual_ported(), l2_sizes=[0]),
            scale=FULL,
        )
        return base, dual

    def test_dual_port_same_capacity_always_faster(self, espresso_spaces):
        """'Moving from a cache with single-ported cells to the same-
        capacity cache with dual-ported cells, however, always improves
        performance.'"""
        base, dual = espresso_spaces
        for b, d in zip(base, dual):
            assert d.tpi_ns < b.tpi_ns

    def test_crossover_with_area(self, espresso_spaces):
        """'the base cell is preferred for small caches, while for
        larger caches, the dual-ported cell gives a better performance
        for a fixed area' — crossover between 50k and 400k rbe for most
        workloads (espresso crosses early; gcc1 late)."""
        base, dual = espresso_spaces
        env_base = best_envelope(base)
        env_dual = best_envelope(dual)
        small, large = 3e4, 2e6
        # by the large budget the dual-ported envelope must win
        assert envelope_tpi_at(env_dual, large) < envelope_tpi_at(env_base, large)
        # and at a very small budget dual porting cannot be better by much
        a = envelope_tpi_at(env_dual, small)
        b = envelope_tpi_at(env_base, small)
        if math.isfinite(a) and math.isfinite(b):
            assert a > 0.8 * b
