"""The telemetry layer: metrics, spans, clocks, files, and neutrality."""

import json

import pytest

from repro.core.config import SystemConfig
from repro.core.explorer import run_sweep_dir
from repro.errors import ObsError
from repro.obs import (
    DISABLED,
    ManualClock,
    MetricsRegistry,
    Telemetry,
    Tracer,
    activate,
    canonical_spans,
    current,
    load_metrics_file,
    load_run_metrics,
    load_run_spans,
    load_spans_file,
    metrics_jsonl,
    render_metrics,
    render_spans,
    spans_jsonl,
)
from repro.runner import RunJournal

TEMPLATE = SystemConfig(l1_bytes=2048, l2_bytes=16384)

#: Journal/telemetry fields that legitimately differ between
#: byte-equivalent runs (wall-clock measurements).
VOLATILE_FIELDS = ("elapsed_s", "duration_s", "started_at", "ended_at")


def strip_timing(record):
    return {k: v for k, v in record.items() if k not in ("start", "duration_s")}


class TestManualClock:
    def test_advances_both_clocks(self):
        clock = ManualClock(start=10.0, wall_start=1000.0)
        clock.advance(2.5)
        assert clock.monotonic() == 12.5
        assert clock.wall() == 1002.5


class TestMetricsRegistry:
    def test_counter_increments_and_labels_split_series(self):
        registry = MetricsRegistry()
        registry.counter("units_total", {"status": "ok"}).inc()
        registry.counter("units_total", {"status": "ok"}).inc(2)
        registry.counter("units_total", {"status": "failed"}).inc()
        samples = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in registry.snapshot()
        }
        assert samples[(("status", "ok"),)] == 3
        assert samples[(("status", "failed"),)] == 1

    def test_counter_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ObsError, match="cannot decrease"):
            registry.counter("n").inc(-1)

    def test_gauge_set_and_high_water(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("rss_bytes")
        gauge.set(100.0)
        gauge.set_max(50.0)
        assert gauge.value == 100.0
        gauge.set_max(200.0)
        assert gauge.value == 200.0

    def test_histogram_buckets_are_cumulative_in_render(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("d", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.7, 5.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(6.25)
        text = registry.render_prometheus()
        assert 'd_bucket{le="0.1"} 1' in text
        assert 'd_bucket{le="1"} 3' in text
        assert 'd_bucket{le="+Inf"} 4' in text
        assert "d_count 4" in text

    def test_type_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObsError, match="already registered"):
            registry.gauge("x")

    def test_invalid_names_are_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObsError, match="invalid metric name"):
            registry.counter("9bad")
        with pytest.raises(ObsError, match="invalid metric label"):
            registry.counter("ok", {"bad-label": "x"})

    def test_merge_adds_counters_and_histograms_maxes_gauges(self):
        worker = MetricsRegistry()
        worker.counter("n").inc(3)
        worker.gauge("rss").set(100.0)
        worker.histogram("d", buckets=(1.0,)).observe(0.5)
        parent = MetricsRegistry()
        parent.counter("n").inc(1)
        parent.gauge("rss").set(250.0)
        parent.merge(worker.snapshot())
        parent.merge(worker.snapshot())
        assert parent.counter("n").value == 7
        assert parent.gauge("rss").value == 250.0
        assert parent.histogram("d", buckets=(1.0,)).count == 2

    def test_merge_rejects_malformed_and_incompatible(self):
        registry = MetricsRegistry()
        with pytest.raises(ObsError, match="malformed"):
            registry.merge([{"value": 1}])
        registry.histogram("d", buckets=(1.0,)).observe(0.5)
        bad = MetricsRegistry()
        bad.histogram("d", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ObsError, match="incompatible bucket layout"):
            registry.merge(bad.snapshot())

    def test_prometheus_labels_are_sorted_and_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", {"b": 'say "hi"', "a": "x"}).inc()
        text = registry.render_prometheus()
        assert 'c{a="x",b="say \\"hi\\""} 1' in text


class TestTracer:
    def test_nesting_parents_and_unit_inheritance(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("unit", unit="2:16"):
            clock.advance(1.0)
            with tracer.span("simulate"):
                clock.advance(0.25)
        inner, outer = tracer.records()
        assert outer["name"] == "unit" and outer["parent"] is None
        assert inner["parent"] == outer["id"]
        assert inner["unit"] == "2:16"  # inherited from the parent span
        assert inner["duration_s"] == 0.25
        assert outer["duration_s"] == 1.25

    def test_escaping_exception_marks_error_status(self):
        tracer = Tracer(clock=ManualClock())
        with pytest.raises(ValueError):
            with tracer.span("unit"):
                raise ValueError("boom")
        assert tracer.records()[0]["status"] == "error"

    def test_root_spans_skip_the_nesting_stack(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("request", root=True):
            with tracer.span("inner"):
                pass
        request = [r for r in tracer.records() if r["name"] == "request"][0]
        inner = [r for r in tracer.records() if r["name"] == "inner"][0]
        assert request["parent"] is None
        assert inner["parent"] is None  # a root span never adopts children

    def test_absorb_rebases_ids(self):
        parent = Tracer(clock=ManualClock())
        with parent.span("a"):
            pass
        worker = Tracer(clock=ManualClock())
        with worker.span("unit"):
            with worker.span("simulate"):
                pass
        parent.absorb(worker.records())
        ids = [r["id"] for r in parent.records()]
        assert len(set(ids)) == len(ids)
        absorbed = {r["name"]: r for r in parent.records()[1:]}
        assert absorbed["simulate"]["parent"] == absorbed["unit"]["id"]

    def test_absorb_rejects_malformed(self):
        tracer = Tracer(clock=ManualClock())
        with pytest.raises(ObsError, match="malformed span record"):
            tracer.absorb([{"id": 1}])

    def test_max_spans_bounds_memory_not_the_total(self):
        tracer = Tracer(clock=ManualClock(), max_spans=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.records()) == 2
        assert tracer.recorded == 5

    def test_canonical_spans_is_scheduling_independent(self):
        def trace(order):
            tracer = Tracer(clock=ManualClock())
            for unit in order:
                with tracer.span("unit", unit=unit):
                    with tracer.span("simulate"):
                        pass
            return tracer.records()

        unit_order = ["u1", "u2", "u3"]
        a = canonical_spans(trace(unit_order), unit_order)
        b = canonical_spans(trace(["u3", "u1", "u2"]), unit_order)
        assert a == b
        assert [r["unit"] for r in a] == ["u1", "u1", "u2", "u2", "u3", "u3"]


class TestTelemetryFiles:
    def test_metrics_roundtrip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("n", {"status": "ok"}).inc(2)
        path = tmp_path / "METRICS.jsonl"
        path.write_text(metrics_jsonl(registry.snapshot()))
        assert load_metrics_file(path) == registry.snapshot()

    def test_spans_roundtrip(self, tmp_path):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("unit", unit="u1"):
            pass
        path = tmp_path / "SPANS.jsonl"
        path.write_text(spans_jsonl(tracer.records()))
        assert load_spans_file(path) == tracer.records()

    @pytest.mark.parametrize(
        "body, message",
        [
            ("", "empty"),
            ("not json\n", "corrupt"),
            ('{"metrics": 99}\n', "unsupported"),
            ('{"metrics": 1}\nnot json\n', "corrupt"),
            ('{"metrics": 1}\n{"no_name": 1}\n', "malformed"),
        ],
    )
    def test_metrics_file_errors_are_typed(self, tmp_path, body, message):
        path = tmp_path / "METRICS.jsonl"
        path.write_text(body)
        with pytest.raises(ObsError, match=message):
            load_metrics_file(path)

    def test_missing_file_is_typed(self, tmp_path):
        with pytest.raises(ObsError, match="cannot read"):
            load_metrics_file(tmp_path / "nope.jsonl")
        with pytest.raises(ObsError, match="unsupported span log"):
            path = tmp_path / "SPANS.jsonl"
            path.write_text('{"spans": 99}\n')
            load_spans_file(path)


class TestTelemetryBundle:
    def test_disabled_bundle_is_inert(self, tmp_path):
        DISABLED.count("n")
        DISABLED.observe("d", 1.0)
        with DISABLED.span("unit") as span:
            span.set(anything="goes")
        DISABLED.bind(tmp_path)
        DISABLED.flush()
        assert not list(tmp_path.iterdir())
        assert DISABLED.registry.snapshot() == []
        DISABLED.out_dir = None

    def test_ambient_activation_nests(self):
        bundle = Telemetry(clock=ManualClock())
        assert current() is DISABLED
        with activate(bundle):
            assert current() is bundle
            with activate(None):
                assert current() is bundle
        assert current() is DISABLED

    def test_worker_snapshot_absorb(self):
        worker = Telemetry(clock=ManualClock())
        worker.count("repro_units_total", status="ok")
        with worker.span("unit", unit="u1"):
            pass
        parent = Telemetry(clock=ManualClock())
        parent.absorb(worker.snapshot())
        parent.absorb(None)  # a dead worker ships nothing
        assert parent.registry.counter("repro_units_total", {"status": "ok"}).value == 1
        assert len(parent.tracer.records()) == 1

    def test_flush_writes_tracked_atomic_files(self, tmp_path):
        bundle = Telemetry(clock=ManualClock()).bind(tmp_path)
        bundle.count("n")
        with bundle.span("unit", unit="u1"):
            pass
        bundle.flush(unit_order=["u1"])
        for name in ("METRICS.jsonl", "SPANS.jsonl"):
            assert (tmp_path / name).exists()
            assert (tmp_path / f"{name}.sha256").exists()
        assert load_run_spans(tmp_path)[0]["unit"] == "u1"


class TestJournalSchemaCompat:
    """Satellite: v1 journals (no duration_s) still resume and report."""

    V1_ENTRY = {
        "unit": "2:16",
        "key": "abc123",
        "status": "ok",
        "attempts": 1,
        "elapsed_s": 0.25,
    }

    def write_v1(self, path):
        lines = [json.dumps({"journal": 1}), json.dumps(self.V1_ENTRY)]
        path.write_text("\n".join(lines) + "\n")

    def test_v1_journal_resumes_and_upgrades_on_append(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self.write_v1(path)
        journal = RunJournal.open(path, resume=True)
        assert journal.completed("2:16", "abc123")
        journal.record(
            "4:32", "def456", "ok", duration_s=0.5, started_at=1.0, ended_at=1.5
        )
        lines = path.read_text().splitlines()
        assert json.loads(lines[0]) == {"journal": 2}
        assert json.loads(lines[2])["duration_s"] == 0.5

    def test_metrics_synthesis_falls_back_to_elapsed_s(self, tmp_path):
        self.write_v1(tmp_path / "journal.jsonl")
        samples, source = load_run_metrics(tmp_path)
        assert source == "journal"
        by_name = {s["name"]: s for s in samples if s["name"] != "repro_units_total"}
        histogram = by_name["repro_unit_duration_seconds"]
        assert histogram["count"] == 1
        assert histogram["sum"] == pytest.approx(0.25)

    def test_directory_without_any_journal_is_typed(self, tmp_path):
        with pytest.raises(ObsError, match="no METRICS.jsonl and no journal"):
            load_run_metrics(tmp_path)


class TestRendering:
    def test_render_metrics_table(self):
        registry = MetricsRegistry()
        registry.counter("repro_units_total", {"status": "ok"}).inc(45)
        registry.histogram("repro_unit_duration_seconds").observe(0.5)
        text = render_metrics(registry.snapshot(), source="metrics")
        assert "# 2 series (metrics)" in text
        assert "repro_units_total" in text and "{status=ok}" in text
        assert "count=1" in text

    def test_render_spans_tree_and_limit(self):
        tracer = Tracer(clock=ManualClock())
        for unit in ("u1", "u2"):
            with tracer.span("unit", unit=unit):
                with tracer.span("simulate"):
                    pass
        text = render_spans(tracer.records())
        lines = text.splitlines()
        assert lines[0] == "# 4 spans"
        assert lines[1].startswith("unit ") and lines[2].startswith("  simulate ")
        limited = render_spans(tracer.records(), limit=2)
        assert "more spans" in limited


class TestSweepTelemetry:
    """Integration: telemetry across a real (tiny) sweep directory."""

    SCALE = 0.01

    def run(self, out, **kwargs):
        return run_sweep_dir(out, "gcc1", TEMPLATE, scale=self.SCALE, **kwargs)

    def test_telemetry_is_byte_neutral(self, tmp_path):
        _, points_off = self.run(tmp_path / "off")
        _, points_on = self.run(tmp_path / "on", telemetry=True)
        assert points_off == points_on
        for name in ("sweep.tsv", "RUN.json", "sweep.tsv.sha256"):
            assert (tmp_path / "off" / name).read_bytes() == (
                tmp_path / "on" / name
            ).read_bytes()
        assert not (tmp_path / "off" / "METRICS.jsonl").exists()
        assert (tmp_path / "on" / "METRICS.jsonl").exists()
        assert (tmp_path / "on" / "SPANS.jsonl").exists()

    def test_pool_sweep_spans_match_journal_and_workers_dont_show(self, tmp_path):
        self.run(tmp_path / "serial", telemetry=True)
        self.run(tmp_path / "pooled", telemetry=True, workers=4)

        journal = RunJournal.open(
            tmp_path / "pooled" / "sweep.journal.jsonl", resume=True
        )
        unit_ids = {entry["unit"] for entry in journal.entries}
        pooled_spans = load_run_spans(tmp_path / "pooled")
        pooled_units = [r for r in pooled_spans if r["name"] == "unit"]
        assert len(pooled_units) == len(unit_ids) == len(journal)
        assert {r["unit"] for r in pooled_units} == unit_ids

        # After the canonical rewrite, span-file *structure* is
        # identical whatever the worker count; only timings differ.
        serial_spans = load_run_spans(tmp_path / "serial")
        assert [strip_timing(r) for r in serial_spans] == [
            strip_timing(r) for r in pooled_spans
        ]

        # The merged metrics agree on every deterministic counter.
        def counters(out):
            return {
                (s["name"], tuple(sorted(s["labels"].items()))): s["value"]
                for s in load_run_metrics(out)[0]
                if s["type"] == "counter"
            }

        assert counters(tmp_path / "serial") == counters(tmp_path / "pooled")

    def test_profile_capture_writes_per_unit_profiles(self, tmp_path):
        result, _ = self.run(tmp_path / "prof", telemetry=True, profile=True)
        profiles = sorted((tmp_path / "prof" / "profiles").glob("*.prof"))
        assert len(profiles) == len(result.values())
        assert all(p.with_name(p.name + ".sha256").exists() for p in profiles)

    def test_hot_path_counters_reach_the_snapshot(self, tmp_path):
        self.run(tmp_path / "run", telemetry=True)
        samples, source = load_run_metrics(tmp_path / "run")
        assert source == "metrics"
        by_key = {
            (s["name"], tuple(sorted(s["labels"].items()))): s for s in samples
        }
        refs = by_key[("repro_refs_total", ())]
        assert refs["value"] > 0
        ok = by_key[("repro_units_total", (("status", "ok"),))]
        assert ok["value"] == len(
            RunJournal.open(tmp_path / "run" / "sweep.journal.jsonl", resume=True)
        )
        assert ("repro_simulate_seconds", ()) in by_key
