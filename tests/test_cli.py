"""Command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "fig26" in out and "table1" in out


class TestRun:
    def test_runs_scale_free_experiment(self, capsys):
        assert main(["run", "fig21"]) == 0
        out = capsys.readouterr().out
        assert "Exclusion vs. inclusion" in out

    def test_runs_trace_experiment_at_scale(self, capsys):
        assert main(["run", "table1", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "tomcatv" in out

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "unknown experiment" in err

    def test_debug_flag_raises(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            main(["--debug", "run", "fig99"])


class TestEval:
    def test_eval_two_level(self, capsys):
        code = main(
            [
                "eval",
                "--workload",
                "espresso",
                "--l1-kb",
                "4",
                "--l2-kb",
                "32",
                "--exclusive",
                "--scale",
                "0.02",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "exclusive" in out
        assert "TPI" in out

    def test_eval_single_level_dual_ported(self, capsys):
        code = main(
            ["eval", "--l1-kb", "8", "--dual-ported", "--scale", "0.02"]
        )
        assert code == 0
        assert "2-port" in capsys.readouterr().out


class TestEnvelope:
    def test_envelope_output(self, capsys):
        code = main(
            ["envelope", "--workload", "espresso", "--scale", "0.02"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1-level" in out
        assert "config" in out


class TestWorkloads:
    def test_workload_table(self, capsys):
        assert main(["workloads", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        for name in ("gcc1", "espresso", "fpppp", "tomcatv"):
            assert name in out


class TestErrorHandling:
    def test_invalid_geometry_exits_2(self, capsys):
        assert main(["eval", "--l1-kb", "3"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_invalid_geometry_debug_raises(self):
        from repro.errors import GeometryError

        with pytest.raises(GeometryError):
            main(["--debug", "eval", "--l1-kb", "3"])

    def test_unknown_workload_exits_2(self, capsys):
        assert main(["eval", "--workload", "nope", "--scale", "0.02"]) == 2
        assert "error:" in capsys.readouterr().err


class TestSweepCommand:
    def test_sweep_prints_table(self, capsys, tmp_path):
        code = main(
            [
                "sweep",
                "--workload",
                "espresso",
                "--scale",
                "0.02",
                "--out",
                str(tmp_path / "sw"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "config" in out and "tpi_ns" in out
        assert (tmp_path / "sw" / "sweep.tsv").exists()
        assert (tmp_path / "sw" / "sweep.journal.jsonl").exists()

    def test_sweep_resume_reuses_journal(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--workload",
            "espresso",
            "--scale",
            "0.02",
            "--out",
            str(tmp_path / "sw"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first


class TestReportFlags:
    def test_keep_going_clean_run_exits_0(self, capsys, tmp_path):
        out = tmp_path / "r"
        code = main(
            ["report", "--out", str(out), "--ids", "fig21", "--keep-going"]
        )
        assert code == 0
        assert "wrote 1 experiments" in capsys.readouterr().out
        assert not (out / "FAILURES.json").exists()

    def test_resume_skips_completed(self, capsys, tmp_path):
        out = tmp_path / "r"
        assert main(["report", "--out", str(out), "--ids", "fig21"]) == 0
        capsys.readouterr()
        assert main(
            ["report", "--out", str(out), "--ids", "fig21", "--resume"]
        ) == 0
        assert "wrote 1 experiments" in capsys.readouterr().out


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_help_exits_zero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
