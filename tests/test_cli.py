"""Command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "fig26" in out and "table1" in out


class TestRun:
    def test_runs_scale_free_experiment(self, capsys):
        assert main(["run", "fig21"]) == 0
        out = capsys.readouterr().out
        assert "Exclusion vs. inclusion" in out

    def test_runs_trace_experiment_at_scale(self, capsys):
        assert main(["run", "table1", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "tomcatv" in out

    def test_unknown_experiment_raises(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            main(["run", "fig99"])


class TestEval:
    def test_eval_two_level(self, capsys):
        code = main(
            [
                "eval",
                "--workload",
                "espresso",
                "--l1-kb",
                "4",
                "--l2-kb",
                "32",
                "--exclusive",
                "--scale",
                "0.02",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "exclusive" in out
        assert "TPI" in out

    def test_eval_single_level_dual_ported(self, capsys):
        code = main(
            ["eval", "--l1-kb", "8", "--dual-ported", "--scale", "0.02"]
        )
        assert code == 0
        assert "2-port" in capsys.readouterr().out


class TestEnvelope:
    def test_envelope_output(self, capsys):
        code = main(
            ["envelope", "--workload", "espresso", "--scale", "0.02"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1-level" in out
        assert "config" in out


class TestWorkloads:
    def test_workload_table(self, capsys):
        assert main(["workloads", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        for name in ("gcc1", "espresso", "fpppp", "tomcatv"):
            assert name in out


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_help_exits_zero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
