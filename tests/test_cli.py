"""Command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "fig26" in out and "table1" in out


class TestRun:
    def test_runs_scale_free_experiment(self, capsys):
        assert main(["run", "fig21"]) == 0
        out = capsys.readouterr().out
        assert "Exclusion vs. inclusion" in out

    def test_runs_trace_experiment_at_scale(self, capsys):
        assert main(["run", "table1", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "tomcatv" in out

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "unknown experiment" in err

    def test_debug_flag_raises(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            main(["--debug", "run", "fig99"])


class TestEval:
    def test_eval_two_level(self, capsys):
        code = main(
            [
                "eval",
                "--workload",
                "espresso",
                "--l1-kb",
                "4",
                "--l2-kb",
                "32",
                "--exclusive",
                "--scale",
                "0.02",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "exclusive" in out
        assert "TPI" in out

    def test_eval_single_level_dual_ported(self, capsys):
        code = main(
            ["eval", "--l1-kb", "8", "--dual-ported", "--scale", "0.02"]
        )
        assert code == 0
        assert "2-port" in capsys.readouterr().out


class TestEnvelope:
    def test_envelope_output(self, capsys):
        code = main(
            ["envelope", "--workload", "espresso", "--scale", "0.02"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1-level" in out
        assert "config" in out


class TestWorkloads:
    def test_workload_table(self, capsys):
        assert main(["workloads", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        for name in ("gcc1", "espresso", "fpppp", "tomcatv"):
            assert name in out


class TestErrorHandling:
    def test_invalid_geometry_exits_2(self, capsys):
        assert main(["eval", "--l1-kb", "3"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_invalid_geometry_debug_raises(self):
        from repro.errors import GeometryError

        with pytest.raises(GeometryError):
            main(["--debug", "eval", "--l1-kb", "3"])

    def test_unknown_workload_exits_2(self, capsys):
        assert main(["eval", "--workload", "nope", "--scale", "0.02"]) == 2
        assert "error:" in capsys.readouterr().err


class TestSweepCommand:
    def test_sweep_prints_table(self, capsys, tmp_path):
        code = main(
            [
                "sweep",
                "--workload",
                "espresso",
                "--scale",
                "0.02",
                "--out",
                str(tmp_path / "sw"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "config" in out and "tpi_ns" in out
        assert (tmp_path / "sw" / "sweep.tsv").exists()
        assert (tmp_path / "sw" / "sweep.journal.jsonl").exists()

    def test_sweep_resume_reuses_journal(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--workload",
            "espresso",
            "--scale",
            "0.02",
            "--out",
            str(tmp_path / "sw"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first


class TestReportFlags:
    def test_keep_going_clean_run_exits_0(self, capsys, tmp_path):
        out = tmp_path / "r"
        code = main(
            ["report", "--out", str(out), "--ids", "fig21", "--keep-going"]
        )
        assert code == 0
        assert "wrote 1 experiments" in capsys.readouterr().out
        assert not (out / "FAILURES.json").exists()

    def test_resume_skips_completed(self, capsys, tmp_path):
        out = tmp_path / "r"
        assert main(["report", "--out", str(out), "--ids", "fig21"]) == 0
        capsys.readouterr()
        assert main(
            ["report", "--out", str(out), "--ids", "fig21", "--resume"]
        ) == 0
        assert "wrote 1 experiments" in capsys.readouterr().out


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_help_exits_zero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0


class TestLint:
    BAD = 'from pathlib import Path\n\n\ndef save(path: Path, text: str) -> None:\n    path.write_text(text)\n'
    GOOD = (
        "from repro.runner import write_text_atomic\n\n\n"
        "def save(path, text):\n    write_text_atomic(path, text, track=True)\n"
    )

    def _package_file(self, tmp_path, name, source):
        target = tmp_path / "src" / "repro" / "study"
        target.mkdir(parents=True, exist_ok=True)
        (target / name).write_text(source)
        return target / name

    def test_clean_tree_exits_0(self, capsys, tmp_path):
        path = self._package_file(tmp_path, "clean.py", self.GOOD)
        assert main(["lint", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_1(self, capsys, tmp_path):
        path = self._package_file(tmp_path, "dirty.py", self.BAD)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out and "write_text" in out

    def test_missing_target_exits_2(self, capsys, tmp_path):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_unknown_rule_filter_exits_2(self, capsys, tmp_path):
        path = self._package_file(tmp_path, "clean.py", self.GOOD)
        assert main(["lint", str(path), "--select", "REP999"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_json_format(self, capsys, tmp_path):
        import json as json_module

        path = self._package_file(tmp_path, "dirty.py", self.BAD)
        assert main(["lint", str(path), "--format", "json"]) == 1
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 2
        assert payload["version"]
        assert payload["clean"] is False
        assert payload["findings"][0]["rule"] == "REP001"

    def test_select_filters_rules(self, capsys, tmp_path):
        path = self._package_file(tmp_path, "dirty.py", self.BAD)
        # REP001 not selected: the write is invisible to REP003
        assert main(["lint", str(path), "--select", "REP003"]) == 0
        capsys.readouterr()

    def test_ignore_filters_rules(self, capsys, tmp_path):
        path = self._package_file(tmp_path, "dirty.py", self.BAD)
        assert main(["lint", str(path), "--ignore", "REP001"]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "REP000", "REP001", "REP002", "REP003", "REP004", "REP005",
            "REP006", "REP007", "REP008", "REP009", "REP010", "REP011",
        ):
            assert rule_id in out

    def test_workers_matches_serial(self, capsys, tmp_path):
        self._package_file(tmp_path, "dirty.py", self.BAD)
        self._package_file(tmp_path, "clean.py", self.GOOD)
        target = str(tmp_path / "src")
        assert main(["lint", target]) == 1
        serial = capsys.readouterr().out
        assert main(["lint", target, "--workers", "2"]) == 1
        assert capsys.readouterr().out == serial

    def test_program_rule_without_flag_exits_2(self, capsys, tmp_path):
        path = self._package_file(tmp_path, "clean.py", self.GOOD)
        assert main(["lint", str(path), "--select", "REP007"]) == 2
        assert "--program" in capsys.readouterr().err

    def test_program_flag_runs_interprocedural_rules(self, capsys, tmp_path):
        serve = tmp_path / "src" / "repro" / "serve"
        serve.mkdir(parents=True)
        (serve / "helpers.py").write_text(
            "import time\n\n\ndef relay(x):\n    time.sleep(0.01)\n    return x\n"
        )
        (serve / "app.py").write_text(
            "from . import helpers\n\n\nasync def handle(x):\n"
            "    return helpers.relay(x)\n"
        )
        target = str(tmp_path / "src")
        cache = str(tmp_path / "cache.json")
        argv = ["lint", target, "--program", "--select", "REP007",
                "--cache-file", cache]
        assert main(argv) == 1
        out = capsys.readouterr().out
        assert "REP007" in out and "transitively blocks" in out
        # Warm re-run: cached, and byte-identical output.
        assert main(argv) == 1
        assert "REP007" in capsys.readouterr().out

    def test_no_cache_writes_nothing(self, capsys, tmp_path, monkeypatch):
        self._package_file(tmp_path, "clean.py", self.GOOD)
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "src", "--no-cache"]) == 0
        capsys.readouterr()
        assert not (tmp_path / ".repro-lint-cache.json").exists()
        assert main(["lint", "src"]) == 0
        capsys.readouterr()
        assert (tmp_path / ".repro-lint-cache.json").exists()


class TestSweepDefaultOut:
    """Satellite: sweeping without --out gets a managed run directory."""

    def test_default_directory_is_deterministic_and_managed(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        argv = ["sweep", "--workload", "espresso", "--scale", "0.02"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "sweep directory: " in out
        named = out.splitlines()[0].partition(": ")[2]
        run_dir = tmp_path / named
        assert run_dir.parent.name == "runs"
        assert run_dir.name.startswith("sweep-espresso-")
        # A managed run directory, not journal files scattered in cwd.
        assert (run_dir / "RUN.json").exists()
        assert (run_dir / "sweep.journal.jsonl").exists()
        assert not list(tmp_path.glob("*.journal.jsonl"))
        # Deterministic: the same sweep resumes the same directory.
        assert main(argv + ["--resume"]) == 0
        again = capsys.readouterr().out.splitlines()[0].partition(": ")[2]
        assert again == named
        assert len(list((tmp_path / "runs").iterdir())) == 1

    def test_different_sweeps_get_different_directories(self):
        from repro.core.config import SystemConfig
        from repro.core.explorer import default_sweep_dir

        template = SystemConfig(l1_bytes=1024)
        a = default_sweep_dir("espresso", template, 0.02)
        b = default_sweep_dir("gcc1", template, 0.02)
        c = default_sweep_dir("espresso", template, 0.05)
        assert len({a, b, c}) == 3


class TestVerifyCommand:
    """Satellite: verify on a missing/empty directory is a typed error."""

    def test_missing_directory_exits_2(self, capsys, tmp_path):
        assert main(["verify", str(tmp_path / "nope")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not a directory" in err

    def test_empty_directory_exits_2(self, capsys, tmp_path):
        assert main(["verify", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no integrity records" in err

    def test_missing_directory_debug_raises_typed(self, tmp_path):
        from repro.errors import IntegrityError

        with pytest.raises(IntegrityError):
            main(["--debug", "verify", str(tmp_path / "nope")])


class TestMetricsSpansCommands:
    """Satellite: every journalled run directory is inspectable."""

    @pytest.fixture(scope="class")
    def telemetry_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("runs") / "sweep"
        argv = [
            "sweep", "--workload", "espresso", "--scale", "0.01",
            "--out", str(out), "--telemetry",
        ]
        assert main(argv) == 0
        return out

    def test_metrics_renders_a_snapshot(self, capsys, telemetry_dir):
        assert main(["metrics", str(telemetry_dir)]) == 0
        out = capsys.readouterr().out
        assert "series (metrics)" in out
        assert "repro_units_total" in out
        assert "repro_refs_total" in out

    def test_metrics_json_format(self, capsys, telemetry_dir):
        import json

        assert main(["metrics", str(telemetry_dir), "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["source"] == "metrics"
        names = {sample["name"] for sample in document["metrics"]}
        assert "repro_unit_duration_seconds" in names

    def test_spans_renders_the_tree(self, capsys, telemetry_dir):
        assert main(["spans", str(telemetry_dir), "--limit", "6"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# ")
        assert "unit " in out and "simulate" in out
        assert "more spans" in out

    def test_metrics_synthesises_from_a_plain_journal(self, capsys, tmp_path):
        out = tmp_path / "plain"
        argv = [
            "sweep", "--workload", "espresso", "--scale", "0.01",
            "--out", str(out),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["metrics", str(out)]) == 0
        rendered = capsys.readouterr().out
        assert "series (journal)" in rendered
        assert "repro_units_total" in rendered

    def test_spans_without_telemetry_exits_2(self, capsys, tmp_path):
        assert main(["spans", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--telemetry" in err

    def test_metrics_on_a_missing_directory_exits_2(self, capsys, tmp_path):
        assert main(["metrics", str(tmp_path / "nope")]) == 2
        assert "not a run directory" in capsys.readouterr().err
