"""The §2.5 TPI equations, checked by hand against the paper's example."""

import pytest

from repro.cache.results import HierarchyStats
from repro.core.config import SystemConfig
from repro.core.tpi import compute_tpi, system_timings
from repro.errors import ConfigurationError
from repro.timing.optimal import optimal_timing
from repro.units import kb


def stats(n_instr=1000, n_data=400, l1i=50, l1d=30, l2_hits=60, l2_misses=20, has_l2=True):
    return HierarchyStats(
        n_instructions=n_instr,
        n_data_refs=n_data,
        l1i_misses=l1i,
        l1d_misses=l1d,
        l2_hits=l2_hits if has_l2 else 0,
        l2_misses=l2_misses if has_l2 else 0,
        has_l2=has_l2,
    )


class TestSystemTimings:
    def test_l2_cycle_rounded_up_to_l1_multiple(self):
        config = SystemConfig(l1_bytes=kb(4), l2_bytes=kb(64))
        timings = system_timings(config)
        ratio = timings.l2_cycle_ns / timings.l1_cycle_ns
        assert abs(ratio - round(ratio)) < 1e-9
        assert timings.l2_cycle_ns >= timings.l2_raw_cycle_ns - 1e-12

    def test_off_chip_rounded_up(self):
        config = SystemConfig(l1_bytes=kb(4), l2_bytes=kb(64), off_chip_ns=50.0)
        timings = system_timings(config)
        ratio = timings.off_chip_ns / timings.l1_cycle_ns
        assert abs(ratio - round(ratio)) < 1e-9
        assert timings.off_chip_ns >= 50.0 - 1e-12

    def test_paper_figure2_example_penalty(self):
        """§2.5: with 4KB L1s, an L2 at 2 cycles gives a miss penalty of
        (2x2)+1 = 5 CPU cycles."""
        config = SystemConfig(l1_bytes=kb(4), l2_bytes=kb(64), l2_associativity=4)
        timings = system_timings(config)
        assert timings.l2_cycles == 2
        penalty_cycles = timings.l2_hit_penalty_ns / timings.l1_cycle_ns
        assert penalty_cycles == pytest.approx(5.0)

    def test_single_level_timings(self):
        config = SystemConfig(l1_bytes=kb(4))
        timings = system_timings(config)
        assert timings.l2_cycle_ns == 0.0
        assert timings.l2_cycles == 0
        assert timings.single_level_miss_penalty_ns == pytest.approx(
            timings.off_chip_ns + timings.l1_cycle_ns
        )

    def test_l1_cycle_comes_from_timing_model(self):
        config = SystemConfig(l1_bytes=kb(16))
        timings = system_timings(config)
        assert timings.l1_cycle_ns == pytest.approx(
            optimal_timing(kb(16)).cycle_ns
        )


class TestComputeTpi:
    def test_two_level_formula_by_hand(self):
        config = SystemConfig(l1_bytes=kb(4), l2_bytes=kb(64))
        timings = system_timings(config)
        s = stats()
        result = compute_tpi(config, s)
        expected = (
            s.n_instructions * timings.l1_cycle_ns
            + s.l2_hits * (2 * timings.l2_cycle_ns + timings.l1_cycle_ns)
            + s.l2_misses
            * (timings.off_chip_ns + 3 * timings.l2_cycle_ns + timings.l1_cycle_ns)
        )
        assert result.total_ns == pytest.approx(expected)
        assert result.tpi_ns == pytest.approx(expected / s.n_instructions)

    def test_single_level_formula_by_hand(self):
        config = SystemConfig(l1_bytes=kb(4))
        timings = system_timings(config)
        s = stats(has_l2=False)
        result = compute_tpi(config, s)
        expected = s.n_instructions * timings.l1_cycle_ns + s.l1_misses * (
            timings.off_chip_ns + timings.l1_cycle_ns
        )
        assert result.total_ns == pytest.approx(expected)

    def test_issue_width_halves_base_time(self):
        single = SystemConfig(l1_bytes=kb(4))
        dual = single.dual_ported()
        s = stats(has_l2=False)
        t1 = compute_tpi(single, s)
        t2 = compute_tpi(dual, s)
        assert t2.base_ns == pytest.approx(t1.base_ns / 2)
        assert t2.off_chip_ns == pytest.approx(t1.off_chip_ns)

    def test_mismatched_shape_rejected(self):
        config = SystemConfig(l1_bytes=kb(4))  # single level
        with pytest.raises(ConfigurationError):
            compute_tpi(config, stats(has_l2=True))

    def test_cpi_at_l1_clock(self):
        config = SystemConfig(l1_bytes=kb(4))
        s = stats(has_l2=False, l1i=0, l1d=0)
        result = compute_tpi(config, s)
        assert result.cpi == pytest.approx(1.0)
        assert result.memory_fraction == pytest.approx(0.0)

    def test_memory_fraction_between_0_and_1(self):
        config = SystemConfig(l1_bytes=kb(4), l2_bytes=kb(64))
        result = compute_tpi(config, stats())
        assert 0.0 < result.memory_fraction < 1.0

    def test_zero_miss_tpi_is_cycle_time(self):
        config = SystemConfig(l1_bytes=kb(4))
        s = stats(has_l2=False, l1i=0, l1d=0)
        result = compute_tpi(config, s)
        assert result.tpi_ns == pytest.approx(system_timings(config).l1_cycle_ns)
