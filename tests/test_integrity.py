"""Artifact integrity: sidecars, manifests, verify_tree, verify --repair.

The contract under test: every tracked artefact can be *proved* intact
(sha256 sidecar + per-directory MANIFEST.json), any single-record
corruption is arbitrated to the right culprit (artefact vs sidecar vs
manifest), damaged artefacts are quarantined rather than trusted, and a
directory carrying a ``RUN.json`` recipe can be regenerated end to end
through ``repro verify --repair``.
"""

import json

import pytest

from repro.cli import main
from repro.core.config import SystemConfig
from repro.core.explorer import run_sweep_dir
from repro.errors import IntegrityError
from repro.runner import (
    MANIFEST_NAME,
    RUN_METADATA_NAME,
    hash_file,
    matches_sidecar,
    read_sidecar,
    tree_fingerprint,
    untrack,
    verify_tree,
    write_manifest,
    write_sidecar,
    write_text_atomic,
)
from repro.runner.integrity import is_volatile
from repro.study.registry import _REGISTRY, ExperimentResult, Series, register
from repro.study.repair import rerun_directory, verify_and_repair
from repro.study.resultstore import write_report
from repro.units import kb


@pytest.fixture
def fake_experiments():
    """Register two tiny experiments; deregister on teardown."""
    ids = ["unitA", "unitB"]
    calls = {eid: 0 for eid in ids}

    def make(eid):
        def runner(scale):
            calls[eid] += 1
            return ExperimentResult(
                experiment_id=eid,
                title=f"fake {eid}",
                series=(
                    Series(name="s", columns=("x", "y"), rows=((1, 2.0), (3, 4.0))),
                ),
            )

        register(eid, f"fake {eid}", "test")(runner)

    for eid in ids:
        make(eid)
    try:
        yield ids, calls
    finally:
        for eid in ids:
            _REGISTRY.pop(eid, None)


def tracked(path, text):
    write_text_atomic(path, text, track=True)
    return path


class TestSidecars:
    def test_tracked_write_records_digest(self, tmp_path):
        path = tracked(tmp_path / "a.txt", "artefact body\n")
        assert read_sidecar(path) == hash_file(path)
        sidecar_text = (tmp_path / "a.txt.sha256").read_text()
        assert sidecar_text == f"{hash_file(path)}  a.txt\n"  # sha256sum format
        assert matches_sidecar(path)

    def test_untracked_write_records_nothing(self, tmp_path):
        write_text_atomic(tmp_path / "scratch.txt", "x", track=False)
        assert not (tmp_path / "scratch.txt.sha256").exists()
        assert read_sidecar(tmp_path / "scratch.txt") is None
        assert matches_sidecar(tmp_path / "scratch.txt")  # legacy pass

    def test_modified_artifact_fails_match(self, tmp_path):
        path = tracked(tmp_path / "a.txt", "original")
        path.write_bytes(b"tampered")
        assert not matches_sidecar(path)

    def test_corrupt_sidecar_fails_match_and_raises(self, tmp_path):
        path = tracked(tmp_path / "a.txt", "original")
        (tmp_path / "a.txt.sha256").write_text("not a digest\n")
        assert not matches_sidecar(path)
        with pytest.raises(IntegrityError):
            read_sidecar(path)

    def test_binary_garbage_sidecar_raises_typed_error(self, tmp_path):
        path = tracked(tmp_path / "a.txt", "original")
        (tmp_path / "a.txt.sha256").write_bytes(b"\xae\xff\x00garbage")
        with pytest.raises(IntegrityError):
            read_sidecar(path)

    def test_untrack_removes_sidecar(self, tmp_path):
        path = tracked(tmp_path / "a.txt", "x")
        untrack(path)
        assert not (tmp_path / "a.txt.sha256").exists()


class TestManifest:
    def test_manifest_from_sidecars(self, tmp_path):
        a = tracked(tmp_path / "a.txt", "A")
        tracked(tmp_path / "b.journal.jsonl", "volatile journal\n")
        write_manifest(tmp_path)
        doc = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert doc["manifest"] == 1
        assert doc["artifacts"]["a.txt"]["sha256"] == hash_file(a)
        assert doc["artifacts"]["a.txt"]["size"] == 1
        # Journals are listed by name only: their bytes are volatile.
        assert "b.journal.jsonl" in doc["volatile"]
        assert "b.journal.jsonl" not in doc["artifacts"]

    def test_manifest_bytes_deterministic(self, tmp_path):
        tracked(tmp_path / "b.txt", "B")
        tracked(tmp_path / "a.txt", "A")
        write_manifest(tmp_path)
        first = (tmp_path / MANIFEST_NAME).read_bytes()
        write_manifest(tmp_path)
        assert (tmp_path / MANIFEST_NAME).read_bytes() == first

    def test_manifest_never_blesses_damage(self, tmp_path):
        """The manifest is built from sidecars, not by re-hashing files,
        so post-write corruption cannot be laundered into the records."""
        path = tracked(tmp_path / "a.txt", "original")
        good = hash_file(path)
        path.write_bytes(b"rotten")
        write_manifest(tmp_path)
        doc = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert doc["artifacts"]["a.txt"]["sha256"] == good

    def test_volatile_classification(self):
        assert is_volatile("journal.jsonl")
        assert is_volatile("sweep.journal.jsonl")
        assert not is_volatile("sweep.tsv")
        assert not is_volatile("result.json")


class TestVerifyTree:
    def managed(self, tmp_path):
        tracked(tmp_path / "a.txt", "alpha artefact\n")
        tracked(tmp_path / "b.json", '{"k": 1}\n')
        write_manifest(tmp_path)
        return tmp_path

    def test_clean_tree(self, tmp_path):
        report = verify_tree(self.managed(tmp_path))
        assert report.clean
        assert report.n_artifacts == 2

    @pytest.mark.parametrize("offset", [0, 1, 7, 14])
    def test_every_bitflip_detected(self, tmp_path, offset):
        root = self.managed(tmp_path)
        data = bytearray((root / "a.txt").read_bytes())
        data[offset] ^= 0x40
        (root / "a.txt").write_bytes(bytes(data))
        report = verify_tree(root)
        assert [f.kind for f in report.findings] == ["corrupt-artifact"]
        assert report.corrupt

    def test_truncation_detected(self, tmp_path):
        root = self.managed(tmp_path)
        data = (root / "b.json").read_bytes()
        (root / "b.json").write_bytes(data[: len(data) // 2])
        report = verify_tree(root)
        assert [f.kind for f in report.findings] == ["corrupt-artifact"]

    def test_missing_artifact_detected(self, tmp_path):
        root = self.managed(tmp_path)
        (root / "a.txt").unlink()
        report = verify_tree(root)
        assert [f.kind for f in report.findings] == ["missing-artifact"]

    def test_corrupt_artifact_quarantined_on_repair(self, tmp_path):
        root = self.managed(tmp_path)
        (root / "a.txt").write_bytes(b"rotten")
        report = verify_tree(root, repair=True)
        (finding,) = report.findings
        assert finding.action.startswith("quarantined")
        assert (root / "quarantine" / "a.txt").read_bytes() == b"rotten"
        assert not (root / "a.txt").exists()
        # The records no longer claim the artefact exists.
        assert verify_tree(root).clean

    def test_quarantine_dedups_names(self, tmp_path):
        root = self.managed(tmp_path)
        for _ in range(2):
            (root / "a.txt").write_bytes(b"rotten")
            write_sidecar(root / "b.json")  # keep b intact
            tracked(root / "a.txt.probe", "")  # force another walk target
            (root / "a.txt.probe").unlink()
            untrack(root / "a.txt.probe")
            write_manifest(root)
            # re-damage after rebuilding records
            (root / "a.txt").write_bytes(b"still rotten")
            verify_tree(root, repair=True)
            tracked(root / "a.txt", "regenerated")
            write_manifest(root)
        corpses = sorted(p.name for p in (root / "quarantine").iterdir())
        assert corpses == ["a.txt", "a.txt.1"]

    def test_stale_sidecar_arbitrated_to_record(self, tmp_path):
        """File and manifest agree, sidecar differs: the sidecar is the
        liar; repair rewrites it and the artefact is left alone."""
        root = self.managed(tmp_path)
        wrong = "0" * 64
        (root / "a.txt.sha256").write_text(f"{wrong}  a.txt\n")
        report = verify_tree(root, repair=True)
        (finding,) = report.findings
        assert finding.kind == "stale-sidecar"
        assert (root / "a.txt").exists()
        assert verify_tree(root).clean

    def test_corrupt_sidecar_rebuilt_on_repair(self, tmp_path):
        root = self.managed(tmp_path)
        (root / "a.txt.sha256").write_text("garbage, not a digest\n")
        report = verify_tree(root, repair=True)
        (finding,) = report.findings
        assert finding.kind == "corrupt-sidecar"
        assert verify_tree(root).clean

    def test_corrupt_manifest_rebuilt_from_sidecars(self, tmp_path):
        root = self.managed(tmp_path)
        (root / MANIFEST_NAME).write_text("{torn json")
        report = verify_tree(root, repair=True)
        assert any(f.kind == "corrupt-manifest" for f in report.findings)
        assert verify_tree(root).clean
        doc = json.loads((root / MANIFEST_NAME).read_text())
        assert set(doc["artifacts"]) == {"a.txt", "b.json"}

    def test_stale_manifest_arbitrated_to_record(self, tmp_path):
        """File and sidecar agree, manifest entry differs: the manifest
        is stale; repair rewrites it from the surviving records."""
        root = self.managed(tmp_path)
        doc = json.loads((root / MANIFEST_NAME).read_text())
        doc["artifacts"]["a.txt"]["sha256"] = "f" * 64
        (root / MANIFEST_NAME).write_text(json.dumps(doc))
        report = verify_tree(root, repair=True)
        assert any(f.kind == "stale-manifest" for f in report.findings)
        assert (root / "a.txt").exists()
        assert verify_tree(root).clean

    def test_journal_never_quarantined(self, tmp_path):
        root = tmp_path
        journal = tracked(root / "sweep.journal.jsonl", '{"schema": 1}\n')
        write_manifest(root)
        journal.write_text('{"schema": 1}\n{"unit": "extra"}\n')
        report = verify_tree(root, repair=True)
        assert all(f.kind == "stale-sidecar" for f in report.findings)
        assert journal.exists()
        assert verify_tree(root).clean


class TestTreeFingerprint:
    def test_excludes_volatile_and_quarantine(self, tmp_path):
        tracked(tmp_path / "a.txt", "A")
        tracked(tmp_path / "journal.jsonl", "volatile\n")
        (tmp_path / "quarantine").mkdir()
        (tmp_path / "quarantine" / "corpse.txt").write_text("dead")
        (tmp_path / "half.tmp").write_text("in flight")
        write_manifest(tmp_path)
        fp = tree_fingerprint(tmp_path)
        assert set(fp) == {"a.txt", "a.txt.sha256", "MANIFEST.json"}

    def test_identical_runs_fingerprint_identically(self, tmp_path, fake_experiments):
        ids, _ = fake_experiments
        write_report(tmp_path / "one", ids=ids)
        write_report(tmp_path / "two", ids=ids)
        assert tree_fingerprint(tmp_path / "one") == tree_fingerprint(tmp_path / "two")


class TestRepair:
    def test_report_corruption_repaired_via_recipe(self, tmp_path, fake_experiments):
        ids, calls = fake_experiments
        out = tmp_path / "report"
        write_report(out, ids=ids)
        assert json.loads((out / RUN_METADATA_NAME).read_text())["kind"] == "report"
        (out / "unitA.json").write_bytes(b'{"schema": 1, "tampered": true}')

        outcome = verify_and_repair(out)
        assert outcome.clean
        assert outcome.reran == [out]
        assert calls["unitA"] == 2  # regenerated
        assert calls["unitB"] == 1  # restored from journal, not re-run
        assert verify_tree(out).clean

    def test_sweep_corruption_repaired_via_recipe(self, tmp_path):
        out = tmp_path / "sweep"
        template = SystemConfig(l1_bytes=kb(4))
        _, points = run_sweep_dir(out, "gcc1", template, scale=0.02)
        original = (out / "sweep.tsv").read_bytes()
        (out / "sweep.tsv").write_bytes(original[:10])

        outcome = verify_and_repair(out)
        assert outcome.clean
        assert (out / "sweep.tsv").read_bytes() == original
        assert (out / "quarantine" / "sweep.tsv").read_bytes() == original[:10]

    def test_directory_without_recipe_is_skipped(self, tmp_path):
        tracked(tmp_path / "orphan.txt", "no recipe here")
        write_manifest(tmp_path)
        (tmp_path / "orphan.txt").write_bytes(b"rot")
        outcome = verify_and_repair(tmp_path)
        assert not outcome.clean
        assert outcome.skipped and "RUN.json" in outcome.skipped[0]

    def test_unknown_recipe_kind_rejected(self, tmp_path):
        write_text_atomic(
            tmp_path / RUN_METADATA_NAME,
            '{"run": 1, "kind": "mystery"}\n',
            track=True,
        )
        with pytest.raises(IntegrityError):
            rerun_directory(tmp_path)

    def test_rerun_skips_when_artifacts_intact(self, tmp_path, fake_experiments):
        ids, calls = fake_experiments
        out = tmp_path / "report"
        write_report(out, ids=ids)
        rerun_directory(out)
        assert calls == {"unitA": 1, "unitB": 1}  # journal resume, no recompute


class TestVerifyCli:
    def test_exit_codes_and_repair(self, tmp_path, fake_experiments, capsys):
        ids, _ = fake_experiments
        out = tmp_path / "report"
        write_report(out, ids=ids)
        assert main(["verify", str(out)]) == 0
        assert "clean" in capsys.readouterr().out

        (out / "unitA.json").write_bytes(b"rot")
        assert main(["verify", str(out)]) == 1
        assert "corrupt-artifact" in capsys.readouterr().out

        assert main(["verify", str(out), "--repair"]) == 0
        assert main(["verify", str(out)]) == 0

    def test_json_format(self, tmp_path, fake_experiments, capsys):
        ids, _ = fake_experiments
        out = tmp_path / "report"
        write_report(out, ids=ids)
        assert main(["verify", str(out), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["n_artifacts"] > 0
