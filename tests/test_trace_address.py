"""Trace container validation and derived properties."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.address import Trace


def make(i=(0, 4, 8), d=(100,), t=(1,)):
    return Trace("t", np.array(i), np.array(d), np.array(t))


class TestValidation:
    def test_valid_trace(self):
        trace = make()
        assert trace.n_instructions == 3
        assert trace.n_data_refs == 1
        assert trace.n_refs == 4

    def test_empty_instruction_stream_rejected(self):
        with pytest.raises(TraceError):
            Trace("t", np.array([]), np.array([]), np.array([]))

    def test_mismatched_data_arrays_rejected(self):
        with pytest.raises(TraceError):
            make(d=(1, 2), t=(0,))

    def test_decreasing_times_rejected(self):
        with pytest.raises(TraceError):
            make(d=(1, 2), t=(2, 1))

    def test_time_out_of_range_rejected(self):
        with pytest.raises(TraceError):
            make(t=(3,))
        with pytest.raises(TraceError):
            make(t=(-1,))

    def test_negative_addresses_rejected(self):
        with pytest.raises(TraceError):
            make(i=(-4, 0, 4))

    def test_trace_with_no_data_refs_is_valid(self):
        trace = make(d=(), t=())
        assert trace.n_data_refs == 0
        assert trace.data_ratio == 0.0

    def test_arrays_are_read_only(self):
        trace = make()
        with pytest.raises(ValueError):
            trace.i_addrs[0] = 99


class TestDerived:
    def test_line_extraction(self):
        trace = make(i=(0, 15, 16, 47))
        assert list(trace.i_lines(16)) == [0, 0, 1, 2]

    def test_data_ratio(self):
        trace = make(i=(0, 4, 8, 12), d=(1, 2), t=(0, 3))
        assert trace.data_ratio == pytest.approx(0.5)

    def test_len_counts_all_refs(self):
        assert len(make()) == 4

    def test_identity_hash(self):
        a, b = make(), make()
        assert a != b  # identity semantics: distinct objects differ
        assert hash(a) != hash(b) or a is not b

    def test_repr_is_compact(self):
        text = repr(make())
        assert "instructions=3" in text
        assert "array" not in text
