"""Resource watchdog: disk preflight, RSS shedding, serial degradation.

The degradation ladder under test (mildest rung first): a run on a
too-full filesystem is refused *before* anything is written; a worker
whose peak RSS breaches the policy ceiling sheds the queued work back
to the parent, which finishes serially with identical results; a worker
that dies outright (the ``killworker`` fault stands in for an OOM kill)
likewise degrades to serial instead of aborting the run.
"""

import functools
import multiprocessing

import pytest

from repro.errors import ResourceError, RunnerError
from repro.runner import (
    PoolRunner,
    RunJournal,
    Runner,
    RunUnit,
    ResourceWatchdog,
    WatchdogPolicy,
    peak_rss_bytes,
)
from repro.runner import faults

FORK = "fork" in multiprocessing.get_all_start_methods()
fork_only = pytest.mark.skipif(
    not FORK, reason="needs the fork start method to inherit parent state"
)

#: A ceiling every real process breaches (any reply RSS exceeds 1 byte).
TINY_RSS = WatchdogPolicy(max_worker_rss_bytes=1)
#: A floor no real filesystem satisfies.
HUGE_FLOOR = 1 << 60


def _value(uid):
    return f"value:{uid}"


def make_units(ids):
    return [
        RunUnit(
            unit_id=uid,
            payload={"id": uid},
            run=functools.partial(_value, uid),
            to_record=dict_record,
        )
        for uid in ids
    ]


def dict_record(value):
    return {"value": value}


class TestPolicy:
    def test_negative_floor_rejected(self):
        with pytest.raises(ResourceError):
            WatchdogPolicy(min_free_bytes=-1)

    def test_nonpositive_rss_ceiling_rejected(self):
        with pytest.raises(ResourceError):
            WatchdogPolicy(max_worker_rss_bytes=0)

    def test_peak_rss_measurable_here(self):
        rss = peak_rss_bytes()
        assert rss is not None and rss > 1024 * 1024  # >1 MiB, surely

    def test_over_rss(self):
        dog = ResourceWatchdog(TINY_RSS)
        assert dog.over_rss(2)
        assert not dog.over_rss(1)
        assert not dog.over_rss(None)  # unmeasurable: never sheds
        assert not ResourceWatchdog().over_rss(1 << 50)  # no ceiling


class TestDiskPreflight:
    def test_healthy_disk_passes(self, tmp_path):
        free = ResourceWatchdog().preflight_disk(tmp_path)
        assert free > 0

    def test_full_disk_refused(self, tmp_path):
        dog = ResourceWatchdog(WatchdogPolicy(min_free_bytes=HUGE_FLOOR))
        with pytest.raises(ResourceError):
            dog.preflight_disk(tmp_path)

    def test_explicit_need_overrides_policy(self, tmp_path):
        with pytest.raises(ResourceError):
            ResourceWatchdog().preflight_disk(tmp_path, need_bytes=HUGE_FLOOR)

    def test_missing_path_measures_nearest_ancestor(self, tmp_path):
        free = ResourceWatchdog().preflight_disk(
            tmp_path / "not" / "yet" / "created"
        )
        assert free > 0

    def test_pool_run_preflights_journal_directory(self, tmp_path):
        journal = RunJournal.open(tmp_path / "j.jsonl")
        runner = PoolRunner(
            journal=journal,
            workers=2,
            watchdog=ResourceWatchdog(WatchdogPolicy(min_free_bytes=HUGE_FLOOR)),
        )
        with pytest.raises(ResourceError):
            runner.run(make_units(["a", "b"]))
        # Refused before anything ran: no outcomes were journalled.
        assert RunJournal.open(tmp_path / "j.jsonl", resume=True).entries == []


@fork_only
class TestRssShedding:
    def test_breach_degrades_to_serial_with_identical_results(self, tmp_path):
        ids = [f"u{i}" for i in range(6)]
        serial = Runner(journal=None).run(make_units(ids))

        pool = PoolRunner(
            journal=RunJournal.open(tmp_path / "j.jsonl"),
            workers=2,
            watchdog=ResourceWatchdog(TINY_RSS),
        )
        result = pool.run(make_units(ids))
        assert pool.degraded_reason is not None
        assert "RSS" in pool.degraded_reason
        assert [o.unit_id for o in result.outcomes] == ids
        assert result.values() == serial.values()

    def test_no_ceiling_never_sheds(self, tmp_path):
        pool = PoolRunner(
            journal=RunJournal.open(tmp_path / "j.jsonl"),
            workers=2,
            watchdog=ResourceWatchdog(),
        )
        result = pool.run(make_units(["a", "b", "c"]))
        assert pool.degraded_reason is None
        assert [o.status for o in result.outcomes] == ["ok", "ok", "ok"]


@fork_only
class TestWorkerDeath:
    def setup_method(self):
        faults.clear()

    def teardown_method(self):
        faults.clear()

    def test_dead_worker_aborts_without_watchdog(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "killworker=b")
        runner = PoolRunner(
            journal=RunJournal.open(tmp_path / "j.jsonl"), workers=2
        )
        with pytest.raises(RunnerError) as excinfo:
            runner.run(make_units(["a", "b", "c"]))
        assert "resume" in str(excinfo.value)

    def test_dead_worker_degrades_with_watchdog(self, tmp_path, monkeypatch):
        ids = ["a", "b", "c", "d"]
        serial = Runner(journal=None).run(make_units(ids))

        monkeypatch.setenv(faults.ENV_VAR, "killworker=b")
        pool = PoolRunner(
            journal=RunJournal.open(tmp_path / "j.jsonl"),
            workers=2,
            watchdog=ResourceWatchdog(),
        )
        result = pool.run(make_units(ids))
        assert pool.degraded_reason is not None
        assert "died" in pool.degraded_reason
        # The killed unit itself completes on the serial rung: the
        # killworker fault only fires inside a pool worker process.
        assert [o.status for o in result.outcomes] == ["ok"] * 4
        assert result.values() == serial.values()

    def test_degraded_run_resumes_cleanly(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "killworker=b")
        pool = PoolRunner(
            journal=RunJournal.open(tmp_path / "j.jsonl"),
            workers=2,
            watchdog=ResourceWatchdog(),
        )
        pool.run(make_units(["a", "b", "c"]))

        monkeypatch.delenv(faults.ENV_VAR)
        resumed = PoolRunner(
            journal=RunJournal.open(tmp_path / "j.jsonl", resume=True),
            workers=2,
            watchdog=ResourceWatchdog(),
        )
        result = resumed.run(make_units(["a", "b", "c"]))
        assert resumed.degraded_reason is None
        assert [o.status for o in result.outcomes] == ["skipped"] * 3
