"""Result persistence: JSON round-trip and report generation."""

import json

import pytest

from repro.errors import ExperimentError
from repro.study import run_experiment
from repro.study.registry import ExperimentResult, Series
from repro.study.resultstore import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
    write_report,
)


def sample_result():
    return ExperimentResult(
        experiment_id="figX",
        title="demo",
        series=(
            Series(
                name="s",
                columns=("config", "area_rbe", "tpi_ns"),
                rows=(("1:0", 1000.0, 5.5), ("2:0", 2000.0, 4.5)),
            ),
        ),
        notes="hello",
    )


class TestRoundTrip:
    def test_dict_round_trip(self):
        original = sample_result()
        rebuilt = result_from_dict(result_to_dict(original))
        assert rebuilt == original

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "r.json"
        save_result(sample_result(), path)
        loaded = load_result(path)
        assert loaded.get_series("s").column("tpi_ns") == [5.5, 4.5]
        assert loaded.notes == "hello"

    def test_real_experiment_round_trip(self, tmp_path):
        result = run_experiment("fig21")
        path = tmp_path / "fig21.json"
        save_result(result, path)
        assert load_result(path) == result

    def test_schema_version_checked(self):
        payload = result_to_dict(sample_result())
        payload["schema"] = 999
        with pytest.raises(ExperimentError, match="schema"):
            result_from_dict(payload)

    def test_malformed_document(self):
        with pytest.raises(ExperimentError, match="missing"):
            result_from_dict({"schema": 1})

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ExperimentError, match="not valid JSON"):
            load_result(path)

    def test_json_is_plain_data(self, tmp_path):
        path = tmp_path / "r.json"
        save_result(sample_result(), path)
        payload = json.loads(path.read_text())
        assert payload["experiment_id"] == "figX"
        assert payload["series"][0]["rows"][0] == ["1:0", 1000.0, 5.5]

    def test_save_is_atomic_no_tmp_sibling(self, tmp_path):
        path = tmp_path / "r.json"
        save_result(sample_result(), path)
        assert not list(tmp_path.glob("*.tmp"))

    def test_newer_schema_suggests_upgrade(self):
        payload = result_to_dict(sample_result())
        payload["schema"] = 999
        with pytest.raises(ExperimentError, match="upgrade repro"):
            result_from_dict(payload)

    def test_non_integer_schema_is_malformed(self):
        payload = result_to_dict(sample_result())
        payload["schema"] = "1"
        with pytest.raises(ExperimentError, match="malformed"):
            result_from_dict(payload)

    def test_non_dict_payload_rejected(self):
        with pytest.raises(ExperimentError, match="malformed"):
            result_from_dict([1, 2, 3])

    def test_non_list_series_rejected(self):
        payload = result_to_dict(sample_result())
        payload["series"] = {"name": "s"}
        with pytest.raises(ExperimentError, match="series"):
            result_from_dict(payload)


class TestWriteReport:
    def test_writes_selected_ids(self, tmp_path):
        written = write_report(tmp_path / "out", ids=["fig21"], scale=0.02)
        assert written == ["fig21"]
        out = tmp_path / "out"
        assert (out / "fig21.json").exists()
        assert (out / "fig21.txt").exists()
        index = (out / "INDEX.tsv").read_text()
        assert "fig21" in index

    def test_report_artifacts_reload(self, tmp_path):
        write_report(tmp_path, ids=["fig21"], scale=0.02)
        loaded = load_result(tmp_path / "fig21.json")
        assert loaded.experiment_id == "fig21"

    def test_unknown_id_raises(self, tmp_path):
        with pytest.raises(ExperimentError):
            write_report(tmp_path, ids=["fig999"])

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "cli"
        code = main(
            ["report", "--out", str(out), "--ids", "fig21", "--scale", "0.02"]
        )
        assert code == 0
        assert "wrote 1 experiments" in capsys.readouterr().out
        assert (out / "fig21.txt").exists()

    def test_report_writes_journal(self, tmp_path):
        out = tmp_path / "out"
        write_report(out, ids=["fig21"], scale=0.02)
        first_line = (out / "journal.jsonl").read_text().splitlines()[0]
        assert json.loads(first_line)["journal"] == 2

    def test_report_leaves_no_tmp_files(self, tmp_path):
        out = tmp_path / "out"
        write_report(out, ids=["fig21"], scale=0.02)
        assert not list(out.glob("*.tmp"))

    def test_resume_returns_same_ids(self, tmp_path):
        out = tmp_path / "out"
        first = write_report(out, ids=["fig21"], scale=0.02)
        again = write_report(out, ids=["fig21"], scale=0.02, resume=True)
        assert first == again == ["fig21"]
