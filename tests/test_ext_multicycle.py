"""Multicycle-L1 extension (§10 conjecture 1)."""

import pytest

from conftest import MEDIUM
from repro.core.config import SystemConfig
from repro.core.evaluate import evaluate
from repro.errors import ConfigurationError
from repro.ext.multicycle import evaluate_multicycle
from repro.units import kb


class TestModel:
    def test_small_l1_is_single_cycle(self, gcc1_tiny):
        result = evaluate_multicycle(
            SystemConfig(l1_bytes=kb(1)), gcc1_tiny, datapath_cycle_ns=1.8
        )
        assert result.l1_cycles == 1
        assert result.load_stall_ns == 0.0

    def test_large_l1_is_multicycle(self, gcc1_tiny):
        result = evaluate_multicycle(
            SystemConfig(l1_bytes=kb(256)), gcc1_tiny, datapath_cycle_ns=1.8
        )
        assert result.l1_cycles >= 2
        assert result.load_stall_ns > 0.0

    def test_zero_sensitivity_removes_load_stalls(self, gcc1_tiny):
        result = evaluate_multicycle(
            SystemConfig(l1_bytes=kb(256)),
            gcc1_tiny,
            datapath_cycle_ns=1.8,
            load_sensitivity=0.0,
        )
        assert result.load_stall_ns == 0.0

    def test_sensitivity_monotone(self, gcc1_tiny):
        config = SystemConfig(l1_bytes=kb(256))
        tpis = [
            evaluate_multicycle(
                config, gcc1_tiny, load_sensitivity=s
            ).tpi_ns
            for s in (0.0, 0.5, 1.0)
        ]
        assert tpis[0] < tpis[1] < tpis[2]

    def test_validation(self, gcc1_tiny):
        with pytest.raises(ConfigurationError):
            evaluate_multicycle(
                SystemConfig(l1_bytes=kb(1)), gcc1_tiny, datapath_cycle_ns=0
            )
        with pytest.raises(ConfigurationError):
            evaluate_multicycle(
                SystemConfig(l1_bytes=kb(1)), gcc1_tiny, load_sensitivity=2.0
            )

    def test_area_matches_baseline_model(self, gcc1_tiny):
        config = SystemConfig(l1_bytes=kb(8), l2_bytes=kb(64))
        multicycle = evaluate_multicycle(config, gcc1_tiny)
        baseline = evaluate(config, gcc1_tiny)
        assert multicycle.area_rbe == pytest.approx(baseline.area_rbe)


class TestPaperConjecture:
    def test_multicycle_reduces_two_level_advantage(self):
        """§10: multicycle L1s should 'reduce the effectiveness of
        two-level on-chip caching' because a big single-level L1 no
        longer slows the clock."""
        single = SystemConfig(l1_bytes=kb(64))
        two = SystemConfig(l1_bytes=kb(8), l2_bytes=kb(128))

        base_gain = (
            evaluate(single, "gcc1", scale=MEDIUM).tpi_ns
            / evaluate(two, "gcc1", scale=MEDIUM).tpi_ns
        )
        multi_gain = (
            evaluate_multicycle(single, "gcc1", scale=MEDIUM).tpi_ns
            / evaluate_multicycle(two, "gcc1", scale=MEDIUM).tpi_ns
        )
        assert multi_gain < base_gain

    def test_latency_tolerant_codes_gain_most(self):
        """'especially true for applications that can tolerate large
        load latencies, such as numeric benchmarks'."""
        config = SystemConfig(l1_bytes=kb(256))
        tolerant = evaluate_multicycle(
            config, "tomcatv", scale=MEDIUM, load_sensitivity=0.2
        )
        intolerant = evaluate_multicycle(
            config, "tomcatv", scale=MEDIUM, load_sensitivity=1.0
        )
        assert tolerant.tpi_ns < intolerant.tpi_ns
