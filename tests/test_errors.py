"""Exception hierarchy contract."""

import pytest

from repro.errors import (
    CheckpointError,
    ConfigurationError,
    ExperimentError,
    GeometryError,
    ModelError,
    ReproError,
    RunnerError,
    TraceError,
    UnitTimeoutError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            GeometryError,
            ModelError,
            TraceError,
            ExperimentError,
            RunnerError,
            CheckpointError,
            UnitTimeoutError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_geometry_is_a_configuration_error(self):
        """Callers validating configurations catch geometry issues too."""
        assert issubclass(GeometryError, ConfigurationError)

    def test_checkpoint_and_timeout_are_runner_errors(self):
        """Callers wrapping the engine catch all its failure modes at once."""
        assert issubclass(CheckpointError, RunnerError)
        assert issubclass(UnitTimeoutError, RunnerError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise GeometryError("bad shape")

    def test_library_raises_its_own_types(self):
        from repro.cache.geometry import CacheGeometry
        from repro.study import get_experiment
        from repro.traces.workloads import get_workload

        with pytest.raises(GeometryError):
            CacheGeometry(100)
        with pytest.raises(TraceError):
            get_workload("nope")
        with pytest.raises(ExperimentError):
            get_experiment("nope")
