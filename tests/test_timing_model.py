"""Timing model: stage structure, monotonicity, optimisation."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.timing.model import access_and_cycle_time
from repro.timing.optimal import optimal_timing
from repro.timing.organization import ArrayOrganization, enumerate_organizations
from repro.timing.stages import (
    StageChain,
    bitline_rc,
    chain_delay,
    decoder_chain,
    wordline_rc,
)
from repro.timing.technology import TECH_05UM, TECH_08UM
from repro.errors import ModelError
from repro.units import kb

SIZES = [kb(k) for k in (1, 2, 4, 8, 16, 32, 64, 128, 256)]


class TestStages:
    def test_chain_extension(self):
        chain = StageChain(("a",), (1.0,)).extended("b", 2.0)
        assert chain.names == ("a", "b")
        assert chain.rcs == (1.0, 2.0)

    def test_chain_validation(self):
        with pytest.raises(ModelError):
            StageChain(("a", "b"), (1.0,))

    def test_chain_delay_includes_slope_coupling(self):
        single = chain_delay(TECH_08UM, StageChain(("a",), (100.0,)))
        double = chain_delay(TECH_08UM, StageChain(("a", "b"), (100.0, 100.0)))
        # second stage adds its own RC plus coupling from the first
        assert double > 2 * single * 0.99

    def test_wordline_grows_with_columns(self):
        assert wordline_rc(TECH_08UM, 256) > wordline_rc(TECH_08UM, 64)

    def test_bitline_grows_with_rows(self):
        assert bitline_rc(TECH_08UM, 256, 1) > bitline_rc(TECH_08UM, 64, 1)

    def test_bitline_mux_adds_load(self):
        assert bitline_rc(TECH_08UM, 64, 8) > bitline_rc(TECH_08UM, 64, 1)

    def test_decoder_grows_with_rows_and_subarrays(self):
        few = chain_delay(TECH_08UM, decoder_chain(TECH_08UM, 64, 1))
        more_rows = chain_delay(TECH_08UM, decoder_chain(TECH_08UM, 512, 1))
        more_arrays = chain_delay(TECH_08UM, decoder_chain(TECH_08UM, 64, 16))
        assert more_rows > few
        assert more_arrays > few


class TestModel:
    def test_breakdown_sums_to_sides(self):
        g = CacheGeometry(kb(8))
        org = next(enumerate_organizations(g))
        result = access_and_cycle_time(g, org, TECH_05UM)
        assert result.cycle_ns > result.access_ns
        assert result.access_ns > 0
        assert set(result.breakdown) >= {
            "data sense amp",
            "comparator",
            "output driver",
            "precharge",
        }

    def test_process_scaling_halves_delays(self):
        g = CacheGeometry(kb(8))
        org = next(enumerate_organizations(g))
        slow = access_and_cycle_time(g, org, TECH_08UM)
        fast = access_and_cycle_time(g, org, TECH_05UM)
        assert fast.access_ns == pytest.approx(slow.access_ns * 0.5)
        assert fast.cycle_ns == pytest.approx(slow.cycle_ns * 0.5)

    def test_set_associative_has_way_select_stage(self):
        g = CacheGeometry(kb(8), associativity=4)
        org = next(enumerate_organizations(g))
        result = access_and_cycle_time(g, org, TECH_05UM)
        assert "way select" in result.breakdown
        assert "mux driver" in result.breakdown

    def test_direct_mapped_has_no_way_select(self):
        g = CacheGeometry(kb(8))
        org = next(enumerate_organizations(g))
        result = access_and_cycle_time(g, org, TECH_05UM)
        assert "way select" not in result.breakdown


class TestOptimal:
    def test_memoised(self):
        a = optimal_timing(kb(8))
        b = optimal_timing(kb(8))
        assert a is b

    def test_optimal_beats_or_matches_naive(self):
        g = CacheGeometry(kb(16))
        best = optimal_timing(kb(16))
        for org in enumerate_organizations(g):
            result = access_and_cycle_time(g, org, TECH_05UM)
            assert best.cycle_ns <= result.cycle_ns + 1e-12

    def test_cycle_monotonic_in_size(self):
        cycles = [optimal_timing(size).cycle_ns for size in SIZES]
        assert all(a <= b + 1e-9 for a, b in zip(cycles, cycles[1:]))

    def test_access_monotonic_in_size(self):
        accesses = [optimal_timing(size).access_ns for size in SIZES]
        assert all(a <= b + 1e-9 for a, b in zip(accesses, accesses[1:]))

    def test_set_associative_never_faster(self):
        for size in (kb(4), kb(32), kb(256)):
            dm = optimal_timing(size, 1)
            sa = optimal_timing(size, 4)
            assert sa.access_ns >= dm.access_ns
            assert sa.cycle_ns >= dm.cycle_ns
