"""Board-level cache (L3) extension."""

import pytest

from conftest import MEDIUM
from repro.core.config import SystemConfig
from repro.core.evaluate import evaluate
from repro.errors import ConfigurationError
from repro.ext.l3 import evaluate_with_board_cache
from repro.units import kb


class TestModel:
    def test_counts_partition(self, gcc1_tiny):
        config = SystemConfig(l1_bytes=kb(4), l2_bytes=kb(32))
        result = evaluate_with_board_cache(config, gcc1_tiny)
        baseline = evaluate(config, gcc1_tiny)
        assert result.l3_hits + result.l3_misses == baseline.stats.l2_misses

    def test_effective_latency_between_bounds(self, gcc1_tiny):
        result = evaluate_with_board_cache(
            SystemConfig(l1_bytes=kb(4)), gcc1_tiny
        )
        assert result.board_hit_ns <= result.effective_off_chip_ns
        assert result.effective_off_chip_ns <= result.dram_ns

    def test_tpi_between_constant_models(self, gcc1_tiny):
        """The mixed latency sits between the paper's 50 ns and 200 ns
        constant abstractions."""
        config = SystemConfig(l1_bytes=kb(4), l2_bytes=kb(32))
        mixed = evaluate_with_board_cache(
            config, gcc1_tiny, board_hit_ns=50.0, dram_ns=200.0
        )
        fast = evaluate(config, gcc1_tiny)  # 50 ns constant
        slow = evaluate(
            SystemConfig(
                l1_bytes=kb(4), l2_bytes=kb(32), off_chip_ns=200.0
            ),
            gcc1_tiny,
        )
        assert fast.tpi_ns <= mixed.tpi_ns + 1e-9
        assert mixed.tpi_ns <= slow.tpi_ns + 1e-9

    def test_constant_model_matches_core_evaluate(self, gcc1_tiny):
        """With a never-missing L3 the model collapses to the paper's
        50 ns abstraction — and must agree with the core TPI engine."""
        config = SystemConfig(l1_bytes=kb(4), l2_bytes=kb(32))
        result = evaluate_with_board_cache(config, gcc1_tiny)
        baseline = evaluate(config, gcc1_tiny)
        assert result.constant_model_tpi_ns == pytest.approx(baseline.tpi_ns)

    def test_bigger_l3_fewer_misses(self):
        config = SystemConfig(l1_bytes=kb(4), l2_bytes=kb(32))
        small = evaluate_with_board_cache(
            config, "gcc1", l3_bytes=kb(256), scale=MEDIUM
        )
        large = evaluate_with_board_cache(
            config, "gcc1", l3_bytes=4 << 20, scale=MEDIUM
        )
        assert large.l3_misses <= small.l3_misses
        assert large.tpi_ns <= small.tpi_ns + 1e-9

    def test_single_level_supported(self, gcc1_tiny):
        result = evaluate_with_board_cache(
            SystemConfig(l1_bytes=kb(4)), gcc1_tiny
        )
        assert result.tpi_ns > 0

    def test_exclusive_policy_supported(self, gcc1_tiny):
        from repro.cache.hierarchy import Policy

        config = SystemConfig(
            l1_bytes=kb(4), l2_bytes=kb(32), policy=Policy.EXCLUSIVE
        )
        result = evaluate_with_board_cache(config, gcc1_tiny)
        baseline = evaluate(config, gcc1_tiny)
        assert result.l3_hits + result.l3_misses == baseline.stats.l2_misses

    def test_validation(self, gcc1_tiny):
        config = SystemConfig(l1_bytes=kb(4))
        with pytest.raises(ConfigurationError):
            evaluate_with_board_cache(config, gcc1_tiny, l3_bytes=0)
        with pytest.raises(ConfigurationError):
            evaluate_with_board_cache(
                config, gcc1_tiny, board_hit_ns=100.0, dram_ns=50.0
            )
