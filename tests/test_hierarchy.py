"""Hierarchy simulation: fast path vs reference oracle, warmup, stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_random_trace
from repro.cache.hierarchy import (
    DEFAULT_WARMUP_FRACTION,
    Policy,
    l1_miss_stream,
    simulate_hierarchy,
)
from repro.cache.reference import reference_simulate_hierarchy
from repro.errors import ConfigurationError
from repro.traces.address import Trace
from repro.units import kb


class TestMissStream:
    def test_memoised_per_trace_identity(self, gcc1_tiny):
        a = l1_miss_stream(gcc1_tiny, kb(2))
        b = l1_miss_stream(gcc1_tiny, kb(2))
        assert a is b

    def test_times_sorted(self, gcc1_tiny):
        stream = l1_miss_stream(gcc1_tiny, kb(1))
        assert np.all(np.diff(stream.times) >= 0)

    def test_instruction_before_data_at_same_time(self):
        # Craft a trace where instruction and data miss in the same cycle.
        trace = Trace(
            "t", np.array([0, 16]), np.array([1 << 40]), np.array([0])
        )
        stream = l1_miss_stream(trace, kb(1))
        assert stream.times[0] == stream.times[1] == 0
        assert bool(stream.is_instruction[0]) is True
        assert bool(stream.is_instruction[1]) is False

    def test_counts_add_up(self, gcc1_tiny):
        stream = l1_miss_stream(gcc1_tiny, kb(4))
        assert stream.l1i_misses + stream.l1d_misses == len(stream)
        assert stream.l1i_misses == int(stream.is_instruction.sum())

    def test_larger_cache_fewer_misses(self, gcc1_tiny):
        small = l1_miss_stream(gcc1_tiny, kb(1))
        large = l1_miss_stream(gcc1_tiny, kb(32))
        assert len(large) < len(small)


class TestAgainstReference:
    @pytest.mark.parametrize("policy", list(Policy))
    @pytest.mark.parametrize("l2_kb,assoc", [(8, 1), (8, 4), (16, 2)])
    def test_matches_reference_on_workload(self, gcc1_tiny, policy, l2_kb, assoc):
        fast = simulate_hierarchy(gcc1_tiny, kb(1), kb(l2_kb), assoc, policy)
        slow = reference_simulate_hierarchy(gcc1_tiny, kb(1), kb(l2_kb), assoc, policy)
        assert fast == slow

    def test_matches_reference_single_level(self, gcc1_tiny):
        fast = simulate_hierarchy(gcc1_tiny, kb(2))
        slow = reference_simulate_hierarchy(gcc1_tiny, kb(2))
        assert fast == slow

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        policy=st.sampled_from(list(Policy)),
        assoc=st.sampled_from([1, 2, 4]),
    )
    def test_matches_reference_on_random_traces(self, seed, policy, assoc):
        trace = make_random_trace(seed, n_instructions=300, n_lines=48)
        fast = simulate_hierarchy(trace, 1024, 4096, assoc, policy)
        slow = reference_simulate_hierarchy(trace, 1024, 4096, assoc, policy)
        assert fast == slow

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_dm_l2_fast_path_matches_loop_semantics(self, seed):
        # The conventional DM L2 uses a vectorised shortcut; the
        # reference exercises the generic stateful path.
        trace = make_random_trace(seed, n_instructions=400, n_lines=80)
        fast = simulate_hierarchy(trace, 512, 2048, 1, Policy.CONVENTIONAL)
        slow = reference_simulate_hierarchy(trace, 512, 2048, 1, Policy.CONVENTIONAL)
        assert fast == slow


class TestWarmup:
    def test_default_warmup_fraction(self):
        assert DEFAULT_WARMUP_FRACTION == 0.25

    def test_counts_cover_post_warmup_window(self, gcc1_tiny):
        stats = simulate_hierarchy(gcc1_tiny, kb(4), warmup_fraction=0.5)
        assert stats.n_instructions == gcc1_tiny.n_instructions - int(
            gcc1_tiny.n_instructions * 0.5
        )

    def test_zero_warmup_counts_everything(self, gcc1_tiny):
        stats = simulate_hierarchy(gcc1_tiny, kb(4), warmup_fraction=0.0)
        assert stats.n_instructions == gcc1_tiny.n_instructions
        assert stats.n_data_refs == gcc1_tiny.n_data_refs

    def test_warmup_lowers_measured_miss_rate(self, gcc1_tiny):
        cold = simulate_hierarchy(gcc1_tiny, kb(16), warmup_fraction=0.0)
        warm = simulate_hierarchy(gcc1_tiny, kb(16), warmup_fraction=0.5)
        assert warm.l1_miss_rate <= cold.l1_miss_rate

    def test_invalid_fraction_rejected(self, gcc1_tiny):
        with pytest.raises(ConfigurationError):
            simulate_hierarchy(gcc1_tiny, kb(4), warmup_fraction=1.0)
        with pytest.raises(ConfigurationError):
            simulate_hierarchy(gcc1_tiny, kb(4), warmup_fraction=-0.1)


class TestStatsShape:
    def test_single_level_has_no_l2_counts(self, gcc1_tiny):
        stats = simulate_hierarchy(gcc1_tiny, kb(4))
        assert not stats.has_l2
        assert stats.l2_hits == 0
        assert stats.off_chip_fetches == stats.l1_misses

    def test_two_level_partition(self, gcc1_tiny):
        stats = simulate_hierarchy(gcc1_tiny, kb(1), kb(16), 4)
        assert stats.has_l2
        assert stats.l2_hits + stats.l2_misses == stats.l1_misses
        assert stats.off_chip_fetches == stats.l2_misses

    def test_negative_l2_rejected(self, gcc1_tiny):
        with pytest.raises(ConfigurationError):
            simulate_hierarchy(gcc1_tiny, kb(1), -4)

    def test_l2_strictly_helps_off_chip_traffic(self, gcc1_tiny):
        single = simulate_hierarchy(gcc1_tiny, kb(2))
        two = simulate_hierarchy(gcc1_tiny, kb(2), kb(32), 4)
        assert two.off_chip_fetches <= single.off_chip_fetches

    def test_l1_misses_independent_of_l2(self, gcc1_tiny):
        a = simulate_hierarchy(gcc1_tiny, kb(2), kb(8), 1, Policy.CONVENTIONAL)
        b = simulate_hierarchy(gcc1_tiny, kb(2), kb(64), 4, Policy.EXCLUSIVE)
        assert a.l1i_misses == b.l1i_misses
        assert a.l1d_misses == b.l1d_misses
