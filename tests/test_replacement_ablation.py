"""The l2_replacement knob (LFSR vs LRU ablation support)."""

import pytest

from repro.cache.hierarchy import Policy, simulate_hierarchy
from repro.errors import ConfigurationError
from repro.units import kb


class TestReplacementKnob:
    def test_lru_beats_pseudo_random_on_locality(self, gcc1_tiny):
        """With real temporal locality, LRU should not lose to random —
        the usual reason hardware accepts random is cost, not quality."""
        lfsr = simulate_hierarchy(
            gcc1_tiny, kb(2), kb(16), 4, l2_replacement="lfsr"
        )
        lru = simulate_hierarchy(
            gcc1_tiny, kb(2), kb(16), 4, l2_replacement="lru"
        )
        assert lru.l2_misses <= lfsr.l2_misses

    def test_direct_mapped_l2_ignores_replacement(self, gcc1_tiny):
        a = simulate_hierarchy(gcc1_tiny, kb(2), kb(16), 1, l2_replacement="lfsr")
        b = simulate_hierarchy(gcc1_tiny, kb(2), kb(16), 1, l2_replacement="lru")
        assert a == b

    def test_exclusive_policy_supports_lru(self, gcc1_tiny):
        stats = simulate_hierarchy(
            gcc1_tiny, kb(2), kb(16), 4, Policy.EXCLUSIVE, l2_replacement="lru"
        )
        assert stats.l2_hits + stats.l2_misses == stats.l1_misses

    def test_unknown_policy_rejected(self, gcc1_tiny):
        with pytest.raises(ConfigurationError, match="unknown replacement"):
            simulate_hierarchy(
                gcc1_tiny, kb(2), kb(16), 4, l2_replacement="fifo"
            )

    def test_default_is_lfsr(self, gcc1_tiny):
        default = simulate_hierarchy(gcc1_tiny, kb(2), kb(16), 4)
        explicit = simulate_hierarchy(
            gcc1_tiny, kb(2), kb(16), 4, l2_replacement="lfsr"
        )
        assert default == explicit
