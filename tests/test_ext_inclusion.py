"""Strict-inclusion (back-invalidation) ablation."""

import numpy as np
import pytest

from repro.cache.hierarchy import Policy, simulate_hierarchy
from repro.errors import ConfigurationError
from repro.ext.inclusion import simulate_strict_inclusion
from repro.traces.address import Trace
from repro.units import kb


class TestSemantics:
    def test_back_invalidation_forces_remiss(self):
        """Craft an L2 eviction of an L1-resident line and observe the
        extra L1 miss that strict inclusion causes."""
        # L1: 64 B = 4 sets; L2: 256 B direct-mapped = 16 sets.  Data
        # line 4 sits in the D-cache and in L2 set 4.  Instruction line
        # 20 also maps to L2 set 4 but lives in the *other* L1, so the
        # I-fetch at t2 evicts line 4 from the shared L2 without
        # touching the D-cache naturally — only back-invalidation can
        # remove it.  The D-ref at t4 then re-misses under strict
        # inclusion and hits under the non-inclusive baseline.
        i_addrs = np.array([8, 8, 20 * 16, 8, 8], dtype=np.int64)
        d_addrs = np.array([4 * 16, 4 * 16], dtype=np.int64)
        d_times = np.array([0, 4], dtype=np.int64)
        trace = Trace("incl", i_addrs, d_addrs, d_times)

        strict = simulate_strict_inclusion(
            trace, 64, 256, l2_associativity=1, warmup_fraction=0.0
        )
        baseline = simulate_hierarchy(
            trace, 64, 256, 1, Policy.CONVENTIONAL, warmup_fraction=0.0
        )
        # Baseline: the second D-ref to line 4 hits in the L1 D-cache.
        # Strict inclusion: fetching line 20 evicted line 4 from the L2
        # (both map to L2 set 4) and back-invalidated the D-cache, so
        # the second D-ref misses again.
        assert strict.l1d_misses == baseline.l1d_misses + 1

    def test_requires_l2(self, gcc1_tiny):
        with pytest.raises(ConfigurationError):
            simulate_strict_inclusion(gcc1_tiny, kb(4), 0)

    def test_warmup_validation(self, gcc1_tiny):
        with pytest.raises(ConfigurationError):
            simulate_strict_inclusion(gcc1_tiny, kb(4), kb(16), warmup_fraction=1.0)


class TestAblation:
    def test_inclusion_never_beats_non_inclusive_baseline(self, gcc1_tiny):
        """Back-invalidation can only add L1 misses."""
        strict = simulate_strict_inclusion(gcc1_tiny, kb(4), kb(16))
        baseline = simulate_hierarchy(gcc1_tiny, kb(4), kb(16), 4)
        assert strict.l1_misses >= baseline.l1_misses

    def test_overhead_shrinks_with_l2_size(self, gcc1_tiny):
        """A roomy L2 rarely evicts hot lines, so the inclusion tax
        fades — the Baer-Wang argument for big ratios."""

        def extra_misses(l2_kb):
            strict = simulate_strict_inclusion(gcc1_tiny, kb(4), kb(l2_kb))
            base = simulate_hierarchy(gcc1_tiny, kb(4), kb(l2_kb), 4)
            return strict.l1_misses - base.l1_misses

        assert extra_misses(64) <= extra_misses(8)

    def test_counts_partition(self, gcc1_tiny):
        strict = simulate_strict_inclusion(gcc1_tiny, kb(4), kb(16))
        assert strict.l2_hits + strict.l2_misses == strict.l1_misses
