"""Replacement policies: LFSR pseudo-random and LRU extension."""

import pytest

from repro.cache.replacement import LfsrReplacement, LruReplacement
from repro.errors import GeometryError


class TestLfsrReplacement:
    def test_victims_in_range(self):
        policy = LfsrReplacement(4)
        for _ in range(100):
            assert 0 <= policy.victim_way(0) < 4

    def test_deterministic_sequence(self):
        a = LfsrReplacement(4, seed=99)
        b = LfsrReplacement(4, seed=99)
        assert [a.victim_way(0) for _ in range(50)] == [
            b.victim_way(0) for _ in range(50)
        ]

    def test_touch_is_stateless(self):
        policy = LfsrReplacement(4)
        policy.touch(0, 2)  # must not raise or change the stream
        a = policy.victim_way(0)
        assert isinstance(a, int)

    def test_rejects_bad_associativity(self):
        with pytest.raises(GeometryError):
            LfsrReplacement(0)


class TestLruReplacement:
    def test_initial_victim_is_highest_way(self):
        policy = LruReplacement(4, n_sets=2)
        assert policy.victim_way(0) == 3

    def test_touch_moves_to_front(self):
        policy = LruReplacement(4, n_sets=1)
        policy.touch(0, 3)
        assert policy.recency_order(0) == (3, 0, 1, 2)
        assert policy.victim_way(0) == 2

    def test_sets_independent(self):
        policy = LruReplacement(2, n_sets=2)
        policy.touch(0, 1)
        assert policy.victim_way(0) == 0
        assert policy.victim_way(1) == 1

    def test_lru_sequence(self):
        policy = LruReplacement(3, n_sets=1)
        for way in (0, 1, 2, 0):
            policy.touch(0, way)
        # access order 0,1,2,0 -> LRU is 1
        assert policy.victim_way(0) == 1

    def test_rejects_bad_arguments(self):
        with pytest.raises(GeometryError):
            LruReplacement(0, 1)
        with pytest.raises(GeometryError):
            LruReplacement(2, 0)
