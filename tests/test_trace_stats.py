"""Trace statistics used by the Table 1 reproduction."""

import numpy as np
import pytest

from repro.traces.address import Trace
from repro.traces.stats import compute_stats


def test_counts_and_footprints():
    trace = Trace(
        "t",
        np.array([0, 4, 16, 20]),      # lines 0,0,1,1 -> 2 unique
        np.array([1000, 1000, 1048]),  # lines 62,62,65 -> 2 unique
        np.array([0, 1, 3]),
    )
    stats = compute_stats(trace)
    assert stats.n_instructions == 4
    assert stats.n_data_refs == 3
    assert stats.n_refs == 7
    assert stats.instruction_footprint_bytes == 2 * 16
    assert stats.data_footprint_bytes == 2 * 16
    assert stats.total_footprint_bytes == 4 * 16
    assert stats.data_ratio == pytest.approx(0.75)


def test_no_data_refs():
    trace = Trace("t", np.array([0, 16]), np.array([]), np.array([]))
    stats = compute_stats(trace)
    assert stats.data_footprint_bytes == 0
    assert stats.n_refs == 2


def test_line_size_changes_footprint():
    trace = Trace("t", np.array([0, 16, 32, 48]), np.array([]), np.array([]))
    assert compute_stats(trace, line_size=16).instruction_footprint_bytes == 64
    assert compute_stats(trace, line_size=64).instruction_footprint_bytes == 64
    # One 64-byte line vs four 16-byte lines:
    assert compute_stats(trace, line_size=64).instruction_footprint_bytes // 64 == 1
