"""Differential equivalence and fault behaviour of the pool backend.

The process-pool execution engine (``repro.runner.pool``) promises the
*same output* as the serial engine — journal contents, report rows,
envelope points, failure manifests — regardless of worker count,
submission order, or completion order.  The only volatile fields are
the wall-clock ``elapsed_s`` measurements, which these tests normalise
before comparing byte-for-byte.
"""

import json
import multiprocessing
import random
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.core.config import SystemConfig
from repro.core.envelope import best_envelope
from repro.core.explorer import as_point, design_space, run_sweep, sweep
from repro.errors import RunnerError
from repro.runner import (
    PoolRunner,
    RetryPolicy,
    RunJournal,
    RunUnit,
    resolve_workers,
)
from repro.runner import faults
from repro.study.registry import _REGISTRY, ExperimentResult, Series, register
from repro.study.resultstore import write_report
from repro.traces.store import get_trace
from repro.units import kb

#: Parent-registered state (fake experiments, in-memory fault plans,
#: test-module callables) reaches workers only under fork.
FORK = "fork" in multiprocessing.get_all_start_methods()
fork_only = pytest.mark.skipif(
    not FORK, reason="needs the fork start method to inherit parent state"
)

SCALE = 0.02


@pytest.fixture(autouse=True)
def clean_faults():
    faults.clear()
    yield
    faults.clear()


def small_design_space():
    """A 9-point grid: 3 L1 sizes x {no L2, 8K, 16K}."""
    return design_space(
        SystemConfig(l1_bytes=kb(1)),
        l1_sizes=[kb(1), kb(2), kb(4)],
        l2_sizes=[0, kb(8), kb(16)],
    )


VOLATILE_ENTRY_FIELDS = ("elapsed_s", "duration_s", "started_at", "ended_at")


def normalized_journal(path):
    """Journal text with the volatile wall-clock fields zeroed."""
    lines = Path(path).read_text().splitlines()
    out = [lines[0]]
    for line in lines[1:]:
        entry = json.loads(line)
        for field in VOLATILE_ENTRY_FIELDS:
            entry.pop(field, None)
        if "error" in entry:
            entry["error"].pop("elapsed_s", None)
        out.append(json.dumps(entry, sort_keys=True))
    return "\n".join(out)


def normalized_manifest(doc):
    """A FAILURES manifest (dict or path) with elapsed_s zeroed."""
    if not isinstance(doc, dict):
        doc = json.loads(Path(doc).read_text())
    doc = json.loads(json.dumps(doc))  # deep copy
    for failure in doc["failures"]:
        failure.pop("elapsed_s", None)
    return json.dumps(doc, sort_keys=True)


def point_tuples(result):
    return [
        (p.label, p.workload, p.area_rbe, p.tpi_ns, p.levels)
        for p in (as_point(v) for v in result.values())
    ]


class TestResolveWorkers:
    def test_serial_forms(self):
        assert resolve_workers(None) is None
        assert resolve_workers(0) is None
        assert resolve_workers("") is None
        assert resolve_workers("0") is None
        assert resolve_workers("serial") is None

    def test_counts(self):
        assert resolve_workers(3) == 3
        assert resolve_workers("4") == 4
        assert resolve_workers("auto") >= 1

    def test_rejects_garbage(self):
        with pytest.raises(RunnerError):
            resolve_workers("many")
        with pytest.raises(RunnerError):
            resolve_workers(-2)


class TestDifferentialSweep:
    """--workers N output must be byte-equal to the serial run."""

    def test_points_and_envelope_identical(self):
        configs = small_design_space()
        serial = run_sweep("espresso", configs, scale=SCALE)
        parallel = run_sweep("espresso", configs, scale=SCALE, workers=4)
        assert point_tuples(serial) == point_tuples(parallel)
        assert [o.status for o in serial.outcomes] == [
            o.status for o in parallel.outcomes
        ]
        serial_env = best_envelope(serial.values())
        parallel_env = best_envelope(parallel.values())
        assert [(e.label, e.area_rbe, e.tpi_ns) for e in serial_env] == [
            (e.label, e.area_rbe, e.tpi_ns) for e in parallel_env
        ]

    def test_journal_identical(self, tmp_path):
        configs = small_design_space()
        run_sweep(
            "espresso", configs, scale=SCALE, journal_path=tmp_path / "serial.jsonl"
        )
        run_sweep(
            "espresso",
            configs,
            scale=SCALE,
            journal_path=tmp_path / "pool.jsonl",
            workers=4,
        )
        assert normalized_journal(tmp_path / "serial.jsonl") == normalized_journal(
            tmp_path / "pool.jsonl"
        )

    def test_seeded_shuffle_of_submission_order(self, tmp_path):
        """Any submission permutation produces identical artefacts."""
        configs = small_design_space()
        run_sweep(
            "espresso", configs, scale=SCALE, journal_path=tmp_path / "serial.jsonl"
        )
        order = list(range(len(configs)))
        random.Random(1234).shuffle(order)
        shuffled = run_sweep(
            "espresso",
            configs,
            scale=SCALE,
            journal_path=tmp_path / "shuffled.jsonl",
            workers=3,
            submit_order=order,
        )
        serial = run_sweep("espresso", configs, scale=SCALE)
        assert point_tuples(serial) == point_tuples(shuffled)
        assert normalized_journal(tmp_path / "serial.jsonl") == normalized_journal(
            tmp_path / "shuffled.jsonl"
        )

    def test_failures_manifest_identical(self, tmp_path, monkeypatch):
        configs = small_design_space()
        victim = f"0004:{configs[4].label}"
        monkeypatch.setenv(faults.ENV_VAR, f"fail={victim}:99")
        serial = run_sweep("espresso", configs, scale=SCALE, keep_going=True)
        faults.clear()  # forked workers must not inherit the serial run's fail counters
        parallel = run_sweep(
            "espresso", configs, scale=SCALE, keep_going=True, workers=4
        )
        assert [o.status for o in serial.outcomes] == [
            o.status for o in parallel.outcomes
        ]
        assert normalized_manifest(serial.failures_manifest()) == normalized_manifest(
            parallel.failures_manifest()
        )
        assert parallel.failed[0].error["unit"] == victim
        assert parallel.failed[0].error["type"] == "InjectedFault"

    def test_sweep_convenience_wrapper(self):
        configs = small_design_space()[:4]
        serial = sweep("espresso", configs, scale=SCALE)
        parallel = sweep("espresso", configs, scale=SCALE, workers=2)
        assert [as_point(p) for p in serial] == [as_point(p) for p in parallel]

    def test_explicit_trace_workload(self):
        """A Trace object workload is shared via the pool initializer."""
        trace = get_trace("li", SCALE)
        configs = small_design_space()[:4]
        serial = run_sweep(trace, configs)
        parallel = run_sweep(trace, configs, workers=2)
        assert point_tuples(serial) == point_tuples(parallel)

    def test_resume_skips_parallel_completed_units(self, tmp_path):
        configs = small_design_space()
        journal = tmp_path / "j.jsonl"
        first = run_sweep(
            "espresso", configs, scale=SCALE, journal_path=journal, workers=4
        )
        resumed = run_sweep(
            "espresso",
            configs,
            scale=SCALE,
            journal_path=journal,
            resume=True,
            workers=4,
        )
        assert all(o.status == "skipped" for o in resumed.outcomes)
        assert point_tuples(first) == point_tuples(resumed)


@fork_only
class TestDifferentialReport:
    @pytest.fixture
    def fake_experiments(self):
        ids = ["diffA", "diffB", "diffC"]

        def make(eid):
            def runner(scale):
                return ExperimentResult(
                    experiment_id=eid,
                    title=f"fake {eid}",
                    series=(
                        Series(
                            name="s",
                            columns=("x", "y"),
                            rows=((1, 2.0), (3, 4.0)),
                        ),
                    ),
                )

            register(eid, f"fake {eid}", "test")(runner)

        for eid in ids:
            make(eid)
        try:
            yield ids
        finally:
            for eid in ids:
                _REGISTRY.pop(eid, None)

    def test_artifacts_byte_identical(self, tmp_path, fake_experiments):
        ids = fake_experiments
        serial_out, pool_out = tmp_path / "serial", tmp_path / "pool"
        assert write_report(serial_out, ids=ids) == ids
        assert write_report(pool_out, ids=ids, workers=2) == ids
        for eid in ids:
            assert (serial_out / f"{eid}.json").read_bytes() == (
                pool_out / f"{eid}.json"
            ).read_bytes()
            assert (serial_out / f"{eid}.txt").read_bytes() == (
                pool_out / f"{eid}.txt"
            ).read_bytes()
        assert (serial_out / "INDEX.tsv").read_bytes() == (
            pool_out / "INDEX.tsv"
        ).read_bytes()
        assert normalized_journal(serial_out / "journal.jsonl") == normalized_journal(
            pool_out / "journal.jsonl"
        )

    def test_partial_report_and_manifest_identical(
        self, tmp_path, fake_experiments, monkeypatch
    ):
        ids = fake_experiments
        monkeypatch.setenv(faults.ENV_VAR, "fail=diffB:99")
        serial_out, pool_out = tmp_path / "serial", tmp_path / "pool"
        assert write_report(serial_out, ids=ids, keep_going=True) == ["diffA", "diffC"]
        faults.clear()  # forked workers must not inherit the serial run's fail counters
        assert write_report(pool_out, ids=ids, keep_going=True, workers=2) == [
            "diffA",
            "diffC",
        ]
        assert normalized_manifest(serial_out / "FAILURES.json") == normalized_manifest(
            pool_out / "FAILURES.json"
        )
        assert (serial_out / "INDEX.tsv").read_bytes() == (
            pool_out / "INDEX.tsv"
        ).read_bytes()


# --- fault injection in workers (REPRO_FAULTS) --------------------------


@dataclass(frozen=True)
class _TouchRun:
    """Picklable unit body: append one line per execution (cross-process
    execution counter), then return the unit id."""

    marker_dir: str
    unit_id: str

    def __call__(self):
        with open(Path(self.marker_dir) / self.unit_id, "a") as handle:
            handle.write("ran\n")
        return self.unit_id


def touch_unit(marker_dir, unit_id):
    return RunUnit(
        unit_id=unit_id,
        payload={"id": unit_id},
        run=_TouchRun(str(marker_dir), unit_id),
    )


def executions(marker_dir, unit_id):
    path = Path(marker_dir) / unit_id
    return len(path.read_text().splitlines()) if path.exists() else 0


class TestPoolFaults:
    def test_injected_fault_retried_in_worker(self, monkeypatch):
        configs = small_design_space()[:3]
        victim = f"0001:{configs[1].label}"
        monkeypatch.setenv(faults.ENV_VAR, f"fail={victim}:2")
        result = run_sweep("espresso", configs, scale=SCALE, retries=2, workers=2)
        outcome = result.outcomes[1]
        assert outcome.status == "ok"
        assert outcome.attempts == 3

    def test_worker_timeout_structured_record(self, monkeypatch, tmp_path):
        configs = small_design_space()[:3]
        victim = f"0000:{configs[0].label}"
        monkeypatch.setenv(faults.ENV_VAR, f"delay={victim}:5.0")
        result = run_sweep(
            "espresso",
            configs,
            scale=SCALE,
            keep_going=True,
            timeout_s=0.5,
            workers=2,
            journal_path=tmp_path / "j.jsonl",
        )
        slow = result.outcomes[0]
        assert slow.status == "failed"
        assert slow.error["type"] == "UnitTimeoutError"
        assert slow.attempts == 1  # timeouts are never retried
        assert slow.elapsed_s < 5.0  # pre-emptive abort, not a full sleep
        assert all(o.status == "ok" for o in result.outcomes[1:])
        entry = json.loads(
            (tmp_path / "j.jsonl").read_text().splitlines()[1]
        )
        assert entry["unit"] == victim and entry["status"] == "failed"

    def test_error_record_matches_serial_engine(self, monkeypatch):
        configs = small_design_space()[:3]
        victim = f"0002:{configs[2].label}"
        monkeypatch.setenv(faults.ENV_VAR, f"fail={victim}:99")
        serial = run_sweep("espresso", configs, scale=SCALE, keep_going=True)
        faults.clear()  # forked workers must not inherit the serial run's fail counters
        parallel = run_sweep(
            "espresso", configs, scale=SCALE, keep_going=True, workers=2
        )
        s_rec = dict(serial.failed[0].error)
        p_rec = dict(parallel.failed[0].error)
        s_rec.pop("elapsed_s"), p_rec.pop("elapsed_s")
        assert s_rec == p_rec

    def test_failure_without_keep_going_raises_original(self, monkeypatch):
        configs = small_design_space()[:3]
        monkeypatch.setenv(faults.ENV_VAR, f"fail=0000:{configs[0].label}:99")
        result = run_sweep("espresso", configs, scale=SCALE, workers=2)
        with pytest.raises(faults.InjectedFault):
            result.raise_first_failure()


@fork_only
class TestPoolKillAndResume:
    def test_crash_propagates_and_resume_never_reexecutes(
        self, tmp_path, monkeypatch
    ):
        """An injected worker crash kills the run (journal intact); the
        resumed run re-executes only what was never journalled."""
        journal = tmp_path / "j.jsonl"
        markers = tmp_path / "markers"
        markers.mkdir()
        ids = ["a", "b", "c", "d"]
        units = lambda: [touch_unit(markers, uid) for uid in ids]  # noqa: E731

        monkeypatch.setenv(faults.ENV_VAR, "crash=c")
        with pytest.raises(faults.InjectedCrash):
            PoolRunner(journal=RunJournal.open(journal), workers=1).run(units())
        # The crash fires before c runs; a and b finished and were
        # journalled on arrival.  (d may or may not have been prefetched
        # into the worker's queue before the run died — like a real
        # kill, in-flight work that never reported is simply lost.)
        assert executions(markers, "a") == 1
        assert executions(markers, "b") == 1
        assert executions(markers, "c") == 0
        journalled = {
            json.loads(line)["unit"]
            for line in journal.read_text().splitlines()[1:]
        }
        assert journalled == {"a", "b"}

        monkeypatch.delenv(faults.ENV_VAR)
        resumed = PoolRunner(
            journal=RunJournal.open(journal, resume=True), workers=1
        ).run(units())
        assert [o.status for o in resumed.outcomes] == [
            "skipped",
            "skipped",
            "ok",
            "ok",
        ]
        # The journalled units ran exactly once across both runs.
        assert executions(markers, "a") == 1
        assert executions(markers, "b") == 1
        assert executions(markers, "c") == 1

    def test_journalled_units_survive_multiworker_crash(
        self, tmp_path, monkeypatch
    ):
        journal = tmp_path / "j.jsonl"
        markers = tmp_path / "markers"
        markers.mkdir()
        ids = [f"u{i}" for i in range(8)]
        units = lambda: [touch_unit(markers, uid) for uid in ids]  # noqa: E731

        monkeypatch.setenv(faults.ENV_VAR, "crash=u5")
        with pytest.raises(faults.InjectedCrash):
            PoolRunner(journal=RunJournal.open(journal), workers=3).run(units())
        journalled = {
            json.loads(line)["unit"]
            for line in journal.read_text().splitlines()[1:]
        }

        monkeypatch.delenv(faults.ENV_VAR)
        PoolRunner(journal=RunJournal.open(journal, resume=True), workers=3).run(
            units()
        )
        # Whatever made it to the journal before the crash must not have
        # been executed a second time by the resumed run.
        for uid in journalled:
            assert executions(markers, uid) == 1
        assert all(executions(markers, uid) >= 1 for uid in ids)


@fork_only
class TestPoolRunnerSemantics:
    def test_outcomes_in_unit_order_not_arrival_order(self, tmp_path, monkeypatch):
        markers = tmp_path / "markers"
        markers.mkdir()
        ids = [f"u{i}" for i in range(6)]
        # Delay the first-submitted unit so it completes last.
        monkeypatch.setenv(faults.ENV_VAR, "delay=u0:0.3")
        result = PoolRunner(workers=3).run([touch_unit(markers, uid) for uid in ids])
        assert [o.unit_id for o in result.outcomes] == ids

    def test_keep_going_false_truncates_like_serial(self, tmp_path, monkeypatch):
        markers = tmp_path / "markers"
        markers.mkdir()
        monkeypatch.setenv(faults.ENV_VAR, "fail=b:99")
        result = PoolRunner(workers=1).run(
            [touch_unit(markers, uid) for uid in "abc"]
        )
        # c is cancelled (or, if already prefetched by the worker, its
        # outcome dropped): the result truncates at the failure exactly
        # like the serial engine's.
        assert [o.status for o in result.outcomes] == ["ok", "failed"]
        assert result.failed[0].error["type"] == "InjectedFault"

    def test_duplicate_unit_ids_rejected(self, tmp_path):
        units = [touch_unit(tmp_path, "dup"), touch_unit(tmp_path, "dup")]
        with pytest.raises(RunnerError, match="duplicate"):
            PoolRunner(workers=1).run(units)

    def test_bad_submit_order_rejected(self, tmp_path):
        units = [touch_unit(tmp_path, "a"), touch_unit(tmp_path, "b")]
        with pytest.raises(RunnerError, match="permutation"):
            PoolRunner(workers=1, submit_order=[0, 0]).run(units)

    def test_zero_workers_rejected(self):
        with pytest.raises(RunnerError):
            PoolRunner(workers=0)
