"""Shared figure-building helpers (`repro.study.experiments.common`)."""

import pytest

from conftest import TINY
from repro.cache.hierarchy import Policy
from repro.study.experiments.common import (
    baseline_config,
    cloud_series,
    envelope_series,
    figure_series,
    single_level_series,
    sweep_workload,
)
from repro.units import kb


class TestBaselineConfig:
    def test_defaults_match_section4(self):
        config = baseline_config()
        assert config.l2_associativity == 4
        assert config.off_chip_ns == 50.0
        assert config.policy is Policy.CONVENTIONAL
        assert config.l1_ports == 1

    def test_overrides(self):
        config = baseline_config(off_chip_ns=200.0, l2_associativity=1)
        assert config.off_chip_ns == 200.0
        assert config.l2_associativity == 1


class TestSeriesBuilders:
    @pytest.fixture(scope="class")
    def perfs(self):
        return sweep_workload("espresso", baseline_config(), TINY)

    def test_sweep_covers_design_space(self, perfs):
        assert len(perfs) == 45

    def test_cloud_ordered_by_area(self, perfs):
        series = cloud_series("cloud", perfs)
        areas = series.column("area_rbe")
        assert areas == sorted(areas)
        assert len(series.rows) == 45

    def test_envelope_is_subset_of_cloud(self, perfs):
        cloud = {(r[0], r[2]) for r in cloud_series("c", perfs).rows}
        for row in envelope_series("e", perfs).rows:
            assert (row[0], row[2]) in cloud

    def test_single_level_series_only_singles(self, perfs):
        series = single_level_series("s", perfs)
        for label, _, _ in series.rows:
            assert label.endswith(":0")

    def test_figure_series_names_and_order(self):
        series = figure_series(
            "espresso", baseline_config(), TINY, include_cloud=True
        )
        names = [s.name for s in series]
        assert names == [
            "espresso all configs",
            "espresso best 2-level config",
            "espresso 1-level only",
        ]

    def test_figure_series_without_cloud(self):
        series = figure_series("espresso", baseline_config(), TINY)
        assert len(series) == 2
