"""SystemConfig validation, labels, derived variants."""

import pytest

from repro.cache.hierarchy import Policy
from repro.core.config import SystemConfig
from repro.errors import ConfigurationError, GeometryError
from repro.units import kb


class TestValidation:
    def test_minimal_single_level(self):
        config = SystemConfig(l1_bytes=kb(8))
        assert not config.has_l2

    def test_two_level(self):
        config = SystemConfig(l1_bytes=kb(8), l2_bytes=kb(64))
        assert config.has_l2

    def test_bad_l1_size(self):
        with pytest.raises(GeometryError):
            SystemConfig(l1_bytes=3000)

    def test_bad_l2_shape(self):
        with pytest.raises(GeometryError):
            SystemConfig(l1_bytes=kb(1), l2_bytes=48, l2_associativity=4)

    def test_bad_off_chip(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(l1_bytes=kb(1), off_chip_ns=0)

    def test_bad_ports(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(l1_bytes=kb(1), l1_ports=0)

    def test_bad_issue_width(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(l1_bytes=kb(1), issue_width=0)

    def test_exclusive_template_without_l2_is_allowed(self):
        config = SystemConfig(l1_bytes=kb(1), policy=Policy.EXCLUSIVE)
        assert not config.has_l2


class TestLabelsAndVariants:
    def test_paper_labels(self):
        assert SystemConfig(l1_bytes=kb(32), l2_bytes=kb(256)).label == "32:256"
        assert SystemConfig(l1_bytes=kb(1)).label == "1:0"

    def test_describe_mentions_structure(self):
        text = SystemConfig(
            l1_bytes=kb(8), l2_bytes=kb(64), l2_associativity=4
        ).describe()
        assert "8K" in text and "64K" in text and "4-way" in text

    def test_describe_direct_mapped_l2(self):
        text = SystemConfig(
            l1_bytes=kb(8), l2_bytes=kb(64), l2_associativity=1
        ).describe()
        assert "DM" in text

    def test_single_level_strips_l2(self):
        config = SystemConfig(
            l1_bytes=kb(8), l2_bytes=kb(64), policy=Policy.EXCLUSIVE
        )
        single = config.single_level()
        assert not single.has_l2
        assert single.l1_bytes == config.l1_bytes
        assert single.policy is Policy.CONVENTIONAL

    def test_dual_ported_variant(self):
        dual = SystemConfig(l1_bytes=kb(8)).dual_ported()
        assert dual.l1_ports == 2
        assert dual.issue_width == 2

    def test_config_is_hashable_and_frozen(self):
        config = SystemConfig(l1_bytes=kb(8))
        assert hash(config)
        with pytest.raises(AttributeError):
            config.l1_bytes = kb(16)  # type: ignore[misc]
