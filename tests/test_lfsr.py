"""LFSR pseudo-random replacement source."""

import pytest

from repro.errors import ConfigurationError
from repro.lfsr import Lfsr16


class TestLfsr16:
    def test_rejects_zero_seed(self):
        with pytest.raises(ConfigurationError):
            Lfsr16(0)

    def test_rejects_zero_seed_modulo_16_bits(self):
        with pytest.raises(ConfigurationError):
            Lfsr16(0x10000)

    def test_deterministic(self):
        a, b = Lfsr16(123), Lfsr16(123)
        assert [a.step() for _ in range(100)] == [b.step() for _ in range(100)]

    def test_never_reaches_zero(self):
        lfsr = Lfsr16(1)
        for _ in range(5000):
            assert lfsr.step() != 0

    def test_maximal_period(self):
        lfsr = Lfsr16(0xACE1)
        start = lfsr.state
        count = 0
        while True:
            lfsr.step()
            count += 1
            if lfsr.state == start:
                break
        assert count == Lfsr16.period() == 2**16 - 1

    def test_next_way_in_range(self):
        lfsr = Lfsr16()
        for assoc in (1, 2, 3, 4, 8):
            ways = {lfsr.next_way(assoc) for _ in range(200)}
            assert ways <= set(range(assoc))
            if assoc > 1:
                assert len(ways) > 1  # actually varies

    def test_next_way_uniform_for_pow2(self):
        lfsr = Lfsr16()
        counts = [0, 0, 0, 0]
        for _ in range(40000):
            counts[lfsr.next_way(4)] += 1
        for c in counts:
            assert abs(c - 10000) < 600

    def test_next_way_rejects_bad_assoc(self):
        with pytest.raises(ConfigurationError):
            Lfsr16().next_way(0)

    def test_associativity_one_does_not_advance_state(self):
        lfsr = Lfsr16()
        before = lfsr.state
        assert lfsr.next_way(1) == 0
        assert lfsr.state == before
