"""Set-associative first-level caches — testing Hill's claim (ref [3]).

§4: "direct-mapped caches usually provide the best performance for
first-level caches [3]" — Hill's *A Case for Direct-Mapped Caches*.
The argument is exactly the one this library can quantify: higher
associativity lowers the miss rate but raises the access/cycle time,
and since the L1 cycle *is* the machine cycle, every instruction pays.

Associative L1s break the vectorised decomposition (replacement state
matters), so this module carries its own straightforward whole-trace
simulator.  Use modest trace scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..cache.geometry import DEFAULT_LINE_SIZE, CacheGeometry
from ..cache.hierarchy import DEFAULT_WARMUP_FRACTION
from ..cache.l2 import SetAssociativeCache
from ..cache.replacement import LruReplacement
from ..errors import ConfigurationError
from ..timing.optimal import optimal_timing
from ..traces.address import Trace
from ..traces.store import get_trace
from ..units import round_up_to_multiple

__all__ = ["AssociativeL1Result", "evaluate_associative_l1"]


@dataclass(frozen=True)
class AssociativeL1Result:
    """Single-level machine with ``associativity``-way LRU L1 caches."""

    workload: str
    l1_bytes: int
    associativity: int
    n_instructions: int
    n_data_refs: int
    l1_misses: int
    l1_cycle_ns: float
    tpi_ns: float

    @property
    def n_refs(self) -> int:
        return self.n_instructions + self.n_data_refs

    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.n_refs


def evaluate_associative_l1(
    workload: Union[str, Trace],
    l1_bytes: int,
    associativity: int = 1,
    off_chip_ns: float = 50.0,
    line_size: int = DEFAULT_LINE_SIZE,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    scale: Optional[float] = None,
) -> AssociativeL1Result:
    """Miss rate *and* TPI of a single-level machine with A-way L1s.

    LRU replacement (the favourable case for associativity — random
    would only weaken it); the machine cycle is the A-way L1's cycle
    time from the timing model, so Hill's tradeoff is priced in.
    """
    if associativity < 1:
        raise ConfigurationError("associativity must be >= 1")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigurationError("warmup_fraction must be in [0, 1)")
    trace = get_trace(workload, scale) if isinstance(workload, str) else workload

    geometry = CacheGeometry(l1_bytes, line_size=line_size, associativity=associativity)

    def make_cache() -> SetAssociativeCache:
        return SetAssociativeCache(
            geometry, LruReplacement(associativity, geometry.n_sets)
        )

    icache, dcache = make_cache(), make_cache()
    warmup_time = int(trace.n_instructions * warmup_fraction)
    misses = 0
    counted_data = 0

    i_lines = trace.i_lines(line_size).tolist()
    d_lines = trace.d_lines(line_size).tolist()
    d_times = trace.d_times.tolist()
    d_cursor = 0
    n_data = len(d_lines)
    for cycle, line in enumerate(i_lines):
        counted = cycle >= warmup_time
        if not icache.lookup(line):
            icache.fill(line)
            misses += counted
        while d_cursor < n_data and d_times[d_cursor] == cycle:
            d_line = d_lines[d_cursor]
            if not dcache.lookup(d_line):
                dcache.fill(d_line)
                misses += counted
            counted_data += counted
            d_cursor += 1

    timing = optimal_timing(l1_bytes, associativity, line_size)
    cycle_ns = timing.cycle_ns
    off_chip = round_up_to_multiple(off_chip_ns, cycle_ns)
    n_instructions = trace.n_instructions - warmup_time
    total = n_instructions * cycle_ns + misses * (off_chip + cycle_ns)
    return AssociativeL1Result(
        workload=trace.name,
        l1_bytes=l1_bytes,
        associativity=associativity,
        n_instructions=n_instructions,
        n_data_refs=counted_data,
        l1_misses=misses,
        l1_cycle_ns=cycle_ns,
        tpi_ns=total / n_instructions,
    )
