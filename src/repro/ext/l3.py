"""An off-chip (board-level) third cache level behind the chip.

The paper collapses everything beyond the chip into a constant service
time: 50 ns "corresponding to systems with ... a board-level cache" and
200 ns without one.  Its §8 closes by noting that inclusion between the
on-chip levels' *sum* and an off-chip third level can still be
maintained.  This extension models that board cache explicitly: on-chip
misses probe a large off-chip SRAM and only its misses pay the DRAM
latency, replacing the constant with a workload-dependent mixture.

The L3 consumes the stream of off-chip fetches, which — for both
on-chip policies — is exactly the sequence of L2-missing lines in
program order, replayed here with the same replacement discipline as
the core simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..cache.directmap import NO_VICTIM
from ..cache.geometry import DEFAULT_LINE_SIZE, CacheGeometry
from ..cache.hierarchy import (
    DEFAULT_WARMUP_FRACTION,
    Policy,
    l1_miss_stream,
)
from ..cache.l2 import SetAssociativeCache
from ..core.config import SystemConfig
from ..core.tpi import system_timings
from ..errors import ConfigurationError
from ..traces.address import Trace
from ..traces.store import get_trace
from ..units import round_up_to_multiple

__all__ = ["BoardCacheResult", "evaluate_with_board_cache"]


@dataclass(frozen=True)
class BoardCacheResult:
    """TPI with an explicit board-level cache behind the chip."""

    config: SystemConfig
    workload: str
    l3_bytes: int
    l3_hits: int
    l3_misses: int
    board_hit_ns: float
    dram_ns: float
    tpi_ns: float
    constant_model_tpi_ns: float

    @property
    def l3_local_miss_rate(self) -> float:
        total = self.l3_hits + self.l3_misses
        return self.l3_misses / total if total else 0.0

    @property
    def effective_off_chip_ns(self) -> float:
        """Average off-chip service time the L3 mixture produces."""
        total = self.l3_hits + self.l3_misses
        if not total:
            return self.board_hit_ns
        return (
            self.l3_hits * self.board_hit_ns + self.l3_misses * self.dram_ns
        ) / total


def evaluate_with_board_cache(
    config: SystemConfig,
    workload: Union[str, Trace],
    l3_bytes: int = 1 << 20,
    l3_associativity: int = 1,
    board_hit_ns: float = 50.0,
    dram_ns: float = 200.0,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    scale: Optional[float] = None,
) -> BoardCacheResult:
    """TPI with per-fetch board-cache hit/miss latencies.

    ``config.off_chip_ns`` is ignored; every off-chip fetch pays
    ``board_hit_ns`` or ``dram_ns`` (both rounded up to L1 cycles)
    according to an explicit L3 simulation.  The constant-latency TPI
    at ``board_hit_ns`` is also reported for comparison — the paper's
    50 ns abstraction is exactly the limit of a never-missing L3.
    """
    if l3_bytes <= 0:
        raise ConfigurationError("the board cache needs a positive size")
    if dram_ns < board_hit_ns:
        raise ConfigurationError("DRAM cannot be faster than the board cache")
    trace = get_trace(workload, scale) if isinstance(workload, str) else workload

    # Replay the hierarchy, collecting the off-chip fetch stream.
    stream = l1_miss_stream(trace, config.l1_bytes, config.line_size)
    warmup_time = int(trace.n_instructions * warmup_fraction)
    l3 = SetAssociativeCache(
        CacheGeometry(
            l3_bytes, line_size=config.line_size, associativity=l3_associativity
        )
    )

    l1_misses = 0
    l2_hits = 0
    l3_hits = 0
    l3_misses = 0

    def offchip_fetch(line: int, counted: int) -> None:
        nonlocal l3_hits, l3_misses
        if l3.lookup(line):
            l3_hits += counted
        else:
            l3_misses += counted
            l3.fill(line)

    lines = stream.lines.tolist()
    victims = stream.victims.tolist()
    counted_mask = (stream.times >= warmup_time).tolist()

    if config.has_l2:
        l2 = SetAssociativeCache(
            CacheGeometry(
                config.l2_bytes,
                line_size=config.line_size,
                associativity=config.l2_associativity,
            )
        )
        exclusive = config.policy is Policy.EXCLUSIVE
        for line, victim, counted in zip(lines, victims, counted_mask):
            l1_misses += counted
            if l2.lookup(line):
                l2_hits += counted
                if exclusive:
                    l2.invalidate(line)
            else:
                offchip_fetch(line, counted)
                if not exclusive:
                    l2.fill(line)
            if exclusive and victim != NO_VICTIM:
                l2.fill(victim)
    else:
        for line, counted in zip(lines, counted_mask):
            l1_misses += counted
            offchip_fetch(line, counted)

    timings = system_timings(config)
    hit_ns = round_up_to_multiple(board_hit_ns, timings.l1_cycle_ns)
    miss_ns = round_up_to_multiple(dram_ns, timings.l1_cycle_ns)
    n_instructions = trace.n_instructions - warmup_time

    base = n_instructions * timings.l1_cycle_ns / config.issue_width
    transfers = timings.transfers_per_line
    if config.has_l2:
        hit_penalty = transfers * timings.l2_cycle_ns + timings.l1_cycle_ns
        probe = (transfers + 1) * timings.l2_cycle_ns + timings.l1_cycle_ns
        total = (
            base
            + l2_hits * hit_penalty
            + l3_hits * (hit_ns + probe)
            + l3_misses * (miss_ns + probe)
        )
        constant = base + l2_hits * hit_penalty + (l3_hits + l3_misses) * (
            hit_ns + probe
        )
    else:
        total = (
            base
            + l3_hits * (hit_ns + timings.l1_cycle_ns)
            + l3_misses * (miss_ns + timings.l1_cycle_ns)
        )
        constant = base + (l3_hits + l3_misses) * (hit_ns + timings.l1_cycle_ns)

    return BoardCacheResult(
        config=config,
        workload=trace.name,
        l3_bytes=l3_bytes,
        l3_hits=l3_hits,
        l3_misses=l3_misses,
        board_hit_ns=hit_ns,
        dram_ns=miss_ns,
        tpi_ns=total / n_instructions,
        constant_model_tpi_ns=constant / n_instructions,
    )
