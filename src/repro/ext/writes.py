"""Write-back traffic accounting — quantifying what §2.2 abstracts away.

The paper models writes as reads (write-allocate, fetch-on-write), so
its miss counts are exact for write-back caches — but the *traffic* of
dirty victims is invisible.  This extension measures it and prices it
into TPI:

* a dirty L1 victim must be written down to the L2 (or off-chip when
  there is none, or when a non-inclusive L2 does not hold the line);
* an L2 eviction of a dirty line must be written off-chip.

Crucially, with write-allocate the cache *contents* are identical to
the paper's model, so the dirty accounting is purely observational: the
L1 pass reuses the vectorised dirty-victim computation and the L2 pass
replays the same miss stream with dirty bookkeeping bolted on.

Costs are conservative: write-back hardware buffers these transfers, so
each event is charged its transfer time scaled by
``(1 - write_buffer_efficiency)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Union

import numpy as np

from ..cache.directmap import NO_VICTIM, dirty_victim_mask
from ..cache.geometry import CacheGeometry
from ..cache.hierarchy import DEFAULT_WARMUP_FRACTION, Policy, l1_miss_stream
from ..cache.l2 import SetAssociativeCache
from ..core.config import SystemConfig
from ..core.evaluate import _cached_stats, system_area_rbe
from ..core.tpi import system_timings
from ..errors import ConfigurationError
from ..traces.address import Trace
from ..traces.store import get_trace

__all__ = ["WriteTraffic", "count_write_traffic", "evaluate_with_writes"]


@dataclass(frozen=True)
class WriteTraffic:
    """Write-back event counts (post-warmup window)."""

    #: Dirty L1 victims handed to the level below.
    l1_dirty_victims: int
    #: Of those, victims a non-inclusive L2 did not hold (conventional
    #: policy): they are forwarded straight off-chip.
    l1_writebacks_offchip: int
    #: Dirty lines the L2 evicted off-chip.
    l2_dirty_evictions: int
    #: Counted data references/stores for rate computation.
    n_data_refs: int
    n_stores: int

    @property
    def writeback_rate_per_store(self) -> float:
        """Dirty L1 victims per store (bounded by 1 for 16 B lines)."""
        if self.n_stores == 0:
            return 0.0
        return self.l1_dirty_victims / self.n_stores

    @property
    def offchip_writes(self) -> int:
        """Total write transfers leaving the chip."""
        return self.l1_writebacks_offchip + self.l2_dirty_evictions


def _l1_dirty_flags(trace: Trace, l1_bytes: int, line_size: int) -> np.ndarray:
    """Dirty flag per merged L1 miss event (instruction misses: False)."""
    from ..cache.directmap import direct_mapped_filter

    stream = l1_miss_stream(trace, l1_bytes, line_size)
    geometry = CacheGeometry(l1_bytes, line_size=line_size, associativity=1)
    d_lines = trace.d_lines(line_size)
    d_dirty = dirty_victim_mask(d_lines, trace.d_is_store, geometry.n_sets)
    d_miss_mask = direct_mapped_filter(d_lines, geometry.n_sets).miss_mask
    # ``d_dirty`` is aligned with every data reference; the D-cache's
    # misses are exactly the data events that entered the merged stream,
    # in the same order.  Instruction victims are never dirty (code is
    # read-only on these machines).
    dirty = np.zeros(len(stream), dtype=bool)
    data_positions = np.nonzero(~stream.is_instruction)[0]
    dirty[data_positions] = d_dirty[np.nonzero(d_miss_mask)[0]]
    return dirty


def count_write_traffic(
    workload: Union[str, Trace],
    l1_bytes: int,
    l2_bytes: int = 0,
    l2_associativity: int = 4,
    policy: Policy = Policy.CONVENTIONAL,
    line_size: int = 16,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    scale: Optional[float] = None,
) -> WriteTraffic:
    """Count write-back events for one configuration.

    The replay mirrors :func:`repro.cache.hierarchy.simulate_hierarchy`
    exactly (same policies, same LFSR stream), adding dirty bits:

    * conventional — a dirty L1 victim updates the L2 copy when present
      (marking it dirty) and otherwise goes off-chip; L2 fills evicting
      a dirty line write it off-chip;
    * exclusive — every L1 victim is inserted into the L2 carrying its
      dirty bit; a line promoted to the L1 by a swap carries its dirty
      state back up (it returns dirty even without further stores).
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigurationError("warmup_fraction must be in [0, 1)")
    trace = get_trace(workload, scale) if isinstance(workload, str) else workload
    stream = l1_miss_stream(trace, l1_bytes, line_size)
    dirty_flags = _l1_dirty_flags(trace, l1_bytes, line_size)
    warmup_time = int(trace.n_instructions * warmup_fraction)
    counted_mask = stream.times >= warmup_time

    n_data = int(
        len(trace.d_times) - np.searchsorted(trace.d_times, warmup_time, side="left")
    )
    d_counted = trace.d_times >= warmup_time
    n_stores = int((trace.d_is_store & d_counted).sum())

    l1_dirty_victims = 0
    l1_writebacks_offchip = 0
    l2_dirty_evictions = 0

    if l2_bytes == 0:
        # Single level: every dirty victim goes straight off-chip.
        l1_dirty_victims = int((dirty_flags & counted_mask).sum())
        return WriteTraffic(
            l1_dirty_victims=l1_dirty_victims,
            l1_writebacks_offchip=l1_dirty_victims,
            l2_dirty_evictions=0,
            n_data_refs=n_data,
            n_stores=n_stores,
        )

    geometry = CacheGeometry(l2_bytes, line_size=line_size, associativity=l2_associativity)
    cache = SetAssociativeCache(geometry)
    l2_dirty: Set[int] = set()
    carried_dirty: Set[int] = set()

    lines = stream.lines.tolist()
    victims = stream.victims.tolist()
    counted_list = counted_mask.tolist()
    dirty_list = dirty_flags.tolist()

    def evict_to_offchip(evicted: "int | None", counted: int) -> None:
        nonlocal l2_dirty_evictions
        if evicted is not None and evicted in l2_dirty:
            l2_dirty.discard(evicted)
            l2_dirty_evictions += counted

    if policy is Policy.CONVENTIONAL:
        for line, victim, counted, dirty in zip(
            lines, victims, counted_list, dirty_list
        ):
            if not cache.lookup(line):
                evict_to_offchip(cache.fill(line), counted)
            if victim != NO_VICTIM and dirty:
                l1_dirty_victims += counted
                if cache.contains(victim):
                    l2_dirty.add(victim)
                else:
                    l1_writebacks_offchip += counted
    else:
        for line, victim, counted, dirty in zip(
            lines, victims, counted_list, dirty_list
        ):
            if cache.lookup(line):
                cache.invalidate(line)
                if line in l2_dirty:
                    # The promoted line is dirty in the L1 from now on.
                    l2_dirty.discard(line)
                    carried_dirty.add(line)
            if victim != NO_VICTIM:
                victim_dirty = dirty or victim in carried_dirty
                carried_dirty.discard(victim)
                if victim_dirty:
                    l1_dirty_victims += counted
                evict_to_offchip(cache.fill(victim), counted)
                if victim_dirty:
                    l2_dirty.add(victim)
                else:
                    l2_dirty.discard(victim)

    return WriteTraffic(
        l1_dirty_victims=l1_dirty_victims,
        l1_writebacks_offchip=l1_writebacks_offchip,
        l2_dirty_evictions=l2_dirty_evictions,
        n_data_refs=n_data,
        n_stores=n_stores,
    )


@dataclass(frozen=True)
class WritebackTpi:
    """Baseline TPI plus write-back stall terms."""

    baseline_tpi_ns: float
    l1_writeback_ns: float
    offchip_writeback_ns: float
    n_instructions: int
    traffic: WriteTraffic
    area_rbe: float

    @property
    def tpi_ns(self) -> float:
        return (
            self.baseline_tpi_ns
            + (self.l1_writeback_ns + self.offchip_writeback_ns)
            / self.n_instructions
        )

    @property
    def writeback_overhead(self) -> float:
        """Relative TPI increase from write-back traffic."""
        return self.tpi_ns / self.baseline_tpi_ns - 1.0


def evaluate_with_writes(
    config: SystemConfig,
    workload: Union[str, Trace],
    write_buffer_efficiency: float = 0.8,
    scale: Optional[float] = None,
) -> WritebackTpi:
    """Baseline TPI plus conservative write-back costs.

    Each dirty L1 victim costs two L2 cycles (two 8-byte transfers) and
    each off-chip write costs the off-chip service time, both scaled by
    ``1 - write_buffer_efficiency`` (a write buffer hides most of it).
    """
    if not 0.0 <= write_buffer_efficiency <= 1.0:
        raise ConfigurationError("write_buffer_efficiency must be in [0, 1]")
    trace = get_trace(workload, scale) if isinstance(workload, str) else workload
    stats = _cached_stats(
        trace,
        config.l1_bytes,
        config.l2_bytes,
        config.l2_associativity,
        config.policy if config.has_l2 else Policy.CONVENTIONAL,
        config.line_size,
    )
    traffic = count_write_traffic(
        trace,
        config.l1_bytes,
        config.l2_bytes,
        config.l2_associativity,
        config.policy if config.has_l2 else Policy.CONVENTIONAL,
        config.line_size,
    )
    timings = system_timings(config)
    from ..core.tpi import compute_tpi

    baseline = compute_tpi(config, stats)
    exposed = 1.0 - write_buffer_efficiency
    to_l2 = traffic.l1_dirty_victims - traffic.l1_writebacks_offchip
    l1_writeback_ns = to_l2 * 2.0 * timings.l2_cycle_ns * exposed
    offchip_writeback_ns = traffic.offchip_writes * timings.off_chip_ns * exposed
    return WritebackTpi(
        baseline_tpi_ns=baseline.tpi_ns,
        l1_writeback_ns=l1_writeback_ns,
        offchip_writeback_ns=offchip_writeback_ns,
        n_instructions=stats.n_instructions,
        traffic=traffic,
        area_rbe=system_area_rbe(config),
    )
