"""Multicycle (pipelined) first-level caches — §10's first conjecture.

The baseline study assumes the processor cycle time *is* the L1 cycle
time, so growing the L1 slows every instruction.  Real designs pipeline
large L1s instead: the clock is set by the datapath and an L1 access
takes ``ceil(access / clock)`` cycles.  The paper conjectures this
"would reduce the effectiveness of two-level on-chip caching in
baseline configurations since the longer latency of larger first-level
cache accesses would not set the cycle time".

Model
-----
* The clock is ``datapath_cycle_ns`` (independent of cache sizes).
* An L1 access takes ``l1_cycles = ceil(l1_access / clock)`` cycles.
  Cycles beyond the first stall dependent instructions with probability
  ``load_sensitivity`` per data reference (1.0 = every load's extra
  latency is exposed; numeric codes that tolerate latency sit nearer
  0); instruction fetch is assumed fully pipelined.
* Miss penalties follow §2.5 with the L2 cycle and off-chip time
  quantised to the datapath clock.

The conjecture is validated in ``tests/test_ext_multicycle.py`` and the
ablation benchmark ``benchmarks/bench_ablation_multicycle.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

from ..cache.hierarchy import Policy
from ..core.config import SystemConfig
from ..core.evaluate import _cached_stats, system_area_rbe
from ..errors import ConfigurationError
from ..timing.optimal import optimal_timing
from ..traces.address import Trace
from ..traces.store import get_trace
from ..units import round_up_to_multiple

__all__ = ["MulticycleResult", "evaluate_multicycle"]

#: A fast 0.5 µm datapath clock: roughly what the timing model gives a
#: small (≈2 KB) cache, i.e. the cycle the paper's machine would have if
#: caches never slowed it.
DEFAULT_DATAPATH_CYCLE_NS = 1.8


@dataclass(frozen=True)
class MulticycleResult:
    """TPI under the multicycle-L1 model."""

    config: SystemConfig
    workload: str
    clock_ns: float
    l1_cycles: int
    load_stall_ns: float
    base_ns: float
    l2_hit_ns: float
    off_chip_ns: float
    n_instructions: int
    area_rbe: float

    @property
    def total_ns(self) -> float:
        return self.base_ns + self.load_stall_ns + self.l2_hit_ns + self.off_chip_ns

    @property
    def tpi_ns(self) -> float:
        return self.total_ns / self.n_instructions

    @property
    def label(self) -> str:
        return self.config.label


def evaluate_multicycle(
    config: SystemConfig,
    workload: Union[str, Trace],
    datapath_cycle_ns: float = DEFAULT_DATAPATH_CYCLE_NS,
    load_sensitivity: float = 0.5,
    scale: Optional[float] = None,
) -> MulticycleResult:
    """Evaluate ``config`` with a fixed datapath clock and pipelined L1.

    Parameters
    ----------
    config:
        The cache system (``issue_width`` is honoured as in the base
        model).
    datapath_cycle_ns:
        The clock, now set by the datapath rather than the L1.
    load_sensitivity:
        Fraction of extra L1 latency cycles exposed as stalls per data
        reference (0 = fully tolerated, 1 = fully exposed).
    """
    if datapath_cycle_ns <= 0:
        raise ConfigurationError("datapath_cycle_ns must be positive")
    if not 0.0 <= load_sensitivity <= 1.0:
        raise ConfigurationError("load_sensitivity must be in [0, 1]")

    trace = get_trace(workload, scale) if isinstance(workload, str) else workload
    stats = _cached_stats(
        trace,
        config.l1_bytes,
        config.l2_bytes,
        config.l2_associativity,
        config.policy if config.has_l2 else Policy.CONVENTIONAL,
        config.line_size,
    )

    clock = datapath_cycle_ns
    l1_access = optimal_timing(
        config.l1_bytes, 1, line_size=config.line_size, tech=config.tech
    ).access_ns
    l1_cycles = max(1, math.ceil(l1_access / clock - 1e-9))

    base = stats.n_instructions * clock / config.issue_width
    load_stall = (
        stats.n_data_refs * load_sensitivity * (l1_cycles - 1) * clock
    )

    if config.has_l2:
        l2_raw = optimal_timing(
            config.l2_bytes,
            config.l2_associativity,
            line_size=config.line_size,
            tech=config.tech,
        ).cycle_ns
        l2_cycle = round_up_to_multiple(l2_raw, clock)
        off_chip = round_up_to_multiple(config.off_chip_ns, clock)
        l2_hit_time = stats.l2_hits * (2.0 * l2_cycle + clock)
        off_chip_time = stats.l2_misses * (off_chip + 3.0 * l2_cycle + clock)
    else:
        off_chip = round_up_to_multiple(config.off_chip_ns, clock)
        l2_hit_time = 0.0
        off_chip_time = stats.l1_misses * (off_chip + clock)

    return MulticycleResult(
        config=config,
        workload=trace.name,
        clock_ns=clock,
        l1_cycles=l1_cycles,
        load_stall_ns=load_stall,
        base_ns=base,
        l2_hit_ns=l2_hit_time,
        off_chip_ns=off_chip_time,
        n_instructions=stats.n_instructions,
        area_rbe=system_area_rbe(config),
    )
