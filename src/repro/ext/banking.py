"""Banked vs dual-ported first-level caches (§6's opening remark).

§6: "A banked cache can also be used to support more than one load or
store per cycle; since banking requires more inputs and outputs to the
cache it also increases the area required for the cache (the tradeoffs
between banking and dual porting have been studied in [8])."

Model (after Sohi & Franklin [8]):

* a ``n_banks``-way interleaved cache costs less area than true dual
  porting (``bank_area_factor`` ≈ 1.3× vs 2.0× for two ports) but two
  simultaneous accesses conflict when they fall in the same bank, which
  happens with probability ``1/n_banks`` for independent accesses;
* a bank conflict serialises the pair, so the effective issue width is
  ``2 / (1 + p_conflict)`` instead of the dual-ported machine's 2.

The comparison point is the one the paper cares about: performance per
unit *area*.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

from ..area.model import optimal_cache_area
from ..cache.hierarchy import Policy
from ..core.config import SystemConfig
from ..core.evaluate import _cached_stats, system_area_rbe
from ..core.tpi import system_timings
from ..errors import ConfigurationError
from ..traces.address import Trace
from ..traces.store import get_trace
from ..units import is_pow2

__all__ = ["BankedResult", "evaluate_banked"]

#: Area of a banked array relative to a single-ported one: extra
#: decoders, crossbar and I/O per bank (Sohi & Franklin's ballpark).
DEFAULT_BANK_AREA_FACTOR = 1.3


@dataclass(frozen=True)
class BankedResult:
    """TPI and area of a banked dual-issue first level."""

    config: SystemConfig
    workload: str
    n_banks: int
    conflict_probability: float
    effective_issue: float
    tpi_ns: float
    area_rbe: float

    @property
    def label(self) -> str:
        return self.config.label


def evaluate_banked(
    config: SystemConfig,
    workload: Union[str, Trace],
    n_banks: int = 4,
    bank_area_factor: float = DEFAULT_BANK_AREA_FACTOR,
    scale: Optional[float] = None,
) -> BankedResult:
    """Evaluate ``config`` with banked (rather than multiported) L1s.

    The configuration's ``l1_ports``/``issue_width`` are overridden:
    banking targets two accesses per cycle like the dual-ported §6
    machine, shedding throughput only on bank conflicts.
    """
    if not is_pow2(n_banks) or n_banks < 2:
        raise ConfigurationError("n_banks must be a power of two >= 2")
    if bank_area_factor < 1.0:
        raise ConfigurationError("banking cannot shrink the array")
    trace = get_trace(workload, scale) if isinstance(workload, str) else workload

    base = replace(config, l1_ports=1, issue_width=1)
    stats = _cached_stats(
        trace,
        base.l1_bytes,
        base.l2_bytes,
        base.l2_associativity,
        base.policy if base.has_l2 else Policy.CONVENTIONAL,
        base.line_size,
    )
    timings = system_timings(base)

    conflict_probability = 1.0 / n_banks
    effective_issue = 2.0 / (1.0 + conflict_probability)

    total = stats.n_instructions * timings.l1_cycle_ns / effective_issue
    if base.has_l2:
        total += stats.l2_hits * timings.l2_hit_penalty_ns
        total += stats.l2_misses * timings.l2_miss_penalty_ns
    else:
        total += stats.l1_misses * timings.single_level_miss_penalty_ns

    # Area: the two L1 arrays grow by the banking factor; L2 unchanged.
    single_port_l1 = 2.0 * optimal_cache_area(
        base.l1_bytes, associativity=1, ports=1, line_size=base.line_size,
        tech=base.tech,
    ).total
    area = system_area_rbe(base) + single_port_l1 * (bank_area_factor - 1.0)

    return BankedResult(
        config=base,
        workload=trace.name,
        n_banks=n_banks,
        conflict_probability=conflict_probability,
        effective_issue=effective_issue,
        tpi_ns=total / stats.n_instructions,
        area_rbe=area,
    )
