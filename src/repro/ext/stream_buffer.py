"""Sequential-prefetch stream buffers (the other half of Jouppi 1990).

The paper's reference [4] introduced victim caches *and* stream
buffers.  A stream buffer watches the L1 miss stream: on a miss it
starts prefetching the successive lines into a small FIFO; a later miss
that matches the FIFO head is serviced from the buffer (and the
prefetcher runs ahead one more line) instead of going below.
Instruction fetch, with its long sequential runs, is the classic
beneficiary — which is why this model attaches buffers to the I-cache
miss stream and leaves data misses alone by default.

Like the victim cache, a stream buffer never changes L1 contents, so
the simulation replays the memoised miss stream.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Union

import numpy as np

from ..cache.hierarchy import DEFAULT_WARMUP_FRACTION, l1_miss_stream
from ..cache.geometry import DEFAULT_LINE_SIZE
from ..errors import ConfigurationError
from ..traces.address import Trace
from ..traces.store import get_trace

__all__ = ["StreamBufferStats", "simulate_stream_buffer"]


@dataclass(frozen=True)
class StreamBufferStats:
    """Counts for split DM L1s with stream buffers on the I-miss path."""

    n_instructions: int
    n_data_refs: int
    l1i_misses: int
    l1d_misses: int
    buffer_hits: int
    misses_below: int
    n_buffers: int
    buffer_depth: int

    @property
    def n_refs(self) -> int:
        return self.n_instructions + self.n_data_refs

    @property
    def l1_misses(self) -> int:
        return self.l1i_misses + self.l1d_misses

    @property
    def buffer_hit_rate(self) -> float:
        """Fraction of I-misses serviced by the stream buffers."""
        if self.l1i_misses == 0:
            return 0.0
        return self.buffer_hits / self.l1i_misses

    @property
    def miss_rate_below(self) -> float:
        """Misses per reference continuing below the buffers."""
        return self.misses_below / self.n_refs


class _StreamBuffer:
    """One FIFO of prefetched line addresses."""

    def __init__(self, depth: int) -> None:
        self.depth = depth
        self.fifo: Deque[int] = deque()

    def allocate(self, miss_line: int) -> None:
        """Restart the buffer prefetching the lines after ``miss_line``."""
        self.fifo.clear()
        for offset in range(1, self.depth + 1):
            self.fifo.append(miss_line + offset)

    def head_matches(self, line: int) -> bool:
        return bool(self.fifo) and self.fifo[0] == line

    def consume_and_advance(self) -> None:
        """Pop the head and prefetch one more line (steady streaming)."""
        head = self.fifo.popleft()
        self.fifo.append(head + self.depth)


def simulate_stream_buffer(
    workload: Union[str, Trace],
    l1_bytes: int,
    n_buffers: int = 4,
    buffer_depth: int = 4,
    line_size: int = DEFAULT_LINE_SIZE,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    scale: Optional[float] = None,
) -> StreamBufferStats:
    """Split DM L1s with ``n_buffers`` stream buffers on the I-miss path.

    Jouppi's policy: probe every buffer's FIFO head on an I-miss; a hit
    consumes the head (the rest of the FIFO shifts up and prefetch runs
    one line ahead); a miss reallocates the least-recently-allocated
    buffer to the new stream.  Data misses pass straight through.
    """
    if n_buffers < 1:
        raise ConfigurationError("n_buffers must be >= 1")
    if buffer_depth < 1:
        raise ConfigurationError("buffer_depth must be >= 1")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigurationError("warmup_fraction must be in [0, 1)")
    trace = get_trace(workload, scale) if isinstance(workload, str) else workload
    stream = l1_miss_stream(trace, l1_bytes, line_size)
    warmup_time = int(trace.n_instructions * warmup_fraction)

    buffers = [_StreamBuffer(buffer_depth) for _ in range(n_buffers)]
    allocation_order: Deque[int] = deque(range(n_buffers))

    buffer_hits = 0
    misses_below = 0
    counted_i = 0
    counted_d = 0
    for line, is_instruction, time in zip(
        stream.lines.tolist(),
        stream.is_instruction.tolist(),
        stream.times.tolist(),
    ):
        counted = time >= warmup_time
        if not is_instruction:
            counted_d += counted
            misses_below += counted
            continue
        counted_i += counted
        for index, buffer in enumerate(buffers):
            if buffer.head_matches(line):
                buffer.consume_and_advance()
                buffer_hits += counted
                # A consumed buffer is the most recently useful one.
                allocation_order.remove(index)
                allocation_order.append(index)
                break
        else:
            misses_below += counted
            victim_index = allocation_order.popleft()
            buffers[victim_index].allocate(line)
            allocation_order.append(victim_index)

    n_data = int(
        len(trace.d_times) - np.searchsorted(trace.d_times, warmup_time, side="left")
    )
    return StreamBufferStats(
        n_instructions=trace.n_instructions - warmup_time,
        n_data_refs=n_data,
        l1i_misses=counted_i,
        l1d_misses=counted_d,
        buffer_hits=buffer_hits,
        misses_below=misses_below,
        n_buffers=n_buffers,
        buffer_depth=buffer_depth,
    )
