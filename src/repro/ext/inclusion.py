"""Strict multi-level inclusion with back-invalidation (Baer & Wang).

The paper's baseline two-level policy is *non-inclusive*: the L2 never
forces lines out of the L1s, so after an L2 eviction a line can live in
an L1 only.  Strict inclusion — every L1-resident line is also L2
resident, maintained by back-invalidating the L1s whenever the L2
evicts — simplifies multiprocessor snooping (the paper cites Baer &
Wang [1] and notes §8 that inclusion can still be kept against an
*off-chip* third level).

Strict inclusion breaks the decomposition the fast simulator relies on
(L2 evictions now change L1 contents), so this module carries its own
straightforward whole-trace simulator.  It is intentionally slow and
meant for ablation studies at modest trace scales.
"""

from __future__ import annotations

from typing import Union

from ..cache.geometry import DEFAULT_LINE_SIZE, CacheGeometry
from ..cache.hierarchy import DEFAULT_WARMUP_FRACTION
from ..cache.l2 import SetAssociativeCache
from ..cache.results import HierarchyStats
from ..errors import ConfigurationError
from ..traces.address import Trace
from ..traces.store import get_trace

__all__ = ["simulate_strict_inclusion"]


class _InclusiveL1:
    """Direct-mapped L1 supporting back-invalidation."""

    def __init__(self, n_sets: int) -> None:
        self.n_sets = n_sets
        self.contents: dict = {}

    def access(self, line: int) -> bool:
        """Reference ``line``; returns True on miss (and fills)."""
        set_index = line % self.n_sets
        if self.contents.get(set_index) == line:
            return False
        self.contents[set_index] = line
        return True

    def back_invalidate(self, line: int) -> None:
        set_index = line % self.n_sets
        if self.contents.get(set_index) == line:
            del self.contents[set_index]


def simulate_strict_inclusion(
    workload: Union[str, Trace],
    l1_bytes: int,
    l2_bytes: int,
    l2_associativity: int = 4,
    line_size: int = DEFAULT_LINE_SIZE,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    scale: "float | None" = None,
) -> HierarchyStats:
    """Simulate strict inclusion: L2 evictions invalidate the L1s.

    Semantics: every fill into an L1 also fills the L2 (L2 hits refresh
    nothing — random replacement keeps no recency); when the L2 evicts
    a line, both L1s drop it, so the next reference re-misses — the
    inclusion overhead this ablation quantifies.
    """
    if not l2_bytes:
        raise ConfigurationError("strict inclusion requires a second level")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigurationError("warmup_fraction must be in [0, 1)")
    trace = get_trace(workload, scale) if isinstance(workload, str) else workload

    l1_geometry = CacheGeometry(l1_bytes, line_size=line_size, associativity=1)
    icache = _InclusiveL1(l1_geometry.n_sets)
    dcache = _InclusiveL1(l1_geometry.n_sets)
    l2 = SetAssociativeCache(
        CacheGeometry(l2_bytes, line_size=line_size, associativity=l2_associativity)
    )

    warmup_time = int(trace.n_instructions * warmup_fraction)
    l1i = l1d = l2_hits = l2_misses = 0
    counted_data = 0

    i_lines = trace.i_lines(line_size).tolist()
    d_lines = trace.d_lines(line_size).tolist()
    d_times = trace.d_times.tolist()
    d_cursor = 0
    n_data = len(d_lines)

    def reference(line: int, is_instruction: bool, counted: bool) -> None:
        nonlocal l1i, l1d, l2_hits, l2_misses
        cache = icache if is_instruction else dcache
        if not cache.access(line):
            return
        if counted:
            if is_instruction:
                l1i += 1
            else:
                l1d += 1
        if l2.lookup(line):
            l2_hits += counted
        else:
            l2_misses += counted
            evicted = l2.fill(line)
            if evicted is not None:
                # Enforce inclusion: the line leaves the whole chip.
                icache.back_invalidate(evicted)
                dcache.back_invalidate(evicted)

    for cycle, i_line in enumerate(i_lines):
        counted = cycle >= warmup_time
        reference(i_line, True, counted)
        while d_cursor < n_data and d_times[d_cursor] == cycle:
            reference(d_lines[d_cursor], False, counted)
            counted_data += counted
            d_cursor += 1

    return HierarchyStats(
        n_instructions=trace.n_instructions - warmup_time,
        n_data_refs=counted_data,
        l1i_misses=l1i,
        l1d_misses=l1d,
        l2_hits=l2_hits,
        l2_misses=l2_misses,
        has_l2=True,
    )
