"""Unified (mixed) vs split first-level caches — intro advantage #1.

The paper's first argument for a two-level hierarchy: split L1s impose
a *static* partition between instructions and data, while a mixed cache
allocates lines "depending on the program's requirements".  The L1s
must still be split for bandwidth, so the mixed L2 is where the dynamic
allocation happens — but the underlying claim is measurable at level
one: a unified cache of capacity 2N usually misses less than split
N + N caches (ignoring the bandwidth problem a unified L1 would have).

A unified direct-mapped cache over the merged (program-order) reference
stream is still replacement-free, so the vectorised filter applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..cache.directmap import direct_mapped_filter
from ..cache.geometry import DEFAULT_LINE_SIZE, CacheGeometry
from ..cache.hierarchy import DEFAULT_WARMUP_FRACTION, l1_miss_stream
from ..errors import ConfigurationError
from ..traces.address import Trace
from ..traces.store import get_trace

__all__ = ["SplitVsUnified", "compare_split_vs_unified"]


@dataclass(frozen=True)
class SplitVsUnified:
    """Miss comparison: split N+N DM caches vs one unified 2N DM cache."""

    workload: str
    per_cache_bytes: int
    n_refs: int
    split_misses: int
    unified_misses: int

    @property
    def split_miss_rate(self) -> float:
        return self.split_misses / self.n_refs

    @property
    def unified_miss_rate(self) -> float:
        return self.unified_misses / self.n_refs

    @property
    def unified_advantage(self) -> float:
        """Relative miss reduction of dynamic allocation (can be
        negative when I/D conflict in the shared array)."""
        if self.split_misses == 0:
            return 0.0
        return 1.0 - self.unified_misses / self.split_misses


def compare_split_vs_unified(
    workload: Union[str, Trace],
    per_cache_bytes: int,
    unified_associativity: int = 1,
    line_size: int = DEFAULT_LINE_SIZE,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    scale: Optional[float] = None,
) -> SplitVsUnified:
    """Compare split ``N+N`` DM L1s against one unified ``2N`` cache.

    Both organisations see the same program-order reference stream
    (instruction fetch before same-cycle data access); capacities are
    equal in total.  A direct-mapped unified cache often *loses* to the
    split pair (streaming data evicts code), which is half of the
    paper's design argument; with ``unified_associativity > 1`` (LRU,
    simulated stepwise) dynamic allocation pays off — the other half:
    put the mixed capacity in the set-associative L2.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigurationError("warmup_fraction must be in [0, 1)")
    trace = get_trace(workload, scale) if isinstance(workload, str) else workload
    warmup_time = int(trace.n_instructions * warmup_fraction)

    # Split: reuse the memoised per-cache streams.
    stream = l1_miss_stream(trace, per_cache_bytes, line_size)
    split_misses = int((stream.times >= warmup_time).sum())

    # Unified: one 2N cache over the merged program-order stream.
    unified = CacheGeometry(
        2 * per_cache_bytes, line_size=line_size, associativity=unified_associativity
    )
    i_lines = trace.i_lines(line_size)
    d_lines = trace.d_lines(line_size)
    times = np.concatenate([np.arange(trace.n_instructions), trace.d_times])
    kinds = np.concatenate(
        [np.zeros(trace.n_instructions, dtype=np.int8),
         np.ones(trace.n_data_refs, dtype=np.int8)]
    )
    order = np.lexsort((kinds, times))
    merged_lines = np.concatenate([i_lines, d_lines])[order]
    merged_times = times[order]
    if unified.is_direct_mapped:
        result = direct_mapped_filter(merged_lines, unified.n_sets)
        unified_misses = int(
            (result.miss_mask & (merged_times >= warmup_time)).sum()
        )
    else:
        from ..cache.l2 import SetAssociativeCache
        from ..cache.replacement import LruReplacement

        cache = SetAssociativeCache(
            unified, LruReplacement(unified.associativity, unified.n_sets)
        )
        unified_misses = 0
        for line, time in zip(merged_lines.tolist(), merged_times.tolist()):
            if not cache.lookup(line):
                cache.fill(line)
                unified_misses += time >= warmup_time

    counted_data = int(
        len(trace.d_times) - np.searchsorted(trace.d_times, warmup_time, side="left")
    )
    n_refs = (trace.n_instructions - warmup_time) + counted_data
    return SplitVsUnified(
        workload=trace.name,
        per_cache_bytes=per_cache_bytes,
        n_refs=n_refs,
        split_misses=split_misses,
        unified_misses=unified_misses,
    )
