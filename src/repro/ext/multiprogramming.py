"""Multiprogramming (context switches) — beyond the paper's scope, made
measurable.

§2.2: "Effects of multiprogramming and system references were beyond
the scope of this study."  The same lab quantified them elsewhere
(Mogul & Borg, *The Effect of Context Switches on Cache Performance*,
WRL TN-16), so this extension closes the loop: interleave two
workloads' traces with a context-switch quantum and compare each
workload's miss rates against its solo run.  Address spaces are kept
disjoint (separate processes), so all interference is capacity and
conflict displacement — exactly the effect a bigger L2 is supposed to
absorb.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from ..cache.hierarchy import Policy, simulate_hierarchy
from ..cache.results import HierarchyStats
from ..errors import TraceError
from ..traces.address import Trace
from ..traces.store import get_trace

__all__ = ["MultiprogrammingResult", "interleave_traces", "multiprogramming_study"]

#: Address-space separation between processes (beyond any workload's
#: region usage).
_ASID_SPACING = 1 << 44


def interleave_traces(
    first: Trace,
    second: Trace,
    quantum_instructions: int,
    name: str = "",
) -> Trace:
    """Round-robin schedule two traces with a fixed quantum.

    Each process keeps its own (disjoint) address space; scheduling
    alternates ``quantum_instructions`` of each until both traces are
    exhausted (a finished process just stops being scheduled).
    """
    if quantum_instructions < 1:
        raise TraceError("quantum must be at least one instruction")

    parts_i = []
    parts_d = []
    parts_t = []
    cursors = [0, 0]
    d_cursors = [0, 0]
    traces = (first, second)
    out_time = 0
    while cursors[0] < first.n_instructions or cursors[1] < second.n_instructions:
        for index, trace in enumerate(traces):
            start = cursors[index]
            if start >= trace.n_instructions:
                continue
            stop = min(start + quantum_instructions, trace.n_instructions)
            offset = (index + 1) * _ASID_SPACING
            parts_i.append(trace.i_addrs[start:stop] + offset)
            d_start = d_cursors[index]
            d_stop = int(
                np.searchsorted(trace.d_times, stop, side="left")
            )
            parts_d.append(trace.d_addrs[d_start:d_stop] + offset)
            parts_t.append(
                trace.d_times[d_start:d_stop] - start + out_time
            )
            d_cursors[index] = d_stop
            cursors[index] = stop
            out_time += stop - start
    return Trace(
        name or f"{first.name}+{second.name}",
        np.concatenate(parts_i),
        np.concatenate(parts_d) if parts_d else np.array([], dtype=np.int64),
        np.concatenate(parts_t) if parts_t else np.array([], dtype=np.int64),
    )


@dataclass(frozen=True)
class MultiprogrammingResult:
    """Solo vs multiprogrammed miss behaviour for one configuration."""

    quantum_instructions: int
    solo_first: HierarchyStats
    solo_second: HierarchyStats
    combined: HierarchyStats

    @property
    def solo_global_miss_rate(self) -> float:
        """Reference-weighted average of the two solo global miss rates."""
        refs = self.solo_first.n_refs + self.solo_second.n_refs
        misses = self.solo_first.off_chip_fetches + self.solo_second.off_chip_fetches
        return misses / refs

    @property
    def interference_factor(self) -> float:
        """Multiprogrammed / solo global miss rate (≥ ~1)."""
        solo = self.solo_global_miss_rate
        if solo == 0.0:
            return 1.0
        return self.combined.global_miss_rate / solo


def multiprogramming_study(
    first: Union[str, Trace],
    second: Union[str, Trace],
    l1_bytes: int,
    l2_bytes: int = 0,
    l2_associativity: int = 4,
    policy: Policy = Policy.CONVENTIONAL,
    quantum_instructions: int = 20_000,
    scale: Optional[float] = None,
) -> MultiprogrammingResult:
    """Compare solo and interleaved execution of two workloads."""
    trace_a = get_trace(first, scale) if isinstance(first, str) else first
    trace_b = get_trace(second, scale) if isinstance(second, str) else second
    combined = interleave_traces(trace_a, trace_b, quantum_instructions)

    def run(trace: Trace) -> HierarchyStats:
        return simulate_hierarchy(
            trace, l1_bytes, l2_bytes, l2_associativity, policy
        )

    return MultiprogrammingResult(
        quantum_instructions=quantum_instructions,
        solo_first=run(trace_a),
        solo_second=run(trace_b),
        combined=run(combined),
    )
