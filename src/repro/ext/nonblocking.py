"""Non-blocking loads — §10's second conjecture.

The baseline machine is lockup: every miss stalls the pipeline for its
full penalty.  With non-blocking loads, part of a *data* miss's latency
overlaps useful execution; instruction misses still starve the front
end.  The paper conjectures this "may increase the benefits of a
two-level on-chip caching organization if many of the first-level cache
misses can be overlapped".

Model
-----
Starting from the baseline §2.5 penalties, the data-reference share of
the L2 traffic (taken from the L1 I/D miss split — the mixed L2 does
not track requester identity) has ``overlap`` of its stall time hidden:

    data L2-hit stall  = (1 - overlap) · (2·T_L2 + T_L1)
    data L2-miss stall = (1 - overlap) · (T_off + 3·T_L2 + T_L1)

Instruction-side penalties are unchanged.  ``overlap = 0`` reproduces
the baseline model exactly (asserted in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..cache.hierarchy import Policy
from ..core.config import SystemConfig
from ..core.evaluate import _cached_stats, system_area_rbe
from ..core.tpi import system_timings
from ..errors import ConfigurationError
from ..traces.address import Trace
from ..traces.store import get_trace

__all__ = ["NonBlockingResult", "evaluate_non_blocking"]


@dataclass(frozen=True)
class NonBlockingResult:
    """TPI under the non-blocking-load model."""

    config: SystemConfig
    workload: str
    overlap: float
    data_miss_share: float
    base_ns: float
    l2_hit_ns: float
    off_chip_ns: float
    n_instructions: int
    area_rbe: float

    @property
    def total_ns(self) -> float:
        return self.base_ns + self.l2_hit_ns + self.off_chip_ns

    @property
    def tpi_ns(self) -> float:
        return self.total_ns / self.n_instructions

    @property
    def label(self) -> str:
        return self.config.label


def evaluate_non_blocking(
    config: SystemConfig,
    workload: Union[str, Trace],
    overlap: float = 0.5,
    scale: Optional[float] = None,
) -> NonBlockingResult:
    """Evaluate ``config`` with ``overlap`` of data-miss latency hidden.

    Parameters
    ----------
    overlap:
        Fraction of each data miss's stall time covered by independent
        work (0 = the paper's blocking baseline, 1 = perfect MLP).
    """
    if not 0.0 <= overlap <= 1.0:
        raise ConfigurationError("overlap must be in [0, 1]")

    trace = get_trace(workload, scale) if isinstance(workload, str) else workload
    stats = _cached_stats(
        trace,
        config.l1_bytes,
        config.l2_bytes,
        config.l2_associativity,
        config.policy if config.has_l2 else Policy.CONVENTIONAL,
        config.line_size,
    )
    timings = system_timings(config)
    data_share = (
        stats.l1d_misses / stats.l1_misses if stats.l1_misses else 0.0
    )
    # A penalty-weight of 1 for the instruction share and (1 - overlap)
    # for the data share.
    exposed = (1.0 - data_share) + data_share * (1.0 - overlap)

    base = stats.n_instructions * timings.l1_cycle_ns / config.issue_width
    if config.has_l2:
        l2_hit_time = stats.l2_hits * timings.l2_hit_penalty_ns * exposed
        off_chip_time = stats.l2_misses * timings.l2_miss_penalty_ns * exposed
    else:
        l2_hit_time = 0.0
        off_chip_time = (
            stats.l1_misses * timings.single_level_miss_penalty_ns * exposed
        )
    return NonBlockingResult(
        config=config,
        workload=trace.name,
        overlap=overlap,
        data_miss_share=data_share,
        base_ns=base,
        l2_hit_ns=l2_hit_time,
        off_chip_ns=off_chip_time,
        n_instructions=stats.n_instructions,
        area_rbe=system_area_rbe(config),
    )
