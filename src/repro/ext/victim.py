"""Fully-associative victim cache (Jouppi 1990, the paper's ref [4]).

A victim cache is a small fully-associative buffer beside a
direct-mapped L1 that catches its evictions; a miss that hits in the
victim cache swaps the two lines instead of going below.  The paper
notes (§8) that exclusive caching with ``y < x`` degenerates into "a
shared direct-mapped victim cache" — this module provides the genuine
fully-associative article for comparison.

The L1's contents are unaffected by the victim buffer (it always fills
on miss), so the simulation replays the memoised L1 miss stream, just
like the L2 simulators.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Union

import numpy as np

from ..cache.directmap import NO_VICTIM
from ..cache.hierarchy import DEFAULT_WARMUP_FRACTION, l1_miss_stream
from ..cache.geometry import DEFAULT_LINE_SIZE
from ..errors import ConfigurationError
from ..traces.address import Trace
from ..traces.store import get_trace

__all__ = ["VictimCacheStats", "simulate_victim_cache"]


@dataclass(frozen=True)
class VictimCacheStats:
    """Counts for split DM L1s plus one shared victim buffer."""

    n_instructions: int
    n_data_refs: int
    l1_misses: int
    victim_hits: int
    misses_below: int
    victim_lines: int

    @property
    def n_refs(self) -> int:
        return self.n_instructions + self.n_data_refs

    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.n_refs

    @property
    def victim_hit_rate(self) -> float:
        """Fraction of L1 misses absorbed by the victim buffer."""
        if self.l1_misses == 0:
            return 0.0
        return self.victim_hits / self.l1_misses

    @property
    def miss_rate_below(self) -> float:
        """Misses per reference that continue past the victim buffer."""
        return self.misses_below / self.n_refs


class _FullyAssociativeLru:
    """Tiny fully-associative LRU buffer of line addresses."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._lines: "OrderedDict[int, None]" = OrderedDict()

    def probe_and_remove(self, line: int) -> bool:
        """True (and remove) if ``line`` is resident."""
        if line in self._lines:
            del self._lines[line]
            return True
        return False

    def insert(self, line: int) -> None:
        if line in self._lines:
            self._lines.move_to_end(line)
            return
        if len(self._lines) >= self.capacity:
            self._lines.popitem(last=False)
        self._lines[line] = None


def simulate_victim_cache(
    workload: Union[str, Trace],
    l1_bytes: int,
    victim_lines: int = 4,
    line_size: int = DEFAULT_LINE_SIZE,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    scale: "float | None" = None,
) -> VictimCacheStats:
    """Split DM L1s with a shared ``victim_lines``-entry victim buffer.

    On an L1 miss the buffer is probed: a hit swaps (the requested line
    returns to the L1, its victim enters the buffer, and the request
    never leaves the chip-level pair); a miss inserts the L1 victim and
    the request continues below (counted in ``misses_below``).
    """
    if victim_lines < 1:
        raise ConfigurationError("victim_lines must be >= 1")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigurationError("warmup_fraction must be in [0, 1)")
    trace = get_trace(workload, scale) if isinstance(workload, str) else workload
    stream = l1_miss_stream(trace, l1_bytes, line_size)
    warmup_time = int(trace.n_instructions * warmup_fraction)

    buffer = _FullyAssociativeLru(victim_lines)
    victim_hits = 0
    misses_below = 0
    counted_misses = 0
    for line, victim, time in zip(
        stream.lines.tolist(), stream.victims.tolist(), stream.times.tolist()
    ):
        counted = time >= warmup_time
        counted_misses += counted
        if buffer.probe_and_remove(line):
            victim_hits += counted
        else:
            misses_below += counted
        if victim != NO_VICTIM:
            buffer.insert(victim)

    n_data = int(
        len(trace.d_times) - np.searchsorted(trace.d_times, warmup_time, side="left")
    )
    return VictimCacheStats(
        n_instructions=trace.n_instructions - warmup_time,
        n_data_refs=n_data,
        l1_misses=counted_misses,
        victim_hits=victim_hits,
        misses_below=misses_below,
        victim_lines=victim_lines,
    )
