"""Extensions beyond the paper's baseline study.

These modules implement the directions the paper itself points at:

* :mod:`repro.ext.multicycle` — §10's first conjecture: multicycle
  (pipelined) first-level caches decouple the clock from L1 size and
  should *reduce* the benefit of two-level caching.
* :mod:`repro.ext.nonblocking` — §10's second conjecture: non-blocking
  loads overlap part of the miss latency and should *increase* the
  benefit of a large on-chip second level.
* :mod:`repro.ext.inclusion` — the strict-inclusion (back-invalidation)
  policy of Baer & Wang (the paper's reference [1]), for comparison
  against the paper's non-inclusive baseline and exclusive scheme.
* :mod:`repro.ext.victim` — the fully-associative victim cache of
  Jouppi 1990 (the paper's reference [4]); the paper notes exclusive
  caching with ``y < x`` degenerates into "a shared direct-mapped
  victim cache".
* :mod:`repro.ext.multiprogramming` — context-switch interference, the
  effect §2.2 declares out of scope (cf. Mogul & Borg, WRL TN-16).
* :mod:`repro.ext.writes` — write-back traffic accounting, quantifying
  the cost §2.2's writes-as-reads abstraction hides.
* :mod:`repro.ext.stream_buffer` — Jouppi 1990's sequential-prefetch
  stream buffers (the second half of the paper's reference [4]).
* :mod:`repro.ext.l3` — an explicit board-level cache behind the chip,
  replacing the paper's constant 50/200 ns off-chip abstraction.
* :mod:`repro.ext.banking` — banked vs dual-ported L1s, the §6 remark
  (Sohi & Franklin, the paper's reference [8]).
* :mod:`repro.ext.associative_l1` — set-associative L1s, testing Hill's
  direct-mapped-L1 recommendation (the paper's reference [3]).
* :mod:`repro.ext.unified_l1` — unified vs split L1s, quantifying the
  introduction's dynamic-allocation argument (advantage #1).

Each module is self-contained and exercised by its own tests and an
ablation benchmark under ``benchmarks/``.
"""

from .associative_l1 import AssociativeL1Result, evaluate_associative_l1
from .banking import BankedResult, evaluate_banked
from .inclusion import simulate_strict_inclusion
from .l3 import BoardCacheResult, evaluate_with_board_cache
from .multicycle import MulticycleResult, evaluate_multicycle
from .multiprogramming import (
    MultiprogrammingResult,
    interleave_traces,
    multiprogramming_study,
)
from .nonblocking import NonBlockingResult, evaluate_non_blocking
from .stream_buffer import StreamBufferStats, simulate_stream_buffer
from .unified_l1 import SplitVsUnified, compare_split_vs_unified
from .victim import VictimCacheStats, simulate_victim_cache
from .writes import WriteTraffic, count_write_traffic, evaluate_with_writes

__all__ = [
    "evaluate_multicycle",
    "MulticycleResult",
    "evaluate_non_blocking",
    "NonBlockingResult",
    "simulate_strict_inclusion",
    "simulate_victim_cache",
    "VictimCacheStats",
    "interleave_traces",
    "multiprogramming_study",
    "MultiprogrammingResult",
    "count_write_traffic",
    "evaluate_with_writes",
    "WriteTraffic",
    "simulate_stream_buffer",
    "StreamBufferStats",
    "evaluate_with_board_cache",
    "BoardCacheResult",
    "evaluate_banked",
    "BankedResult",
    "evaluate_associative_l1",
    "AssociativeL1Result",
    "compare_split_vs_unified",
    "SplitVsUnified",
]
