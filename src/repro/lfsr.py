"""Linear-feedback shift register used for pseudo-random replacement.

The paper's set-associative second-level caches use *pseudo-random*
replacement.  Real hardware implements this with a free-running LFSR
sampled on each replacement; we do the same so that the replacement
stream is deterministic, reproducible, and independent of Python's
global random state.

The register is a 16-bit Galois LFSR with the maximal-length polynomial
x^16 + x^14 + x^13 + x^11 + 1 (taps 0xB400), giving a period of
2**16 - 1.
"""

from __future__ import annotations

from .errors import ConfigurationError

__all__ = ["Lfsr16"]

_TAPS = 0xB400
_PERIOD = (1 << 16) - 1


class Lfsr16:
    """A 16-bit maximal-length Galois LFSR.

    Parameters
    ----------
    seed:
        Initial register contents; must be non-zero modulo 2**16 (the
        all-zero state is a fixed point of the recurrence).  The default
        seed mirrors a power-on reset value.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int = 0xACE1) -> None:
        state = seed & 0xFFFF
        if state == 0:
            raise ConfigurationError("LFSR seed must be non-zero in the low 16 bits")
        self._state = state

    @property
    def state(self) -> int:
        """Current register contents (16 bits)."""
        return self._state

    def step(self) -> int:
        """Advance one cycle and return the new register contents."""
        lsb = self._state & 1
        self._state >>= 1
        if lsb:
            self._state ^= _TAPS
        return self._state

    def next_way(self, associativity: int) -> int:
        """Return a replacement way index in ``range(associativity)``.

        Hardware samples the low bits of the register; for power-of-two
        associativities this is uniform over the LFSR period.  For
        other associativities we reduce modulo ``associativity`` which
        is what simple hardware implementations do as well.
        """
        if associativity <= 0:
            raise ConfigurationError("associativity must be positive")
        if associativity == 1:
            return 0
        return self.step() % associativity

    @staticmethod
    def period() -> int:
        """Length of the state cycle (2**16 - 1 for a maximal LFSR)."""
        return _PERIOD
