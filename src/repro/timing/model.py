"""Access and cycle time of one cache organisation.

Read-path structure (Wada / Wilton–Jouppi):

* **data side** — decoder → word line → bit line → sense amplifier;
* **tag side** — (smaller) decoder → word line → bit line → sense
  amplifier → comparator, plus the output multiplexor driver when the
  cache is set-associative (the tag match must select the data way);
* the two sides proceed in parallel; the slower one gates the shared
  **output driver**.

The cycle time adds the bit-line restore (precharge) interval of the
slower-recovering array, i.e. the minimum spacing between the start of
two successive accesses — the quantity the paper uses to set the
processor clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..cache.geometry import CacheGeometry
from ..errors import ModelError
from .organization import (
    ArrayOrganization,
    data_array_shape,
    tag_array_shape,
    tag_bits_per_entry,
)
from .stages import (
    RC_UNIT_NS,
    bitline_rc,
    chain_delay,
    comparator_rc,
    decoder_chain,
    mux_driver_rc,
    output_driver_rc,
    precharge_time,
    way_select_rc,
    wordline_rc,
)
from .technology import Technology

__all__ = ["TimingResult", "access_and_cycle_time"]

#: Bits delivered per array access (8 bytes, per the paper's refill
#: model: a 16-byte line moves as two 8-byte transfers).
OUTPUT_BITS = 64


@dataclass(frozen=True)
class TimingResult:
    """Access/cycle times (ns) and per-stage breakdown for one layout."""

    geometry: CacheGeometry
    organization: ArrayOrganization
    access_ns: float
    cycle_ns: float
    data_side_ns: float
    tag_side_ns: float
    breakdown: Dict[str, float]

    def __post_init__(self) -> None:
        if self.cycle_ns < self.access_ns:
            raise ModelError("cycle time cannot be below access time")


def access_and_cycle_time(
    geometry: CacheGeometry,
    organization: ArrayOrganization,
    tech: Technology,
) -> TimingResult:
    """Evaluate one (geometry, organisation) pair under ``tech``.

    Raises
    ------
    ModelError
        If the organisation is infeasible for the geometry.
    """
    scale = tech.time_scale
    breakdown: Dict[str, float] = {}

    # ----- data side ---------------------------------------------------
    d_rows, d_cols = data_array_shape(
        geometry, organization.ndwl, organization.ndbl, organization.nspd
    )
    total_data_cols = d_cols * organization.ndwl
    data_mux_ways = max(1, total_data_cols // OUTPUT_BITS)
    d_chain = decoder_chain(tech, d_rows, organization.data_subarrays)
    d_wl = wordline_rc(tech, d_cols)
    d_bl = bitline_rc(tech, d_rows, data_mux_ways)
    d_chain = d_chain.extended("data wordline", d_wl).extended("data bitline", d_bl)
    data_side = chain_delay(tech, d_chain) + tech.t_sense_data * scale
    for name, rc in zip(d_chain.names, d_chain.rcs):
        breakdown[f"data {name}" if "data" not in name else name] = (
            tech.rc_to_delay * rc * scale * RC_UNIT_NS
        )
    breakdown["data sense amp"] = tech.t_sense_data * scale

    # ----- tag side ----------------------------------------------------
    t_rows, t_cols = tag_array_shape(
        geometry, organization.ntwl, organization.ntbl, organization.ntspd
    )
    tag_mux_ways = max(1, organization.ntspd)
    t_chain = decoder_chain(tech, t_rows, organization.tag_subarrays)
    t_wl = wordline_rc(tech, t_cols)
    t_bl = bitline_rc(tech, t_rows, tag_mux_ways)
    t_chain = t_chain.extended("tag wordline", t_wl).extended("tag bitline", t_bl)
    tag_side = chain_delay(tech, t_chain) + tech.t_sense_tag * scale
    compare = tech.rc_to_delay * RC_UNIT_NS * comparator_rc(
        tech, tag_bits_per_entry(geometry)
    )
    tag_side += compare * scale
    breakdown["tag path"] = chain_delay(tech, t_chain)
    breakdown["tag sense amp"] = tech.t_sense_tag * scale
    breakdown["comparator"] = compare * scale
    if not geometry.is_direct_mapped:
        mux = tech.rc_to_delay * RC_UNIT_NS * mux_driver_rc(
            tech, OUTPUT_BITS, geometry.associativity
        )
        tag_side += mux * scale
        breakdown["mux driver"] = mux * scale

    # ----- shared output path -------------------------------------------
    out = (
        tech.rc_to_delay * RC_UNIT_NS * output_driver_rc(tech)
        + tech.t_output_intrinsic
    ) * scale
    breakdown["output driver"] = out

    if geometry.is_direct_mapped:
        # The data array drives the output as soon as it is sensed; the
        # tag comparison proceeds in parallel and only validates the
        # result, so it is rarely critical.
        access = max(data_side + out, tag_side)
    else:
        # Set-associative: the output driver cannot fire until the tag
        # match has selected a way, and the selected data must traverse
        # the way mux in series.
        way_mux = (
            tech.rc_to_delay * RC_UNIT_NS * way_select_rc(tech, geometry.associativity)
        ) * scale
        breakdown["way select"] = way_mux
        access = max(data_side, tag_side) + way_mux + out

    # ----- cycle time ----------------------------------------------------
    d_pre = precharge_time(tech, d_rows, d_wl)
    t_pre = precharge_time(tech, t_rows, t_wl)
    cycle = access + max(d_pre, t_pre)
    breakdown["precharge"] = max(d_pre, t_pre)

    return TimingResult(
        geometry=geometry,
        organization=organization,
        access_ns=access,
        cycle_ns=cycle,
        data_side_ns=data_side,
        tag_side_ns=tag_side,
        breakdown=breakdown,
    )
