"""Per-stage RC delay formulas for the SRAM read path.

Each function returns the RC time constant (ns) of one stage; the model
(:mod:`repro.timing.model`) converts a chain of stage constants into a
delay using a first-order pole response plus a simplified Horowitz
input-slope coupling term:

    delay_i = rc_to_delay · RC_i + slope_coupling · RC_{i-1}

The stage structure follows Wada / Wilton–Jouppi: address driver →
predecoder → final decode gate → word-line driver → bit-line discharge →
sense amplifier, with the tag side adding comparator and (for
set-associative arrays) the output multiplexor driver, and both sides
sharing the data output driver.  Bit lines are precharged; the cycle
time adds the precharge/restore interval to the access time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ModelError
from .technology import Technology

__all__ = [
    "StageChain",
    "decoder_chain",
    "wordline_rc",
    "bitline_rc",
    "comparator_rc",
    "mux_driver_rc",
    "way_select_rc",
    "output_driver_rc",
    "precharge_time",
    "chain_delay",
]

#: Unit conversion: stage RC constants are computed in kΩ·fF, which is
#: picoseconds; delays are reported in ns.
RC_UNIT_NS = 1e-3

#: Wire capacitance (fF) per subarray crossed by global decode wiring.
_C_GLOBAL_WIRE_PER_SUBARRAY = 10.0

#: Sense-amplifier input load on each bit line (fF).
_C_SENSE_INPUT = 5.0

#: Capacitive load of the off-array data bus seen by the output driver
#: (fF) — long wires to the datapath.
_C_DATA_BUS = 80.0


@dataclass(frozen=True)
class StageChain:
    """A named sequence of stage RC constants (ns)."""

    names: Tuple[str, ...]
    rcs: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.names) != len(self.rcs):
            raise ModelError("names and rcs must align")

    def extended(self, name: str, rc: float) -> "StageChain":
        """A new chain with one more stage appended."""
        return StageChain(self.names + (name,), self.rcs + (rc,))


def chain_delay(tech: Technology, chain: StageChain) -> float:
    """Total delay (ns) of a chain of stages with slope coupling."""
    delay = 0.0
    previous_rc = 0.0
    for rc in chain.rcs:
        delay += tech.rc_to_delay * rc + tech.slope_coupling * previous_rc
        previous_rc = rc
    return delay * tech.time_scale * RC_UNIT_NS


def decoder_chain(
    tech: Technology, rows: int, n_subarrays: int
) -> StageChain:
    """Address driver → predecoder → final decode gate.

    ``rows`` is the row count of one subarray; ``n_subarrays`` sets the
    global wiring and fan-out load on the address drivers.
    """
    # Stage 1: address driver fans out to the predecode gates of every
    # subarray across global wiring.
    r1 = tech.r_nmos(tech.address_driver_um)
    c1 = (
        n_subarrays * 2.0 * tech.c_gate(tech.predecode_gate_um)
        + n_subarrays * _C_GLOBAL_WIRE_PER_SUBARRAY
        + tech.c_diff(tech.address_driver_um)
    )
    # Stage 2: one predecode (3→8) line drives rows/8 final gates plus
    # wiring down the decoder spine.
    r2 = tech.r_pmos(tech.predecode_gate_um)
    c2 = (
        max(1.0, rows / 8.0) * tech.c_gate(tech.final_decode_gate_um)
        + rows * 0.1
        + tech.c_diff(tech.predecode_gate_um)
    )
    # Stage 3: the selected final gate turns on the word-line driver.
    r3 = tech.r_nmos(tech.final_decode_gate_um)
    c3 = tech.c_gate(tech.wordline_driver_um) + tech.c_diff(tech.final_decode_gate_um)
    return StageChain(
        ("address driver", "predecoder", "decode gate"), (r1 * c1, r2 * c2, r3 * c3)
    )


def wordline_rc(tech: Technology, cols: int) -> float:
    """Word-line rise: driver plus distributed wire RC across ``cols`` cells."""
    c_per_cell = tech.c_word_wire_per_cell + 2.0 * tech.c_gate(tech.pass_transistor_um)
    c_total = cols * c_per_cell
    r_driver = tech.r_pmos(tech.wordline_driver_um)
    r_wire = cols * tech.r_word_wire_per_cell
    # Distributed line: driver sees the full cap, the wire sees half.
    return r_driver * c_total + 0.5 * r_wire * c_total


#: Fraction of an RC constant needed to develop the sense threshold
#: swing on the bit line (small-signal sensing, ~10 % of rail).
_BITLINE_SWING_FRACTION = 0.18


def bitline_rc(tech: Technology, rows: int, column_mux_ways: int) -> float:
    """Bit-line discharge to the sense threshold.

    The cell pulls the bit line down through its pull-down and pass
    devices; the line carries one wire segment and one pass-transistor
    diffusion per row, plus the column multiplexor and sense input.
    Only a small-signal swing is needed, captured by
    ``_BITLINE_SWING_FRACTION``.
    """
    r_cell = tech.r_nmos(tech.cell_pulldown_um) + tech.r_nmos(tech.pass_transistor_um)
    c_line = rows * (
        tech.c_bit_wire_per_cell + tech.c_diff(tech.pass_transistor_um)
    )
    c_line += _C_SENSE_INPUT
    r_wire = rows * tech.r_bit_wire_per_cell
    if column_mux_ways > 1:
        # Column mux pass device: series resistance plus the diffusion
        # load of the unselected ways on the shared sense node.
        mux_width = 4.0
        r_cell += tech.r_nmos(mux_width)
        c_line += column_mux_ways * tech.c_diff(mux_width)
    return _BITLINE_SWING_FRACTION * (r_cell * c_line + 0.5 * r_wire * c_line)


def comparator_rc(tech: Technology, tag_bits: int) -> float:
    """Tag comparator: precharged XOR tree discharging a match line."""
    r = tech.r_nmos(tech.comparator_pulldown_um)
    c = tag_bits * tech.c_diff(2.0) + tech.c_gate(tech.mux_driver_um)
    return r * c


def mux_driver_rc(tech: Technology, output_bits: int, associativity: int) -> float:
    """Output-way select driver (set-associative arrays only).

    The winning comparator's driver must swing a select line loaded by
    one mux gate per output bit; wiring grows with associativity since
    the select must span all ways.
    """
    r = tech.r_nmos(tech.mux_driver_um)
    c = output_bits * tech.c_gate(4.0) + associativity * output_bits * 0.2
    return r * c


def way_select_rc(tech: Technology, associativity: int) -> float:
    """Way-select pass gate between the sensed ways and the output driver.

    Only set-associative arrays have this stage in series: the sensed
    data of the selected way must pass through a (narrow) mux transistor
    before the output driver, loading the driver input with the
    diffusion of every way's mux device.
    """
    mux_width = 2.0
    r = tech.r_nmos(mux_width)
    c = (
        tech.c_gate(tech.output_driver_um)
        + associativity * tech.c_diff(mux_width)
        + 40.0  # output-node wiring spanning the ways
    )
    return r * c


def output_driver_rc(tech: Technology) -> float:
    """Final data output driver onto the array's output bus."""
    r = tech.r_nmos(tech.output_driver_um)
    c = _C_DATA_BUS + tech.c_diff(tech.output_driver_um)
    return r * c


def precharge_time(tech: Technology, rows: int, cols_delay_rc: float) -> float:
    """Bit-line restore interval appended to access time for the cycle.

    Restoring the discharged bit line's small-signal swing takes about
    one time constant of the precharge device against the full line;
    the word line must also fall first, which re-uses the word-line RC.
    """
    c_line = rows * (
        tech.c_bit_wire_per_cell + tech.c_diff(tech.pass_transistor_um)
    ) + _C_SENSE_INPUT
    r_pre = tech.r_pmos(tech.precharge_um)
    restore = 1.2 * r_pre * c_line
    return tech.time_scale * tech.rc_to_delay * (restore + cols_delay_rc) * RC_UNIT_NS


def stage_rcs_as_list(chain: StageChain) -> List[Tuple[str, float]]:
    """Convenience for reporting: list of (stage name, RC ns)."""
    return list(zip(chain.names, chain.rcs))
