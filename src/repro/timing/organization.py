"""Memory array organisation parameters (Ndwl/Ndbl/Nspd and tag twins).

Following Wada's formulation, a cache data array of capacity ``C`` bytes
with ``B``-byte lines and associativity ``A`` can be laid out many ways:

* ``ndwl`` — number of times the word line is split (columns divided
  among ``ndwl`` subarrays);
* ``ndbl`` — number of times the bit line is split (rows divided among
  ``ndbl`` subarrays);
* ``nspd`` — number of sets mapped to one physical word line (trades
  more columns for fewer rows).

Rows per subarray = ``C / (B·A·ndbl·nspd)``; columns per subarray =
``8·B·A·nspd / ndwl``.  The tag array has its own independent triple.
The model evaluates every feasible organisation and keeps the fastest —
exactly how the paper always "organised the memories to give the
highest performance".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..errors import ModelError
from ..units import is_pow2
from ..cache.geometry import CacheGeometry

__all__ = [
    "ArrayOrganization",
    "data_array_shape",
    "tag_array_shape",
    "tag_bits_per_entry",
    "enumerate_organizations",
]

#: Largest split factor explored in any dimension.
_MAX_SPLIT = 16

#: Physical address width assumed for tag sizing (the paper's machines
#: were 32-bit with physically-addressed caches).
ADDRESS_BITS = 32

#: Status bits per tag entry: valid + dirty.
STATUS_BITS = 2


@dataclass(frozen=True)
class ArrayOrganization:
    """One candidate layout of the data and tag arrays."""

    ndwl: int
    ndbl: int
    nspd: int
    ntwl: int
    ntbl: int
    ntspd: int

    def __post_init__(self) -> None:
        for value in (self.ndwl, self.ndbl, self.nspd, self.ntwl, self.ntbl, self.ntspd):
            if not is_pow2(value):
                raise ModelError("organisation parameters must be powers of two")

    @property
    def data_subarrays(self) -> int:
        """Number of physical data subarrays."""
        return self.ndwl * self.ndbl

    @property
    def tag_subarrays(self) -> int:
        """Number of physical tag subarrays."""
        return self.ntwl * self.ntbl


def data_array_shape(
    geometry: CacheGeometry, ndwl: int, ndbl: int, nspd: int
) -> Tuple[int, int]:
    """(rows, columns) of one data subarray, or raise if infeasible."""
    denom = geometry.line_size * geometry.associativity * ndbl * nspd
    if geometry.size_bytes % denom:
        raise ModelError("rows not integral")
    rows = geometry.size_bytes // denom
    cols_num = 8 * geometry.line_size * geometry.associativity * nspd
    if cols_num % ndwl:
        raise ModelError("columns not integral")
    cols = cols_num // ndwl
    if rows < 1 or cols < 1:
        raise ModelError("degenerate subarray")
    return rows, cols


def tag_bits_per_entry(geometry: CacheGeometry) -> int:
    """Tag width (address tag + status bits) for one cache line."""
    index_bits = geometry.n_sets.bit_length() - 1
    offset_bits = geometry.line_size.bit_length() - 1
    tag_bits = ADDRESS_BITS - index_bits - offset_bits
    if tag_bits <= 0:
        raise ModelError("cache too large for the address space")
    return tag_bits + STATUS_BITS


def tag_array_shape(
    geometry: CacheGeometry, ntwl: int, ntbl: int, ntspd: int
) -> Tuple[int, int]:
    """(rows, columns) of one tag subarray, or raise if infeasible."""
    n_sets = geometry.n_sets
    if n_sets % (ntbl * ntspd):
        raise ModelError("tag rows not integral")
    rows = n_sets // (ntbl * ntspd)
    cols_num = tag_bits_per_entry(geometry) * geometry.associativity * ntspd
    if cols_num % ntwl:
        raise ModelError("tag columns not integral")
    cols = cols_num // ntwl
    if rows < 1 or cols < 1:
        raise ModelError("degenerate tag subarray")
    return rows, cols


def _splits() -> List[int]:
    values = []
    split = 1
    while split <= _MAX_SPLIT:
        values.append(split)
        split *= 2
    return values


def enumerate_organizations(geometry: CacheGeometry) -> Iterator[ArrayOrganization]:
    """Yield every feasible organisation for ``geometry``.

    Feasibility requires integral subarray shapes and at least two rows
    and eight columns per subarray (a subarray thinner than that has no
    sensible physical layout and would distort the periphery model).
    """
    data_candidates = []
    for ndwl in _splits():
        for ndbl in _splits():
            for nspd in _splits():
                try:
                    rows, cols = data_array_shape(geometry, ndwl, ndbl, nspd)
                except ModelError:
                    continue
                if rows >= 2 and cols >= 8:
                    data_candidates.append((ndwl, ndbl, nspd))
    tag_candidates = []
    for ntwl in _splits():
        for ntbl in _splits():
            for ntspd in _splits():
                try:
                    rows, cols = tag_array_shape(geometry, ntwl, ntbl, ntspd)
                except ModelError:
                    continue
                if rows >= 2 and cols >= 8:
                    tag_candidates.append((ntwl, ntbl, ntspd))
    if not data_candidates or not tag_candidates:
        raise ModelError(f"no feasible organisation for {geometry}")
    for ndwl, ndbl, nspd in data_candidates:
        for ntwl, ntbl, ntspd in tag_candidates:
            yield ArrayOrganization(ndwl, ndbl, nspd, ntwl, ntbl, ntspd)
