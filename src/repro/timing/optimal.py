"""Organisation search: the fastest layout for each cache geometry.

The paper always organised each memory "to give the highest
performance": the model iterates over all feasible array organisations
and keeps the one with the minimum cycle time (ties broken by access
time, then by fewest subarrays, which is also the cheapest in area).
Results are memoised — the design-space sweeps ask for the same handful
of geometries thousands of times.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

from ..cache.geometry import DEFAULT_LINE_SIZE, CacheGeometry
from .model import TimingResult, access_and_cycle_time
from .organization import enumerate_organizations
from .technology import TECH_05UM, Technology

__all__ = ["optimal_timing"]


@lru_cache(maxsize=4096)
def _optimal_timing_cached(
    size_bytes: int, line_size: int, associativity: int, tech: Technology
) -> TimingResult:
    geometry = CacheGeometry(
        size_bytes, line_size=line_size, associativity=associativity
    )
    best: Optional[TimingResult] = None
    best_key = None
    for organization in enumerate_organizations(geometry):
        result = access_and_cycle_time(geometry, organization, tech)
        key = (
            result.cycle_ns,
            result.access_ns,
            organization.data_subarrays + organization.tag_subarrays,
        )
        if best_key is None or key < best_key:
            best = result
            best_key = key
    assert best is not None  # enumerate_organizations raises if empty
    return best


def optimal_timing(
    size_bytes: int,
    associativity: int = 1,
    line_size: int = DEFAULT_LINE_SIZE,
    tech: Technology = TECH_05UM,
) -> TimingResult:
    """Fastest access/cycle times for a cache of ``size_bytes``.

    Parameters
    ----------
    size_bytes:
        Data capacity (power of two).
    associativity:
        Ways per set (1 or 4 in the paper).
    line_size:
        Line size in bytes (16 in the paper).
    tech:
        Technology point; defaults to the paper's scaled 0.5 µm process.

    Returns
    -------
    TimingResult
        The minimum-cycle-time organisation and its breakdown.
    """
    return _optimal_timing_cached(size_bytes, line_size, associativity, tech)
