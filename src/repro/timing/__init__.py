"""Analytical SRAM access/cycle-time model (Wada / Wilton–Jouppi style).

The paper computes cache cycle times with the Wilton–Jouppi extension
(WRL 93/5, the CACTI precursor) of Wada's analytical model: per-stage
RC delays through decoder, wordline, bitline, sense amplifier, tag
comparator, multiplexor driver and output driver, minimised over memory
array organisations, at 0.8 µm, then scaled ×0.5 for a 0.5 µm process.

This package implements the same structure.  The technology constants
(:mod:`repro.timing.technology`) are *representative* 0.8 µm CMOS values
calibrated so the resulting curves land where the paper's Figure 1
does — ~1.7 ns access / ~2 ns cycle for a 1 KB direct-mapped cache and
an ≈2× cycle-time spread up to 256 KB at 0.5 µm (see DESIGN.md §2 for
the substitution note).

Public API
----------
:func:`~repro.timing.optimal.optimal_timing`
    Minimum access/cycle time over array organisations (memoised).
:class:`~repro.timing.model.TimingResult`
    Per-stage breakdown for one organisation.
:class:`~repro.timing.technology.Technology`
    Technology constants; ``Technology.scaled(0.5)`` gives the paper's
    0.5 µm operating point.
"""

from .model import TimingResult, access_and_cycle_time
from .optimal import optimal_timing
from .organization import ArrayOrganization, enumerate_organizations
from .technology import TECH_05UM, TECH_08UM, Technology

__all__ = [
    "Technology",
    "TECH_08UM",
    "TECH_05UM",
    "ArrayOrganization",
    "enumerate_organizations",
    "TimingResult",
    "access_and_cycle_time",
    "optimal_timing",
]
