"""Technology constants for the SRAM timing model.

The constants describe a representative 0.8 µm CMOS process of the
paper's era.  Wire capacitances per memory cell follow the values
published with the Wada/Wilton–Jouppi models (word line ≈ 1.8 fF and
bit line ≈ 4.4 fF of metal per cell); transistor parameters are
round-number 0.8 µm values.  Where WRL 93/5 used SPICE-fitted numbers
we cannot reproduce exactly (sense amplifiers, drivers, swing
fractions), the constants were calibrated so that the optimised access and
cycle times land in the range of the paper's Figure 1 (see
``tests/test_timing_calibration.py``).

Units: capacitance in fF, resistance in kΩ, time in ns (so R·C is
directly in ns).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ModelError

__all__ = ["Technology", "TECH_08UM", "TECH_05UM"]


@dataclass(frozen=True)
class Technology:
    """Electrical constants consumed by :mod:`repro.timing.stages`.

    ``time_scale`` multiplies every computed delay; the paper scales its
    0.8 µm results by 0.5 to approximate a high-performance 0.5 µm
    process, which is expressed here as ``TECH_08UM.scaled(0.5)``.
    """

    name: str

    # --- transistors -------------------------------------------------
    #: On-resistance of a 1 µm wide NMOS device (kΩ·µm / µm width).
    r_nmos_per_um: float = 9.0
    #: PMOS on-resistance penalty relative to NMOS.
    pmos_ratio: float = 2.0
    #: Gate capacitance per µm of transistor width (fF/µm).
    c_gate_per_um: float = 2.0
    #: Source/drain diffusion capacitance per µm of width (fF/µm).
    c_diff_per_um: float = 1.0

    # --- memory cell and array wiring --------------------------------
    #: Word-line metal capacitance per cell along a row (fF).
    c_word_wire_per_cell: float = 1.8
    #: Bit-line metal capacitance per cell along a column (fF).
    c_bit_wire_per_cell: float = 4.4
    #: Word-line metal resistance per cell (kΩ).
    r_word_wire_per_cell: float = 0.0006
    #: Bit-line metal resistance per cell (kΩ).
    r_bit_wire_per_cell: float = 0.0003
    #: Width of one cell's pass transistor (µm); two gates load each
    #: word line per cell, and one diffusion loads each bit line.
    pass_transistor_um: float = 0.8
    #: Width of the cell pull-down discharging the bit line (µm).
    cell_pulldown_um: float = 0.6

    # --- peripheral transistor sizings (µm) ---------------------------
    address_driver_um: float = 30.0
    predecode_gate_um: float = 4.0
    final_decode_gate_um: float = 3.0
    wordline_driver_um: float = 24.0
    mux_driver_um: float = 16.0
    output_driver_um: float = 48.0
    comparator_pulldown_um: float = 6.0
    precharge_um: float = 12.0

    # --- fixed stage delays (ns) --------------------------------------
    #: Data-side sense amplifier delay (calibrated; see module docstring).
    t_sense_data: float = 1.40
    #: Tag-side sense amplifier delay (calibrated; see module docstring).
    t_sense_tag: float = 0.70
    #: Output pad/bus driver intrinsic delay.
    t_output_intrinsic: float = 1.20

    # --- global -------------------------------------------------------
    #: Fraction of an RC time constant counted as stage delay (0.69 for
    #: a 50 % swing of a single pole).
    rc_to_delay: float = 0.69
    #: How much of the driving stage's RC shows up as input-slope
    #: penalty in the driven stage (simplified Horowitz coupling).
    slope_coupling: float = 0.25
    #: Global multiplier applied to all delays (process scaling).
    time_scale: float = 1.0

    def r_nmos(self, width_um: float) -> float:
        """On-resistance (kΩ) of an NMOS of ``width_um``."""
        return self.r_nmos_per_um / width_um

    def r_pmos(self, width_um: float) -> float:
        """On-resistance (kΩ) of a PMOS of ``width_um``."""
        return self.pmos_ratio * self.r_nmos_per_um / width_um

    def c_gate(self, width_um: float) -> float:
        """Gate capacitance (fF) of a device of ``width_um``."""
        return self.c_gate_per_um * width_um

    def c_diff(self, width_um: float) -> float:
        """Diffusion capacitance (fF) of a device of ``width_um``."""
        return self.c_diff_per_um * width_um

    def scaled(self, factor: float, name: str = "") -> "Technology":
        """A copy with every delay multiplied by ``factor``.

        This mirrors the paper's approach of scaling the 0.8 µm results
        to a 0.5 µm process by multiplying times by 0.5.
        """
        if factor <= 0:
            raise ModelError("scale factor must be positive")
        return replace(
            self,
            name=name or f"{self.name}*{factor}",
            time_scale=self.time_scale * factor,
        )


#: Representative 0.8 µm process (the model's native operating point).
TECH_08UM = Technology(name="0.8um")

#: The paper's 0.5 µm operating point: all 0.8 µm delays halved.
TECH_05UM = TECH_08UM.scaled(0.5, name="0.5um")
