"""repro — a reproduction of Jouppi & Wilton, *Tradeoffs in Two-Level
On-Chip Caching* (DEC WRL 93/3, ISCA 1994).

The library combines three models — trace-driven miss rates, an
analytical SRAM access/cycle-time model, and an rbe area model — into
the paper's figure of merit: time per instruction (TPI) versus chip
area, over the full design space of split direct-mapped L1 caches with
an optional mixed second level, including the paper's contribution,
**two-level exclusive caching**.

Quickstart
----------
>>> from repro import SystemConfig, evaluate, kb
>>> config = SystemConfig(l1_bytes=kb(8), l2_bytes=kb(64))
>>> perf = evaluate(config, "gcc1", scale=0.05)
>>> perf.tpi_ns > 0
True

See ``examples/`` for complete walkthroughs and ``repro.study`` for the
per-figure experiment registry.
"""

from .cache import Policy, simulate_hierarchy
from .cache.geometry import CacheGeometry
from .core import (
    SystemConfig,
    SystemPerformance,
    best_envelope,
    compute_tpi,
    design_space,
    evaluate,
    sweep,
    system_timings,
)
from .errors import (
    CheckpointError,
    ConfigurationError,
    ExperimentError,
    GeometryError,
    ModelError,
    ReproError,
    RunnerError,
    TraceError,
    UnitTimeoutError,
)
from .runner import RetryPolicy, RunJournal, Runner
from .timing import optimal_timing
from .area import optimal_cache_area
from .traces import WORKLOADS, Trace, get_trace, workload_names
from .units import kb

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration & evaluation
    "SystemConfig",
    "SystemPerformance",
    "evaluate",
    "sweep",
    "design_space",
    "best_envelope",
    "compute_tpi",
    "system_timings",
    # substrates
    "Policy",
    "CacheGeometry",
    "simulate_hierarchy",
    "optimal_timing",
    "optimal_cache_area",
    "Trace",
    "WORKLOADS",
    "workload_names",
    "get_trace",
    # helpers
    "kb",
    # resilient execution
    "Runner",
    "RetryPolicy",
    "RunJournal",
    # errors
    "ReproError",
    "ConfigurationError",
    "GeometryError",
    "ModelError",
    "TraceError",
    "ExperimentError",
    "RunnerError",
    "CheckpointError",
    "UnitTimeoutError",
]
