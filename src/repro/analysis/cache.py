"""Content-hash lint cache: skip unchanged files on warm runs.

The cache file (``.repro-lint-cache.json`` by default) stores, per
source file, the sha256 of the content that was linted, the per-file
findings it produced, and the module summary the program phase
extracted.  A warm run re-hashes every file (cheap) and only re-lints /
re-summarizes the ones whose hash changed, which is what makes a clean
CI re-run fast: the expensive part of both phases is parsing.

Correctness over speed, always:

* the header carries a **ruleset key** — a hash over the package
  version, the cache/summary schema versions, and the sorted active
  rule ids.  Any mismatch (different select/ignore set, upgraded
  package, changed schema) discards the whole cache rather than
  reinterpreting it;
* entries are keyed by file path and validated per field; anything
  malformed is treated as a miss, never an error;
* program findings are **not** cached — they depend on every file in
  the run, so the program phase always re-links and re-evaluates (from
  cached summaries, which *are* per-file facts).

The cache is written through :func:`repro.runner.atomic.write_text_atomic`
like every other artefact, so a crash mid-save leaves the previous
complete cache in place.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..runner.atomic import write_text_atomic
from .finding import Finding
from .program.summary import SUMMARY_SCHEMA, ModuleSummary

__all__ = ["CACHE_SCHEMA", "LintCache", "file_sha256", "ruleset_key"]

#: Bumped whenever the cache layout changes; older caches are discarded.
CACHE_SCHEMA = 1

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_NAME = ".repro-lint-cache.json"


def file_sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def ruleset_key(version: str, rule_ids: Iterable[str]) -> str:
    """Cache-invalidation key for one (package, rule set) combination."""
    payload = json.dumps(
        [version, CACHE_SCHEMA, SUMMARY_SCHEMA, sorted(rule_ids)],
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class LintCache:
    """One loaded cache file, mutated in place and saved once at the end."""

    path: Path
    key: str
    entries: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    dirty: bool = False
    hits: int = 0

    @classmethod
    def load(cls, path: Union[str, Path], key: str) -> "LintCache":
        """Load a cache, discarding it entirely on any key mismatch."""
        cache_path = Path(path)
        try:
            payload = json.loads(cache_path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return cls(path=cache_path, key=key)
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA
            or payload.get("key") != key
            or not isinstance(payload.get("files"), dict)
        ):
            return cls(path=cache_path, key=key)
        entries = {
            file: entry
            for file, entry in payload["files"].items()
            if isinstance(entry, dict) and isinstance(entry.get("sha256"), str)
        }
        return cls(path=cache_path, key=key, entries=entries)

    def _entry_for(self, file: str, sha: str) -> Dict[str, Any]:
        entry = self.entries.get(file)
        if entry is None or entry.get("sha256") != sha:
            entry = {"sha256": sha}
            self.entries[file] = entry
            self.dirty = True
        return entry

    # -- per-file findings --------------------------------------------

    def lookup_findings(
        self, file: str, sha: str
    ) -> Optional[Tuple[List[Finding], List[Finding]]]:
        entry = self.entries.get(file)
        if entry is None or entry.get("sha256") != sha:
            return None
        if "findings" not in entry or "suppressed" not in entry:
            return None
        try:
            findings = [Finding.from_record(r) for r in entry["findings"]]
            suppressed = [Finding.from_record(r) for r in entry["suppressed"]]
        except (KeyError, TypeError, ValueError):
            return None
        self.hits += 1
        return findings, suppressed

    def store_findings(
        self,
        file: str,
        sha: str,
        findings: Iterable[Finding],
        suppressed: Iterable[Finding],
    ) -> None:
        entry = self._entry_for(file, sha)
        entry["findings"] = [f.to_record() for f in findings]
        entry["suppressed"] = [f.to_record() for f in suppressed]
        self.dirty = True

    # -- module summaries (program phase) -----------------------------

    def lookup_summary(self, file: str, sha: str) -> Optional[ModuleSummary]:
        entry = self.entries.get(file)
        if entry is None or entry.get("sha256") != sha:
            return None
        record = entry.get("summary")
        if not isinstance(record, dict) or record.get("schema") != SUMMARY_SCHEMA:
            return None
        try:
            return ModuleSummary.from_record(record)
        except (KeyError, TypeError, IndexError, ValueError):
            return None

    def store_summary(self, file: str, sha: str, summary: ModuleSummary) -> None:
        entry = self._entry_for(file, sha)
        entry["summary"] = summary.to_record()
        self.dirty = True

    # -- persistence --------------------------------------------------

    def prune(self, known_files: Iterable[str]) -> None:
        """Drop entries for files no longer part of the lint run."""
        known = set(known_files)
        stale = [file for file in self.entries if file not in known]
        for file in stale:
            del self.entries[file]
            self.dirty = True

    def save(self) -> None:
        if not self.dirty:
            return
        payload = {
            "schema": CACHE_SCHEMA,
            "key": self.key,
            "files": self.entries,
        }
        write_text_atomic(
            self.path,
            json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n",
        )
        self.dirty = False
