"""Render a :class:`~repro.analysis.engine.LintReport` for humans or CI."""

from __future__ import annotations

import json

from .engine import LintReport

__all__ = ["render_human", "render_json", "JSON_SCHEMA_VERSION"]

#: Bumped whenever the JSON layout changes incompatibly.
JSON_SCHEMA_VERSION = 1


def render_human(report: LintReport) -> str:
    """``path:line:col: RULE [severity] message`` lines plus a summary."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} [{f.severity}] {f.message}"
        for f in report.findings
    ]
    if report.clean:
        summary = (
            f"repro lint: clean — {report.n_files} file(s), "
            f"{len(report.suppressed)} suppressed finding(s)"
        )
    else:
        summary = (
            f"repro lint: {len(report.findings)} finding(s) in "
            f"{report.n_files} file(s), {len(report.suppressed)} suppressed"
        )
    return "\n".join(lines + [summary])


def render_json(report: LintReport) -> str:
    """Stable machine-readable report (``--format json``)."""
    payload = {
        "schema": JSON_SCHEMA_VERSION,
        "clean": report.clean,
        "files": report.n_files,
        "findings": [finding.to_record() for finding in report.findings],
        "suppressed": [finding.to_record() for finding in report.suppressed],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
