"""Render a :class:`~repro.analysis.engine.LintReport` for humans or CI."""

from __future__ import annotations

import json

from .. import __version__
from .engine import LintReport

__all__ = ["render_human", "render_json", "JSON_SCHEMA_VERSION"]

#: Bumped whenever the JSON layout changes incompatibly.  v2 renamed
#: ``schema`` to ``schema_version``, added the package ``version`` and
#: the ``cached`` file count.
JSON_SCHEMA_VERSION = 2


def render_human(report: LintReport) -> str:
    """``path:line:col: RULE [severity] message`` lines plus a summary."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} [{f.severity}] {f.message}"
        for f in report.findings
    ]
    # Cache hits are deliberately not mentioned: human and JSON output
    # must be identical for identical trees whatever the cache state
    # (the JSON ``cached`` field is metadata, outside the findings).
    if report.clean:
        summary = (
            f"repro lint: clean — {report.n_files} file(s), "
            f"{len(report.suppressed)} suppressed finding(s)"
        )
    else:
        summary = (
            f"repro lint: {len(report.findings)} finding(s) in "
            f"{report.n_files} file(s), {len(report.suppressed)} suppressed"
        )
    return "\n".join(lines + [summary])


def render_json(report: LintReport) -> str:
    """Stable machine-readable report (``--format json``).

    Byte-identical for identical trees regardless of worker count or
    cache state: findings are fully sorted by the engine, keys are
    sorted here, and nothing derived from wall-clock or scheduling
    order is included.
    """
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "version": __version__,
        "clean": report.clean,
        "files": report.n_files,
        "cached": report.n_cached,
        "findings": [finding.to_record() for finding in report.findings],
        "suppressed": [finding.to_record() for finding in report.suppressed],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
