"""Checker registry: rule metadata plus select/ignore resolution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import LintError
from .finding import FileContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .program.graph import Program

__all__ = [
    "Rule",
    "Violation",
    "ProgramViolation",
    "checker",
    "program_checker",
    "all_rules",
    "resolve_rules",
    "get_rule",
]

#: What a file-scope checker yields: (line, col, message), both 1-based.
Violation = Tuple[int, int, str]

#: What a program-scope checker yields: (posix path, line, col, message).
ProgramViolation = Tuple[str, int, int, str]

CheckFn = Callable[[FileContext], Iterator[Violation]]
ProgramCheckFn = Callable[["Program"], Iterator[ProgramViolation]]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule.

    File-scope rules carry ``check`` (one AST at a time); program-scope
    rules carry ``program_check`` (the whole linked
    :class:`~repro.analysis.program.graph.Program`).  Both are None for
    meta-rules the engine implements itself (REP000 suppression
    hygiene, which audits file-scope suppressions per file and
    program-scope suppressions after the program phase).
    """

    rule_id: str
    name: str
    severity: str
    rationale: str
    check: Optional[CheckFn] = field(default=None, repr=False)
    program_check: Optional[ProgramCheckFn] = field(default=None, repr=False)

    @property
    def scope(self) -> str:
        """``"program"`` for whole-program rules, ``"file"`` otherwise."""
        return "program" if self.program_check is not None else "file"


_REGISTRY: Dict[str, Rule] = {}


def _register(rule: Rule) -> None:
    if rule.rule_id in _REGISTRY:
        raise LintError(f"duplicate lint rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule


def checker(
    rule_id: str, name: str, rationale: str, severity: str = "error"
) -> Callable[[CheckFn], CheckFn]:
    """Decorator registering a checker function as a lint rule."""

    def decorate(fn: CheckFn) -> CheckFn:
        _register(Rule(rule_id, name, severity, rationale, check=fn))
        return fn

    return decorate


def program_checker(
    rule_id: str, name: str, rationale: str, severity: str = "error"
) -> Callable[[ProgramCheckFn], ProgramCheckFn]:
    """Decorator registering a whole-program checker as a lint rule."""

    def decorate(fn: ProgramCheckFn) -> ProgramCheckFn:
        _register(Rule(rule_id, name, severity, rationale, program_check=fn))
        return fn

    return decorate


# The engine's own meta-rule: suppression comments must name a known
# rule, carry a non-empty reason, and actually mask a finding.
_register(
    Rule(
        "REP000",
        "suppressions",
        "error",
        "An inline suppression that names no known rule, gives no reason, "
        "or masks nothing is a stale exemption waiting to hide a real bug.",
    )
)


def _load_builtin_rules() -> None:
    # Imported for their registration side effects; late import breaks
    # the registry <-> rules module cycle.
    from . import rules  # noqa: F401
    from .program import rules as program_rules  # noqa: F401


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, ordered by id."""
    _load_builtin_rules()
    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    _load_builtin_rules()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise LintError(f"unknown lint rule {rule_id!r}") from None


def _normalise(spec: Optional[Iterable[str]]) -> Optional[Tuple[str, ...]]:
    if spec is None:
        return None
    ids = tuple(item.strip().upper() for item in spec if item.strip())
    return ids or None


def resolve_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> Tuple[Rule, ...]:
    """The active rule set for a run, validating the filters.

    ``select`` keeps only the named rules; ``ignore`` then removes
    rules.  Unknown ids in either filter raise :class:`LintError` —
    a typo in a filter must not silently disable nothing.
    """
    rules = all_rules()
    known = {rule.rule_id for rule in rules}
    selected = _normalise(select)
    ignored = _normalise(ignore)
    for spec in (selected, ignored):
        for rule_id in spec or ():
            if rule_id not in known:
                raise LintError(
                    f"unknown lint rule {rule_id!r} "
                    f"(known: {', '.join(sorted(known))})"
                )
    if selected is not None:
        rules = tuple(rule for rule in rules if rule.rule_id in selected)
    if ignored is not None:
        rules = tuple(rule for rule in rules if rule.rule_id not in ignored)
    return rules
