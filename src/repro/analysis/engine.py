"""The lint engine: file discovery, rule execution, suppression audit.

Each file is one :class:`~repro.runner.engine.RunUnit`, so linting runs
through the same machinery as sweeps and reports: serial by default,
fanned out over a :class:`~repro.runner.pool.PoolRunner` when
``workers`` is given.  The per-file task is a module-level dataclass —
the engine obeys its own REP004 rule — and a checker crash in one file
is isolated, collected, and re-raised as a single
:class:`~repro.errors.LintError` naming every broken file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import AbstractSet, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import LintError
from ..runner.engine import Runner, RunUnit
from ..runner.pool import PoolRunner, resolve_workers
from .finding import FileContext, Finding
from .registry import Rule, get_rule, resolve_rules
from .suppress import Suppression, scan_suppressions

__all__ = ["LintReport", "lint_paths", "lint_source", "discover_files"]

#: Directory names never descended into during discovery.
_SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", "output"})


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run."""

    findings: Tuple[Finding, ...]
    suppressed: Tuple[Finding, ...]
    n_files: int

    @property
    def clean(self) -> bool:
        return not self.findings


def discover_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand the given paths into a sorted, de-duplicated file list.

    Explicit files are taken as-is; directories are searched
    recursively for ``*.py``, skipping cache/VCS/output directories.
    A path that does not exist is an error — a typo must not silently
    lint nothing.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = set(candidate.parts)
                if parts & _SKIPPED_DIRS:
                    continue
                files.append(candidate)
        else:
            raise LintError(f"lint target {path} does not exist")
    seen: Dict[Path, None] = {}
    for file in files:
        seen.setdefault(file, None)
    return list(seen)


def lint_source(
    source: str,
    path: Union[str, Path] = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Lint one source text; returns (active findings, suppressed).

    The in-memory entry point the per-file unit and the tests share.
    """
    path = Path(path)
    if rules is None:
        rules = resolve_rules()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        raise LintError(f"cannot parse {path}: {error}") from error
    ctx = FileContext(path=path, source=source, tree=tree)
    suppressions = scan_suppressions(source)
    active_ids = {rule.rule_id for rule in rules}

    raw: List[Finding] = []
    for rule in rules:
        if rule.check is None:
            continue
        for line, col, message in rule.check(ctx):
            raw.append(
                Finding(
                    rule=rule.rule_id,
                    severity=rule.severity,
                    path=path.as_posix(),
                    line=line,
                    col=col,
                    message=message,
                )
            )

    findings: List[Finding] = []
    suppressed: List[Finding] = []
    used: Dict[Tuple[int, int], List[str]] = {}
    for finding in raw:
        match = _matching_suppression(suppressions, finding)
        if match is not None and match.reason:
            suppressed.append(finding.suppress(match.reason))
            used.setdefault((match.line, match.col), []).append(finding.rule)
        else:
            findings.append(finding)

    if "REP000" in active_ids:
        findings.extend(
            _audit_suppressions(ctx, suppressions, used, active_ids)
        )
    findings.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return findings, suppressed


def _matching_suppression(
    suppressions: Dict[int, List[Suppression]], finding: Finding
) -> Optional[Suppression]:
    for suppression in suppressions.get(finding.line, ()):
        if suppression.covers(finding.rule):
            return suppression
    return None


def _audit_suppressions(
    ctx: FileContext,
    suppressions: Dict[int, List[Suppression]],
    used: Dict[Tuple[int, int], List[str]],
    active_ids: AbstractSet[str],
) -> List[Finding]:
    """REP000: reasons present, rule ids known, every suppression earns
    its keep (only judged for rules active in this run)."""
    meta = get_rule("REP000")
    audit: List[Finding] = []

    def report(suppression: Suppression, message: str) -> None:
        audit.append(
            Finding(
                rule=meta.rule_id,
                severity=meta.severity,
                path=ctx.path.as_posix(),
                line=suppression.line,
                col=suppression.col,
                message=message,
            )
        )

    for entries in suppressions.values():
        for suppression in entries:
            if not suppression.rule_ids:
                report(suppression, "suppression names no rule id")
                continue
            unknown = [
                rule_id
                for rule_id in suppression.rule_ids
                if not _is_known_rule(rule_id)
            ]
            if unknown:
                report(
                    suppression,
                    f"suppression names unknown rule(s): {', '.join(unknown)}",
                )
                continue
            if not suppression.reason:
                report(
                    suppression,
                    "suppression without a reason; write "
                    "'# repro: lint-ok[RULE] why this is safe'",
                )
                continue
            judged = [r for r in suppression.rule_ids if r in active_ids]
            hit = used.get((suppression.line, suppression.col), [])
            unused = [r for r in judged if r not in hit]
            if judged and unused:
                report(
                    suppression,
                    f"suppression for {', '.join(unused)} masks nothing "
                    "on this line; remove it",
                )
    return audit


def _is_known_rule(rule_id: str) -> bool:
    try:
        get_rule(rule_id)
    except LintError:
        return False
    return True


@dataclass(frozen=True)
class _LintFileTask:
    """Pool-safe unit body: lint one file with the given rule filters."""

    path: str
    select: Optional[Tuple[str, ...]] = None
    ignore: Optional[Tuple[str, ...]] = None

    def __call__(self) -> Tuple[Tuple[Finding, ...], Tuple[Finding, ...]]:
        rules = resolve_rules(self.select, self.ignore)
        try:
            source = Path(self.path).read_text()
        except OSError as error:
            raise LintError(f"cannot read {self.path}: {error}") from error
        findings, suppressed = lint_source(source, self.path, rules)
        return tuple(findings), tuple(suppressed)


def lint_paths(
    paths: Sequence[Union[str, Path]],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    workers: Union[None, int, str] = None,
) -> LintReport:
    """Lint files or directory trees and aggregate one report.

    ``select``/``ignore`` filter the rule set (validated up front);
    ``workers`` follows the CLI convention of the other commands
    (``None``/``0``/``"serial"`` serial, ``"auto"`` one per CPU).
    """
    resolve_rules(select, ignore)  # validate filters before any work
    files = discover_files(paths)
    select_t = tuple(select) if select is not None else None
    ignore_t = tuple(ignore) if ignore is not None else None
    units = [
        RunUnit(
            unit_id=Path(file).as_posix(),
            payload={"path": Path(file).as_posix()},
            run=_LintFileTask(str(file), select_t, ignore_t),
        )
        for file in files
    ]
    worker_count = resolve_workers(workers)
    if worker_count is None or len(units) <= 1:
        result = Runner(keep_going=True).run(units)
    else:
        result = PoolRunner(keep_going=True, workers=worker_count).run(units)
    broken = [
        f"{outcome.unit_id}: {(outcome.error or {}).get('message', 'unknown error')}"
        for outcome in result.failed
    ]
    if broken:
        raise LintError(
            "lint failed on {} file(s): {}".format(len(broken), "; ".join(broken))
        )
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for file_findings, file_suppressed in result.values():
        findings.extend(file_findings)
        suppressed.extend(file_suppressed)
    findings.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return LintReport(
        findings=tuple(findings),
        suppressed=tuple(suppressed),
        n_files=len(files),
    )
