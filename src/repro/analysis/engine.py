"""The lint engine: file discovery, rule execution, suppression audit.

Each file is one :class:`~repro.runner.engine.RunUnit`, so linting runs
through the same machinery as sweeps and reports: serial by default,
fanned out over a :class:`~repro.runner.pool.PoolRunner` when
``workers`` is given.  The per-file task is a module-level dataclass —
the engine obeys its own REP004 rule — and a checker crash in one file
is isolated, collected, and re-raised as a single
:class:`~repro.errors.LintError` naming every broken file.

The optional **program phase** (``program=True``) adds whole-program
rules (REP007–REP011) in two steps that keep the parallel shape: a
serial graph build (per-file summaries, content-hash cached, linked
into a :class:`~repro.analysis.program.graph.Program`) followed by
per-rule evaluation units that fan out over the same pool.  Program
findings go through the same suppression filter, driven by the
suppression sites carried in the module summaries, and REP000 audits
program-rule suppressions after the program phase (the per-file audit
only judges file-scope rules, so a ``lint-ok[REP007]`` is never
reported unused just because the program phase was off for that file's
unit).

The optional **cache** (``cache=<path>``) skips re-linting and
re-summarizing files whose sha256 is unchanged; see
:mod:`repro.analysis.cache` for the invalidation rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import (
    AbstractSet,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .. import __version__
from ..errors import LintError
from ..runner.engine import Runner, RunResult, RunUnit
from ..runner.pool import PoolRunner, resolve_workers
from .cache import LintCache, file_sha256, ruleset_key
from .finding import FileContext, Finding
from .program.graph import Program, link_program
from .program.summary import ModuleSummary, summarize_source
from .registry import Rule, get_rule, resolve_rules
from .suppress import Suppression, scan_suppressions

__all__ = ["LintReport", "lint_paths", "lint_source", "discover_files"]

#: Directory names never descended into during discovery.
_SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", "output"})


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run."""

    findings: Tuple[Finding, ...]
    suppressed: Tuple[Finding, ...]
    n_files: int
    n_cached: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def discover_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand the given paths into a sorted, de-duplicated file list.

    Explicit files are taken as-is; directories are searched
    recursively for ``*.py``, skipping cache/VCS/output directories.
    A path that does not exist is an error — a typo must not silently
    lint nothing.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = set(candidate.parts)
                if parts & _SKIPPED_DIRS:
                    continue
                files.append(candidate)
        else:
            raise LintError(f"lint target {path} does not exist")
    seen: Dict[Path, None] = {}
    for file in files:
        seen.setdefault(file, None)
    return list(seen)


def lint_source(
    source: str,
    path: Union[str, Path] = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Lint one source text; returns (active findings, suppressed).

    The in-memory entry point the per-file unit and the tests share.
    Program-scope rules are engine-level and are filtered out here:
    they cannot run on a single file, and the REP000 audit must not
    judge their suppressions against a phase that did not run.
    """
    path = Path(path)
    if rules is None:
        rules = resolve_rules()
    rules = tuple(rule for rule in rules if rule.scope == "file")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        raise LintError(f"cannot parse {path}: {error}") from error
    ctx = FileContext(path=path, source=source, tree=tree)
    suppressions = scan_suppressions(source)
    active_ids = {rule.rule_id for rule in rules}

    raw: List[Finding] = []
    for rule in rules:
        if rule.check is None:
            continue
        for line, col, message in rule.check(ctx):
            raw.append(
                Finding(
                    rule=rule.rule_id,
                    severity=rule.severity,
                    path=path.as_posix(),
                    line=line,
                    col=col,
                    message=message,
                )
            )

    findings: List[Finding] = []
    suppressed: List[Finding] = []
    used: Dict[Tuple[int, int], List[str]] = {}
    for finding in raw:
        match = _matching_suppression(suppressions, finding)
        if match is not None and match.reason:
            suppressed.append(finding.suppress(match.reason))
            used.setdefault((match.line, match.col), []).append(finding.rule)
        else:
            findings.append(finding)

    if "REP000" in active_ids:
        findings.extend(
            _audit_suppressions(ctx, suppressions, used, active_ids)
        )
    findings.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return findings, suppressed


def _matching_suppression(
    suppressions: Dict[int, List[Suppression]], finding: Finding
) -> Optional[Suppression]:
    for suppression in suppressions.get(finding.line, ()):
        if suppression.covers(finding.rule):
            return suppression
    return None


def _audit_suppressions(
    ctx: FileContext,
    suppressions: Dict[int, List[Suppression]],
    used: Dict[Tuple[int, int], List[str]],
    active_ids: AbstractSet[str],
) -> List[Finding]:
    """REP000: reasons present, rule ids known, every suppression earns
    its keep (only judged for file-scope rules active in this run;
    program-rule suppressions are audited by the program phase)."""
    meta = get_rule("REP000")
    audit: List[Finding] = []

    def report(suppression: Suppression, message: str) -> None:
        audit.append(
            Finding(
                rule=meta.rule_id,
                severity=meta.severity,
                path=ctx.path.as_posix(),
                line=suppression.line,
                col=suppression.col,
                message=message,
            )
        )

    seen: Set[Tuple[int, int]] = set()
    for entries in suppressions.values():
        for suppression in entries:
            # A multiline-statement suppression is registered under
            # every line it covers; audit each comment exactly once.
            key = (suppression.line, suppression.col)
            if key in seen:
                continue
            seen.add(key)
            if not suppression.rule_ids:
                report(suppression, "suppression names no rule id")
                continue
            unknown = [
                rule_id
                for rule_id in suppression.rule_ids
                if not _is_known_rule(rule_id)
            ]
            if unknown:
                report(
                    suppression,
                    f"suppression names unknown rule(s): {', '.join(unknown)}",
                )
                continue
            if not suppression.reason:
                report(
                    suppression,
                    "suppression without a reason; write "
                    "'# repro: lint-ok[RULE] why this is safe'",
                )
                continue
            judged = [
                r
                for r in suppression.rule_ids
                if r in active_ids and get_rule(r).scope == "file"
            ]
            hit = used.get((suppression.line, suppression.col), [])
            unused = [r for r in judged if r not in hit]
            if judged and unused:
                report(
                    suppression,
                    f"suppression for {', '.join(unused)} masks nothing "
                    "on this line; remove it",
                )
    return audit


def _is_known_rule(rule_id: str) -> bool:
    try:
        get_rule(rule_id)
    except LintError:
        return False
    return True


@dataclass(frozen=True)
class _LintFileTask:
    """Pool-safe unit body: lint one file with the given rule filters."""

    path: str
    select: Optional[Tuple[str, ...]] = None
    ignore: Optional[Tuple[str, ...]] = None

    def __call__(self) -> Tuple[Tuple[Finding, ...], Tuple[Finding, ...]]:
        rules = resolve_rules(self.select, self.ignore)
        try:
            source = Path(self.path).read_text()
        except OSError as error:
            raise LintError(f"cannot read {self.path}: {error}") from error
        findings, suppressed = lint_source(source, self.path, rules)
        return tuple(findings), tuple(suppressed)


@dataclass(frozen=True)
class _ProgramRuleTask:
    """Pool-safe unit body: evaluate one program rule over the graph."""

    rule_id: str
    program: Program

    def __call__(self) -> Tuple[Tuple[str, int, int, str], ...]:
        rule = get_rule(self.rule_id)
        if rule.program_check is None:
            raise LintError(f"{self.rule_id} is not a whole-program rule")
        return tuple(rule.program_check(self.program))


def _run_units(
    units: List[RunUnit], workers: Union[None, int, str]
) -> RunResult:
    worker_count = resolve_workers(workers)
    if worker_count is None or len(units) <= 1:
        return Runner(keep_going=True).run(units)
    return PoolRunner(keep_going=True, workers=worker_count).run(units)


def _raise_broken(result: RunResult) -> None:
    broken = [
        f"{outcome.unit_id}: {(outcome.error or {}).get('message', 'unknown error')}"
        for outcome in result.failed
    ]
    if broken:
        raise LintError(
            "lint failed on {} file(s): {}".format(len(broken), "; ".join(broken))
        )


def _build_summaries(
    files: Sequence[Path],
    posix_files: Sequence[str],
    shas: Dict[str, str],
    cache: Optional[LintCache],
) -> List[ModuleSummary]:
    """The serial, cached graph-build half of the program phase."""
    summaries: List[ModuleSummary] = []
    errors: List[str] = []
    for file, posix in zip(files, posix_files):
        summary: Optional[ModuleSummary] = None
        if cache is not None:
            summary = cache.lookup_summary(posix, shas[posix])
        if summary is None:
            try:
                source = Path(file).read_text()
            except OSError as error:
                errors.append(f"{posix}: cannot read: {error}")
                continue
            try:
                summary = summarize_source(source, posix)
            except SyntaxError as error:
                errors.append(f"{posix}: cannot parse: {error}")
                continue
            if cache is not None:
                cache.store_summary(posix, shas[posix], summary)
        summaries.append(summary)
    if errors:
        raise LintError(
            "lint failed on {} file(s): {}".format(len(errors), "; ".join(errors))
        )
    return summaries


def _program_phase(
    program: Program,
    program_rules: Sequence[Rule],
    workers: Union[None, int, str],
    audit_unused: bool,
) -> Tuple[List[Finding], List[Finding]]:
    """Evaluate program rules, apply suppressions, audit their usage."""
    units = [
        RunUnit(
            unit_id=rule.rule_id,
            payload={"rule": rule.rule_id},
            run=_ProgramRuleTask(rule.rule_id, program),
        )
        for rule in program_rules
    ]
    result = _run_units(units, workers)
    broken = [
        f"{outcome.unit_id}: {(outcome.error or {}).get('message', 'unknown error')}"
        for outcome in result.failed
    ]
    if broken:
        raise LintError(
            "program analysis failed on {} rule(s): {}".format(
                len(broken), "; ".join(broken)
            )
        )
    rule_map = {rule.rule_id: rule for rule in program_rules}
    raw: List[Finding] = []
    for outcome in result.completed:
        rule = rule_map[outcome.unit_id]
        for path, line, col, message in outcome.value:
            raw.append(
                Finding(
                    rule=rule.rule_id,
                    severity=rule.severity,
                    path=path,
                    line=line,
                    col=col,
                    message=message,
                )
            )

    findings: List[Finding] = []
    suppressed: List[Finding] = []
    used: Dict[Tuple[str, int, int], Set[str]] = {}
    for finding in raw:
        summary = program.by_path.get(finding.path)
        matched = None
        if summary is not None:
            for site in summary.suppressions:
                if site.covers(finding.rule, finding.line):
                    matched = site
                    break
        if matched is not None:
            suppressed.append(finding.suppress(matched.reason))
            used.setdefault(
                (finding.path, matched.line, matched.col), set()
            ).add(finding.rule)
        else:
            findings.append(finding)

    if audit_unused:
        meta = get_rule("REP000")
        program_ids = set(rule_map)
        for summary in program.by_path.values():
            for site in summary.suppressions:
                if not site.rule_ids or not site.reason:
                    continue  # the per-file audit reports these
                if any(not _is_known_rule(r) for r in site.rule_ids):
                    continue
                judged = [r for r in site.rule_ids if r in program_ids]
                hit = used.get((summary.path, site.line, site.col), set())
                unused = [r for r in judged if r not in hit]
                if judged and unused:
                    findings.append(
                        Finding(
                            rule=meta.rule_id,
                            severity=meta.severity,
                            path=summary.path,
                            line=site.line,
                            col=site.col,
                            message=(
                                f"suppression for {', '.join(unused)} masks "
                                "nothing on this line; remove it"
                            ),
                        )
                    )
    return findings, suppressed


def lint_paths(
    paths: Sequence[Union[str, Path]],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    workers: Union[None, int, str] = None,
    *,
    program: bool = False,
    cache: Union[None, str, Path] = None,
) -> LintReport:
    """Lint files or directory trees and aggregate one report.

    ``select``/``ignore`` filter the rule set (validated up front);
    ``workers`` follows the CLI convention of the other commands
    (``None``/``0``/``"serial"`` serial, ``"auto"`` one per CPU).
    ``program=True`` enables the whole-program phase (REP007–REP011);
    explicitly selecting a program rule without it is an error rather
    than a silent no-op.  ``cache`` names a content-hash cache file
    (see :mod:`repro.analysis.cache`); ``None`` disables caching.
    """
    rules = resolve_rules(select, ignore)  # validates filters up front
    program_rules = tuple(rule for rule in rules if rule.scope == "program")
    file_rules = tuple(rule for rule in rules if rule.scope == "file")
    if not program and program_rules and select is not None:
        names = ", ".join(rule.rule_id for rule in program_rules)
        raise LintError(
            f"{names} require(s) whole-program analysis; pass --program"
        )
    if not program:
        program_rules = ()
    files = discover_files(paths)
    posix_files = [Path(file).as_posix() for file in files]

    cache_obj: Optional[LintCache] = None
    shas: Dict[str, str] = {}
    if cache is not None or program_rules:
        for file, posix in zip(files, posix_files):
            try:
                shas[posix] = file_sha256(Path(file).read_bytes())
            except OSError as error:
                raise LintError(f"cannot read {posix}: {error}") from error
    if cache is not None:
        key = ruleset_key(__version__, [rule.rule_id for rule in file_rules])
        cache_obj = LintCache.load(Path(cache), key)

    findings: List[Finding] = []
    suppressed: List[Finding] = []
    n_cached = 0

    if file_rules:
        select_t = tuple(select) if select is not None else None
        ignore_t = tuple(ignore) if ignore is not None else None
        pending: List[str] = []
        for posix in posix_files:
            if cache_obj is not None:
                hit = cache_obj.lookup_findings(posix, shas[posix])
                if hit is not None:
                    findings.extend(hit[0])
                    suppressed.extend(hit[1])
                    n_cached += 1
                    continue
            pending.append(posix)
        if pending:
            units = [
                RunUnit(
                    unit_id=posix,
                    payload={"path": posix},
                    run=_LintFileTask(posix, select_t, ignore_t),
                )
                for posix in pending
            ]
            result = _run_units(units, workers)
            _raise_broken(result)
            for outcome in result.completed:
                file_findings, file_suppressed = outcome.value
                findings.extend(file_findings)
                suppressed.extend(file_suppressed)
                if cache_obj is not None:
                    cache_obj.store_findings(
                        outcome.unit_id,
                        shas[outcome.unit_id],
                        file_findings,
                        file_suppressed,
                    )

    if program_rules:
        summaries = _build_summaries(files, posix_files, shas, cache_obj)
        linked = link_program(summaries)
        audit_unused = any(rule.rule_id == "REP000" for rule in file_rules)
        program_findings, program_suppressed = _program_phase(
            linked, program_rules, workers, audit_unused
        )
        findings.extend(program_findings)
        suppressed.extend(program_suppressed)

    if cache_obj is not None:
        cache_obj.save()

    findings.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return LintReport(
        findings=tuple(findings),
        suppressed=tuple(suppressed),
        n_files=len(files),
        n_cached=n_cached,
    )
