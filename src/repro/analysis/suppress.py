"""Inline suppressions: ``# repro: lint-ok[RULE-ID] reason``.

A suppression masks findings of the named rule(s) on its own line, or —
when written as a comment-only line — on the line directly below it,
which keeps long flagged statements readable.  The reason is
mandatory; a reason-less suppression does not suppress and is itself
reported under REP000, as is a suppression naming an unknown rule or
one that masks nothing.  This keeps the exemption inventory honest:
``repro lint`` output plus the suppression comments in the tree are
together the complete, explained list of contract deviations.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["Suppression", "scan_suppressions"]

_PATTERN = re.compile(
    r"#\s*repro:\s*lint-ok\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*?)\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed suppression comment.

    ``line``/``col`` locate the comment itself (for reporting);
    ``applies_to`` is the line whose findings it masks — the same line
    for a trailing comment, the next line for a comment-only line.
    """

    line: int
    col: int
    applies_to: int
    rule_ids: Tuple[str, ...]
    reason: str

    def covers(self, rule_id: str) -> bool:
        return rule_id in self.rule_ids


def scan_suppressions(source: str) -> Dict[int, List[Suppression]]:
    """All suppression comments in a file, keyed by the line they mask.

    Tokenizer-based, so only genuine ``#`` comments count — a
    suppression example quoted inside a docstring or string literal is
    inert (the docstrings of this very package would otherwise lint
    themselves).
    """
    found: Dict[int, List[Suppression]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return found  # the file already failed/will fail to parse
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PATTERN.search(token.string)
        if match is None:
            continue
        lineno, col = token.start
        standalone = not token.line[:col].strip()
        rule_ids = tuple(
            part.strip().upper()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        suppression = Suppression(
            line=lineno,
            col=col + match.start() + 1,
            applies_to=lineno + 1 if standalone else lineno,
            rule_ids=rule_ids,
            reason=match.group("reason").strip(),
        )
        found.setdefault(suppression.applies_to, []).append(suppression)
    return found
