"""Inline suppressions: ``# repro: lint-ok[RULE-ID] reason``.

A suppression masks findings of the named rule(s) on its own line, or —
when written as a comment-only line — on the line directly below it,
which keeps long flagged statements readable.  A trailing comment on
any physical line of a multiline statement covers the whole statement
up to that line, so the idiomatic ``)  # repro: lint-ok[...]`` on the
closing paren masks a finding reported at the statement's first line
(and vice versa).  The reason is
mandatory; a reason-less suppression does not suppress and is itself
reported under REP000, as is a suppression naming an unknown rule or
one that masks nothing.  This keeps the exemption inventory honest:
``repro lint`` output plus the suppression comments in the tree are
together the complete, explained list of contract deviations.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["Suppression", "scan_suppressions"]

_PATTERN = re.compile(
    r"#\s*repro:\s*lint-ok\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*?)\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed suppression comment.

    ``line``/``col`` locate the comment itself (for reporting);
    ``applies_to`` is the primary line it masks — the comment's own
    line for a trailing comment, the next line for a comment-only
    line.  When the comment trails a multiline statement the
    suppression is additionally registered (in the scan result) under
    every physical line of that statement up to the comment, so a
    finding reported anywhere in the statement is covered.
    """

    line: int
    col: int
    applies_to: int
    rule_ids: Tuple[str, ...]
    reason: str

    def covers(self, rule_id: str) -> bool:
        return rule_id in self.rule_ids


def scan_suppressions(source: str) -> Dict[int, List[Suppression]]:
    """All suppression comments in a file, keyed by the line they mask.

    Tokenizer-based, so only genuine ``#`` comments count — a
    suppression example quoted inside a docstring or string literal is
    inert (the docstrings of this very package would otherwise lint
    themselves).
    """
    found: Dict[int, List[Suppression]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return found  # the file already failed/will fail to parse
    # Lines of the logical statement currently being tokenized: the
    # first "real" token after a NEWLINE opens a statement; NEWLINE
    # (not NL, which is a continuation) closes it.  This lets a
    # trailing comment on any physical line of a multiline statement
    # cover the statement back to its first line.
    stmt_start: Optional[int] = None
    _inert = (
        tokenize.NEWLINE,
        tokenize.NL,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.COMMENT,
        tokenize.ENDMARKER,
    )
    for token in tokens:
        if token.type == tokenize.NEWLINE:
            stmt_start = None
        elif token.type not in _inert and stmt_start is None:
            stmt_start = token.start[0]
        if token.type != tokenize.COMMENT:
            continue
        match = _PATTERN.search(token.string)
        if match is None:
            continue
        lineno, col = token.start
        standalone = not token.line[:col].strip()
        rule_ids = tuple(
            part.strip().upper()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        if standalone:
            # A comment-only line masks the next line; inside an open
            # multiline statement it also masks the statement's start,
            # where most checkers report their finding.
            covered = {lineno + 1}
            if stmt_start is not None:
                covered.add(stmt_start)
        else:
            first = stmt_start if stmt_start is not None else lineno
            covered = set(range(first, lineno + 1))
        suppression = Suppression(
            line=lineno,
            col=col + match.start() + 1,
            applies_to=lineno + 1 if standalone else lineno,
            rule_ids=rule_ids,
            reason=match.group("reason").strip(),
        )
        for masked_line in sorted(covered):
            found.setdefault(masked_line, []).append(suppression)
    return found
