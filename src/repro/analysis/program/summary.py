"""Pass 1 of whole-program analysis: per-file module summaries.

A :class:`ModuleSummary` is everything the linker needs to know about
one source file, expressed as plain frozen dataclasses over strings and
ints — no AST nodes — so summaries pickle cleanly to pool workers and
round-trip through the JSON lint cache (:meth:`ModuleSummary.to_record`
/ :meth:`ModuleSummary.from_record`).  Extraction is the expensive,
per-file half of the program phase; it is cached by content hash so a
warm run only re-parses edited files.

Name handling: call sites keep the *raw* dotted name as written
(``self.memo.load``, ``helper``); the summary also carries the module's
import alias map with relative imports resolved to absolute dotted
paths, and the linker does all cross-module resolution.  Sink
classification (blocking / clock / RNG / write) happens here because it
only needs the alias map, and it reuses the exact matching logic of the
per-file rules so suppression semantics line up.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from ..finding import dotted_name
from ..rules.atomic_writes import _OPENERS, _PATH_WRITERS, _literal_mode
from ..rules.determinism import _SEEDABLE_CONSTRUCTORS, _WALL_CLOCKS
from ..suppress import Suppression, scan_suppressions

__all__ = [
    "SUMMARY_SCHEMA",
    "CallSite",
    "SinkSite",
    "RaiseSite",
    "ReturnSite",
    "UnitSite",
    "SuppressionSite",
    "FunctionSummary",
    "ClassSummary",
    "ModuleSummary",
    "module_name_for",
    "summarize_source",
]

#: Bumped whenever extraction output changes; cached summaries with a
#: different schema are discarded, never reinterpreted.
SUMMARY_SCHEMA = 1

_PACKAGE_MARKER = "src/repro/"

#: Canonical dotted names that block the event loop when awaited from
#: nothing (REP007 sinks).  ``subprocess.*`` is matched by prefix.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "socket.create_connection",
    }
)
_BLOCKING_PREFIXES = ("subprocess.",)

#: Attribute calls that block regardless of receiver type: pool/future
#: joins and pathlib's synchronous file I/O.
_BLOCKING_ATTRS = frozenset(
    {"result", "read_text", "read_bytes", "write_text", "write_bytes"}
)

#: Call targets that hand their function-valued arguments to a thread
#: pool: those references are *bridged*, not blocking-in-async.
_BRIDGE_ATTRS = frozenset({"run_in_executor"})
_BRIDGE_CALLS = frozenset({"asyncio.to_thread"})

_PARTIAL_NAMES = frozenset({"functools.partial", "partial"})


@dataclass(frozen=True)
class CallSite:
    """One call edge candidate inside a function body.

    ``kind`` is ``"call"`` for a real invocation, ``"ref"`` for a
    function passed as an argument (a deferred call — traversed by
    reachability, not by blocking-taint), ``"bridge"`` for a callable
    handed to ``run_in_executor``/``asyncio.to_thread``.  ``name`` is
    the raw dotted target, or None when the callee is dynamic
    (``getattr(...)(...)``, a call on a call result) — the linker keeps
    those as explicit *unknown callees* so nothing is falsely "safe".
    """

    line: int
    col: int
    kind: str
    name: Optional[str]


@dataclass(frozen=True)
class SinkSite:
    """A direct contract-relevant effect inside a function body.

    ``kind``: ``blocking`` (sync I/O / sleeps / subprocess / future
    joins), ``clock`` (wall-clock read), ``rng`` (global or legacy RNG
    draw), ``write`` (non-atomic file write).  ``suppressed`` is True
    when the corresponding *per-file* rule (REP001 for writes, REP002
    for clock/RNG) is suppressed at this site — documented deviations
    do not generate interprocedural taint.
    """

    line: int
    col: int
    kind: str
    detail: str
    suppressed: bool = False


@dataclass(frozen=True)
class RaiseSite:
    """A ``raise`` statement with a resolvable exception name."""

    line: int
    col: int
    name: str  # raw dotted name as written


@dataclass(frozen=True)
class ReturnSite:
    """What a ``return`` statement hands back, for pickle-flow taint.

    ``kind``: ``lambda`` (a lambda or a name bound to a local lambda),
    ``nested`` (a locally-defined function), ``call`` (the value of
    another call — taint flows from the callee), ``partial`` (a
    functools.partial whose target is ``name``).
    """

    line: int
    kind: str
    name: Optional[str] = None


@dataclass(frozen=True)
class UnitSite:
    """A ``RunUnit(...)`` construction with one shipped slot's shape.

    ``kind``: ``name`` (a bare/dotted name — resolved by the linker;
    flagged when it lands on a module-level lambda), ``call`` (the slot
    receives another call's return value — flagged when the callee may
    return an unpicklable), ``partial`` (``functools.partial(name,
    ...)``), ``direct`` (lambda/nested-def written in place — REP004's
    per-file business, skipped here), ``other`` (anything else).
    """

    line: int
    col: int
    slot: str
    kind: str
    name: Optional[str] = None


@dataclass(frozen=True)
class SuppressionSite:
    """A suppression comment, carried for program-phase filtering."""

    line: int
    col: int
    covered: Tuple[int, ...]
    rule_ids: Tuple[str, ...]
    reason: str

    def covers(self, rule_id: str, at_line: int) -> bool:
        return bool(self.reason) and rule_id in self.rule_ids and at_line in self.covered


@dataclass(frozen=True)
class FunctionSummary:
    """One function/method/nested def, with its body events."""

    name: str
    qualname: str
    line: int
    col: int
    is_async: bool
    owner_class: str = ""  # qualname of the lexically enclosing class, if any
    decorators: Tuple[str, ...] = ()
    calls: Tuple[CallSite, ...] = ()
    sinks: Tuple[SinkSite, ...] = ()
    raises: Tuple[RaiseSite, ...] = ()
    returns: Tuple[ReturnSite, ...] = ()
    local_funcs: Tuple[str, ...] = ()  # bare names of directly nested defs


@dataclass(frozen=True)
class ClassSummary:
    """One class: bases, method names, and inferred attribute types."""

    name: str
    qualname: str
    line: int
    bases: Tuple[str, ...] = ()  # raw dotted names
    methods: Tuple[str, ...] = ()  # bare method names
    #: ``self.X = SomeClass(...)`` / ``SomeClass.factory(...)`` sites:
    #: (attribute name, raw dotted constructor target).
    attr_types: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class ModuleSummary:
    """Everything the linker needs to know about one source file."""

    module: str
    path: str
    is_package: bool = False
    aliases: Tuple[Tuple[str, str], ...] = ()
    functions: Tuple[FunctionSummary, ...] = ()
    classes: Tuple[ClassSummary, ...] = ()
    unit_sites: Tuple[UnitSite, ...] = ()
    module_lambdas: Tuple[str, ...] = ()
    suppressions: Tuple[SuppressionSite, ...] = ()

    def to_record(self) -> Dict[str, Any]:
        """JSON-safe representation for the lint cache."""
        return {
            "schema": SUMMARY_SCHEMA,
            "module": self.module,
            "path": self.path,
            "is_package": self.is_package,
            "aliases": [list(pair) for pair in self.aliases],
            "functions": [_fn_record(fn) for fn in self.functions],
            "classes": [_cls_record(cls) for cls in self.classes],
            "unit_sites": [
                [u.line, u.col, u.slot, u.kind, u.name] for u in self.unit_sites
            ],
            "module_lambdas": list(self.module_lambdas),
            "suppressions": [
                [s.line, s.col, list(s.covered), list(s.rule_ids), s.reason]
                for s in self.suppressions
            ],
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=record["module"],
            path=record["path"],
            is_package=record["is_package"],
            aliases=tuple((a, b) for a, b in record["aliases"]),
            functions=tuple(_fn_from_record(r) for r in record["functions"]),
            classes=tuple(_cls_from_record(r) for r in record["classes"]),
            unit_sites=tuple(
                UnitSite(line=r[0], col=r[1], slot=r[2], kind=r[3], name=r[4])
                for r in record["unit_sites"]
            ),
            module_lambdas=tuple(record["module_lambdas"]),
            suppressions=tuple(
                SuppressionSite(
                    line=r[0],
                    col=r[1],
                    covered=tuple(r[2]),
                    rule_ids=tuple(r[3]),
                    reason=r[4],
                )
                for r in record["suppressions"]
            ),
        )


def _fn_record(fn: FunctionSummary) -> Dict[str, Any]:
    return {
        "name": fn.name,
        "qualname": fn.qualname,
        "line": fn.line,
        "col": fn.col,
        "is_async": fn.is_async,
        "owner_class": fn.owner_class,
        "decorators": list(fn.decorators),
        "calls": [[c.line, c.col, c.kind, c.name] for c in fn.calls],
        "sinks": [[s.line, s.col, s.kind, s.detail, s.suppressed] for s in fn.sinks],
        "raises": [[r.line, r.col, r.name] for r in fn.raises],
        "returns": [[r.line, r.kind, r.name] for r in fn.returns],
        "local_funcs": list(fn.local_funcs),
    }


def _fn_from_record(record: Dict[str, Any]) -> FunctionSummary:
    return FunctionSummary(
        name=record["name"],
        qualname=record["qualname"],
        line=record["line"],
        col=record["col"],
        is_async=record["is_async"],
        owner_class=record["owner_class"],
        decorators=tuple(record["decorators"]),
        calls=tuple(
            CallSite(line=c[0], col=c[1], kind=c[2], name=c[3])
            for c in record["calls"]
        ),
        sinks=tuple(
            SinkSite(line=s[0], col=s[1], kind=s[2], detail=s[3], suppressed=s[4])
            for s in record["sinks"]
        ),
        raises=tuple(
            RaiseSite(line=r[0], col=r[1], name=r[2]) for r in record["raises"]
        ),
        returns=tuple(
            ReturnSite(line=r[0], kind=r[1], name=r[2]) for r in record["returns"]
        ),
        local_funcs=tuple(record["local_funcs"]),
    )


def _cls_record(cls: ClassSummary) -> Dict[str, Any]:
    return {
        "name": cls.name,
        "qualname": cls.qualname,
        "line": cls.line,
        "bases": list(cls.bases),
        "methods": list(cls.methods),
        "attr_types": [list(pair) for pair in cls.attr_types],
    }


def _cls_from_record(record: Dict[str, Any]) -> ClassSummary:
    return ClassSummary(
        name=record["name"],
        qualname=record["qualname"],
        line=record["line"],
        bases=tuple(record["bases"]),
        methods=tuple(record["methods"]),
        attr_types=tuple((a, b) for a, b in record["attr_types"]),
    )


def module_name_for(path: Union[str, Path]) -> Tuple[str, bool]:
    """Dotted module name for a file, and whether it is a package.

    Files under a ``src/repro/`` marker (the real tree and the fixture
    trees that mimic it) get their true dotted name, so cross-module
    imports link; anything else (benchmarks, examples) is a standalone
    top-level module named by its stem.
    """
    posix = Path(path).as_posix()
    if _PACKAGE_MARKER in posix:
        rel = posix.rsplit(_PACKAGE_MARKER, 1)[1]
        parts = rel[:-3].split("/") if rel.endswith(".py") else rel.split("/")
        is_package = bool(parts) and parts[-1] == "__init__"
        if is_package:
            parts = parts[:-1]
        return ".".join(["repro"] + [p for p in parts if p]), is_package
    stem = Path(path).stem
    return stem, stem == "__init__"


def _build_aliases(
    tree: ast.Module, module: str, is_package: bool
) -> Dict[str, str]:
    """Local name -> absolute dotted path, relative imports resolved."""
    container = module.split(".")
    if not is_package:
        container = container[:-1]
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                cut = len(container) - (node.level - 1)
                if cut < 0:
                    continue  # beyond the package root; unresolvable
                anchor = container[:cut]
                base = ".".join(anchor + ([node.module] if node.module else []))
            elif node.module:
                base = node.module
            else:
                continue
            if not base:
                continue
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{base}.{item.name}"
    return aliases


@dataclass
class _FunctionAccumulator:
    """Mutable scratch while walking one function body."""

    name: str
    qualname: str
    line: int
    col: int
    is_async: bool
    owner_class: str
    decorators: Tuple[str, ...]
    calls: List[CallSite] = field(default_factory=list)
    sinks: List[SinkSite] = field(default_factory=list)
    raises: List[RaiseSite] = field(default_factory=list)
    returns: List[ReturnSite] = field(default_factory=list)
    local_funcs: List[str] = field(default_factory=list)
    local_lambdas: Set[str] = field(default_factory=set)

    def freeze(self) -> FunctionSummary:
        return FunctionSummary(
            name=self.name,
            qualname=self.qualname,
            line=self.line,
            col=self.col,
            is_async=self.is_async,
            owner_class=self.owner_class,
            decorators=self.decorators,
            calls=tuple(self.calls),
            sinks=tuple(self.sinks),
            raises=tuple(self.raises),
            returns=tuple(self.returns),
            local_funcs=tuple(self.local_funcs),
        )


class _Extractor:
    """One pass over a parsed module producing its summary."""

    def __init__(
        self,
        module: str,
        path: str,
        tree: ast.Module,
        aliases: Dict[str, str],
        suppressions: Dict[int, List[Suppression]],
    ) -> None:
        self.module = module
        self.path = path
        self.tree = tree
        self.aliases = aliases
        self.suppressions = suppressions
        self.functions: List[FunctionSummary] = []
        self.classes: List[ClassSummary] = []
        self.unit_sites: List[UnitSite] = []
        self.module_lambdas: List[str] = []

    # -- name helpers -------------------------------------------------

    def canonical(self, raw: Optional[str]) -> Optional[str]:
        """Alias-resolve the head segment, like the per-file rules do."""
        if raw is None:
            return None
        head, _, rest = raw.partition(".")
        head = self.aliases.get(head, head)
        return f"{head}.{rest}" if rest else head

    def _suppressed_at(self, line: int, rule_id: str) -> bool:
        return any(
            s.covers(rule_id) and s.reason
            for s in self.suppressions.get(line, ())
        )

    # -- module walk --------------------------------------------------

    def run(self) -> None:
        for stmt in self.tree.body:
            self._module_stmt(stmt)

    def _module_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._function(stmt, prefix="", owner_class="")
        elif isinstance(stmt, ast.ClassDef):
            self._class(stmt, prefix="")
        elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Lambda):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.module_lambdas.append(target.id)
        elif isinstance(stmt, (ast.If, ast.Try)):
            # Conditional defs (version guards) still define symbols.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._module_stmt(child)
        else:
            self._scan_unit_sites(stmt)

    def _class(self, node: ast.ClassDef, prefix: str) -> None:
        qualname = f"{prefix}{node.name}"
        methods: List[str] = []
        attr_types: List[Tuple[str, str]] = []
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(stmt.name)
                self._function(
                    stmt, prefix=f"{qualname}.", owner_class=qualname
                )
                attr_types.extend(self._self_assignments(stmt))
            elif isinstance(stmt, ast.ClassDef):
                self._class(stmt, prefix=f"{qualname}.")
        bases = tuple(
            name for name in (dotted_name(base) for base in node.bases) if name
        )
        # Conflicting assignments to the same attribute degrade to
        # unknown rather than guessing.
        by_attr: Dict[str, Set[str]] = {}
        for attr, target in attr_types:
            by_attr.setdefault(attr, set()).add(target)
        resolved = tuple(
            (attr, next(iter(targets)))
            for attr, targets in sorted(by_attr.items())
            if len(targets) == 1
        )
        self.classes.append(
            ClassSummary(
                name=node.name,
                qualname=qualname,
                line=node.lineno,
                bases=bases,
                methods=tuple(methods),
                attr_types=resolved,
            )
        )

    def _self_assignments(
        self, fn: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> List[Tuple[str, str]]:
        """``self.X = SomeClass(...)`` sites anywhere in a method body."""
        out: List[Tuple[str, str]] = []
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                for candidate in self._constructor_candidates(node.value):
                    out.append((target.attr, candidate))
        return out

    def _constructor_candidates(self, value: ast.expr) -> List[str]:
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            return [name] if name else []
        if isinstance(value, ast.IfExp):
            return self._constructor_candidates(
                value.body
            ) + self._constructor_candidates(value.orelse)
        return []

    # -- function walk ------------------------------------------------

    def _function(
        self,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        prefix: str,
        owner_class: str,
    ) -> None:
        qualname = f"{prefix}{node.name}"
        acc = _FunctionAccumulator(
            name=node.name,
            qualname=qualname,
            line=node.lineno,
            col=node.col_offset + 1,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            owner_class=owner_class,
            decorators=tuple(
                name
                for name in (
                    dotted_name(d.func if isinstance(d, ast.Call) else d)
                    for d in node.decorator_list
                )
                if name
            ),
        )
        nested: List[Union[ast.FunctionDef, ast.AsyncFunctionDef]] = []
        bridged: Set[int] = set()  # id() of Lambda nodes handed to bridges

        def walk(n: ast.AST) -> None:
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)):
                acc.local_funcs.append(n.name)
                nested.append(n)
                return  # its body is a separate function summary
            if isinstance(n, ast.ClassDef):
                return  # nested classes are out of scope, conservatively
            if isinstance(n, ast.Lambda):
                if id(n) in bridged:
                    return  # runs on the executor; not this function's events
                walk(n.body)
                return
            if isinstance(n, ast.Call):
                self._call(n, acc, bridged)
            elif isinstance(n, ast.Raise):
                self._raise(n, acc)
            elif isinstance(n, ast.Return):
                self._return(n, acc)
            elif isinstance(n, ast.Assign) and isinstance(n.value, ast.Lambda):
                for target in n.targets:
                    if isinstance(target, ast.Name):
                        acc.local_lambdas.add(target.id)
            for child in ast.iter_child_nodes(n):
                walk(child)

        for stmt in node.body:
            walk(stmt)
        self.functions.append(acc.freeze())
        for child in nested:
            self._function(
                child, prefix=f"{qualname}.<locals>.", owner_class=owner_class
            )

    def _is_bridge(self, call: ast.Call) -> bool:
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _BRIDGE_ATTRS
        ):
            return True
        return self.canonical(dotted_name(call.func)) in _BRIDGE_CALLS

    def _call(
        self, call: ast.Call, acc: _FunctionAccumulator, bridged: Set[int]
    ) -> None:
        raw = dotted_name(call.func)
        line, col = call.lineno, call.col_offset + 1
        if self._is_bridge(call):
            # run_in_executor(executor, fn, *args) / to_thread(fn, ...):
            # the callable argument runs on a worker thread.
            skip = (
                1
                if isinstance(call.func, ast.Attribute)
                and call.func.attr in _BRIDGE_ATTRS
                else 0
            )
            for arg in call.args[skip : skip + 1]:
                if isinstance(arg, ast.Lambda):
                    bridged.add(id(arg))
                    acc.calls.append(CallSite(line, col, "bridge", None))
                else:
                    target = dotted_name(arg)
                    if target is None and isinstance(arg, ast.Call):
                        # partial(fn, ...) under the bridge: fn is bridged
                        inner = dotted_name(arg.func)
                        if self.canonical(inner) in _PARTIAL_NAMES and arg.args:
                            target = dotted_name(arg.args[0])
                    acc.calls.append(CallSite(line, col, "bridge", target))
            return
        acc.calls.append(CallSite(line, col, "call", raw))
        self._sinks(call, raw, acc)
        for arg in list(call.args) + [k.value for k in call.keywords]:
            if isinstance(arg, (ast.Name, ast.Attribute)):
                ref = dotted_name(arg)
                if ref is not None:
                    acc.calls.append(
                        CallSite(arg.lineno, arg.col_offset + 1, "ref", ref)
                    )
        if raw is not None and raw.split(".")[-1] == "RunUnit":
            self._unit_site(call, acc)

    def _sinks(
        self, call: ast.Call, raw: Optional[str], acc: _FunctionAccumulator
    ) -> None:
        line, col = call.lineno, call.col_offset + 1
        canonical = self.canonical(raw)
        if canonical is not None:
            if canonical in _BLOCKING_CALLS or canonical.startswith(
                _BLOCKING_PREFIXES
            ):
                acc.sinks.append(SinkSite(line, col, "blocking", canonical))
            if canonical in _WALL_CLOCKS:
                acc.sinks.append(
                    SinkSite(
                        line,
                        col,
                        "clock",
                        canonical,
                        suppressed=self._suppressed_at(line, "REP002"),
                    )
                )
            elif canonical.startswith("random."):
                acc.sinks.append(
                    SinkSite(
                        line,
                        col,
                        "rng",
                        canonical,
                        suppressed=self._suppressed_at(line, "REP002"),
                    )
                )
            elif canonical.startswith("numpy.random."):
                tail = canonical[len("numpy.random.") :]
                unseeded_default = tail == "default_rng" and not (
                    call.args or call.keywords
                )
                if unseeded_default or (
                    tail != "default_rng" and tail not in _SEEDABLE_CONSTRUCTORS
                ):
                    acc.sinks.append(
                        SinkSite(
                            line,
                            col,
                            "rng",
                            canonical,
                            suppressed=self._suppressed_at(line, "REP002"),
                        )
                    )
        # Openers: mirror REP001's matching (raw dotted name) so the
        # suppression story is identical; any open is also sync I/O.
        if raw in _OPENERS:
            acc.sinks.append(SinkSite(line, col, "blocking", raw))
            mode = _literal_mode(call)
            if mode is not None and any(ch in mode for ch in "wax+"):
                acc.sinks.append(
                    SinkSite(
                        line,
                        col,
                        "write",
                        f"{raw}(..., {mode!r})",
                        suppressed=self._suppressed_at(line, "REP001"),
                    )
                )
        elif isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr in _BLOCKING_ATTRS:
                acc.sinks.append(SinkSite(line, col, "blocking", f".{attr}()"))
            if attr in _PATH_WRITERS:
                acc.sinks.append(
                    SinkSite(
                        line,
                        col,
                        "write",
                        f".{attr}(...)",
                        suppressed=self._suppressed_at(line, "REP001"),
                    )
                )

    def _raise(self, node: ast.Raise, acc: _FunctionAccumulator) -> None:
        exc = node.exc
        if exc is None:
            return  # bare re-raise
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = dotted_name(exc)
        if name is None:
            return  # raising a variable/expression — unresolvable
        acc.raises.append(RaiseSite(node.lineno, node.col_offset + 1, name))

    def _return(self, node: ast.Return, acc: _FunctionAccumulator) -> None:
        value = node.value
        if value is None:
            return
        site = self._classify_flow(value, acc)
        if site is not None:
            kind, name = site
            acc.returns.append(ReturnSite(node.lineno, kind, name))

    def _classify_flow(
        self, value: ast.expr, acc: Optional[_FunctionAccumulator]
    ) -> Optional[Tuple[str, Optional[str]]]:
        """How a value expression relates to pickle-flow taint."""
        local_funcs = set(acc.local_funcs) if acc else set()
        local_lambdas = acc.local_lambdas if acc else set()
        if isinstance(value, ast.Lambda):
            return ("lambda", None)
        if isinstance(value, ast.Name):
            if value.id in local_lambdas:
                return ("lambda", value.id)
            if value.id in local_funcs:
                return ("nested", value.id)
            return None
        if isinstance(value, ast.Call):
            func_name = dotted_name(value.func)
            if self.canonical(func_name) in _PARTIAL_NAMES:
                if not value.args:
                    return None
                inner = value.args[0]
                if isinstance(inner, ast.Lambda):
                    return ("lambda", None)
                if isinstance(inner, ast.Name):
                    if inner.id in local_lambdas:
                        return ("lambda", inner.id)
                    if inner.id in local_funcs:
                        return ("nested", inner.id)
                    return ("partial", inner.id)
                return None
            if func_name is not None:
                return ("call", func_name)
        return None

    def _scan_unit_sites(self, stmt: ast.stmt) -> None:
        """RunUnit(...) constructions outside any function body."""

        def walk(n: ast.AST) -> None:
            if isinstance(
                n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                return
            if isinstance(n, ast.Call):
                raw = dotted_name(n.func)
                if raw is not None and raw.split(".")[-1] == "RunUnit":
                    self._unit_site(n, None)
            for child in ast.iter_child_nodes(n):
                walk(child)

        walk(stmt)

    def _unit_site(
        self, call: ast.Call, acc: Optional[_FunctionAccumulator]
    ) -> None:
        shipped: List[Tuple[str, ast.expr]] = []
        for index, arg in enumerate(call.args):
            if index in (2, 3):
                shipped.append(("run" if index == 2 else "to_record", arg))
        for keyword in call.keywords:
            if keyword.arg in ("run", "to_record"):
                shipped.append((keyword.arg, keyword.value))
        for slot, value in shipped:
            kind: str
            name: Optional[str] = None
            if isinstance(value, ast.Lambda):
                kind = "direct"  # REP004's per-file finding; not duplicated
            elif isinstance(value, (ast.Name, ast.Attribute)):
                flow = self._classify_flow(value, acc)
                if flow is not None and flow[0] == "nested":
                    kind = "direct"  # REP004 flags names of nested defs
                elif flow is not None and flow[0] == "lambda":
                    # A name bound to a *local* lambda: invisible to
                    # REP004 (which only tracks nested defs).
                    kind, name = "local-lambda", dotted_name(value)
                else:
                    kind, name = "name", dotted_name(value)
            elif isinstance(value, ast.Call):
                func_name = dotted_name(value.func)
                if self.canonical(func_name) in _PARTIAL_NAMES and value.args:
                    inner = value.args[0]
                    if isinstance(inner, ast.Lambda):
                        kind = "direct"
                    else:
                        kind, name = "partial", dotted_name(inner)
                else:
                    kind, name = "call", func_name
            else:
                kind = "other"
            self.unit_sites.append(
                UnitSite(
                    line=value.lineno,
                    col=value.col_offset + 1,
                    slot=slot,
                    kind=kind,
                    name=name,
                )
            )


def summarize_source(
    source: str, path: Union[str, Path], tree: Optional[ast.Module] = None
) -> ModuleSummary:
    """Extract one file's :class:`ModuleSummary` (pass 1)."""
    posix = Path(path).as_posix()
    if tree is None:
        tree = ast.parse(source, filename=posix)
    module, is_package = module_name_for(posix)
    aliases = _build_aliases(tree, module, is_package)
    raw_suppressions = scan_suppressions(source)
    extractor = _Extractor(module, posix, tree, aliases, raw_suppressions)
    extractor.run()
    # Deduplicate the scan's per-line registration back into one
    # SuppressionSite per comment, carrying every covered line.
    covered_by: Dict[Tuple[int, int], List[int]] = {}
    originals: Dict[Tuple[int, int], Suppression] = {}
    for masked_line, entries in raw_suppressions.items():
        for suppression in entries:
            key = (suppression.line, suppression.col)
            covered_by.setdefault(key, []).append(masked_line)
            originals[key] = suppression
    suppression_sites = tuple(
        SuppressionSite(
            line=originals[key].line,
            col=originals[key].col,
            covered=tuple(sorted(covered_by[key])),
            rule_ids=originals[key].rule_ids,
            reason=originals[key].reason,
        )
        for key in sorted(originals)
    )
    # Unit sites inside functions are recorded during the function walk;
    # the extractor's function pass appends them to the same list, so
    # order can interleave — normalize for determinism.
    return ModuleSummary(
        module=module,
        path=posix,
        is_package=is_package,
        aliases=tuple(sorted(extractor.aliases.items())),
        functions=tuple(extractor.functions),
        classes=tuple(extractor.classes),
        unit_sites=tuple(
            sorted(extractor.unit_sites, key=lambda u: (u.line, u.col, u.slot))
        ),
        module_lambdas=tuple(extractor.module_lambdas),
        suppressions=suppression_sites,
    )
