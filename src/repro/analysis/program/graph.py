"""Pass 2 of whole-program analysis: linking summaries into a Program.

The linker joins per-file :class:`~repro.analysis.program.summary.ModuleSummary`
objects into a project symbol table (modules, classes, functions,
import aliases with re-export chasing) and a conservative call graph.
"Conservative" means resolution never invents an edge it cannot
justify, and never *drops* a call it cannot resolve: a dynamic callee
(``getattr`` dispatch, a call on a call result, an attribute of a local
variable) is kept as an explicit ``unknown`` target so downstream rules
can tell "resolved safe" apart from "could not resolve".

Everything in here is plain data (frozen dataclasses, dicts, tuples),
so a linked :class:`Program` pickles to pool workers for per-rule
evaluation and the taint helpers below are pure functions over it.
"""

from __future__ import annotations

import builtins
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .summary import (
    CallSite,
    FunctionSummary,
    ModuleSummary,
    RaiseSite,
    ReturnSite,
)

__all__ = [
    "Resolution",
    "ResolvedCall",
    "ResolvedRaise",
    "ReturnFlow",
    "FunctionNode",
    "ClassNode",
    "Program",
    "link_program",
    "propagate_to_callers",
    "reachable_from",
]

#: (kind, target): kind is one of "function", "class", "module-lambda",
#: "module", "external", "unknown"; target is the internal id, the
#: external dotted name, or None for unknown.
Resolution = Tuple[str, Optional[str]]

_BUILTIN_NAMES = frozenset(dir(builtins))
_MAX_ALIAS_DEPTH = 16

_REPRO_ERROR_MODULE = "repro.errors"
_REPRO_ERROR_CLASS = "ReproError"


@dataclass(frozen=True)
class ResolvedCall:
    """One call-graph edge candidate after resolution."""

    line: int
    col: int
    kind: str  # "call" | "ref" | "bridge"
    raw: Optional[str]
    target_kind: str  # Resolution kind
    target: Optional[str]


@dataclass(frozen=True)
class ResolvedRaise:
    """One ``raise`` with its exception class resolved."""

    line: int
    col: int
    name: str
    target_kind: str  # "class" | "external" | "unknown"
    target: Optional[str]


@dataclass(frozen=True)
class ReturnFlow:
    """Pickle-flow relevant return: a local unpicklable or a call."""

    line: int
    kind: str  # "lambda" | "nested" | "call"
    target: Optional[str]  # resolved callee fid for kind "call"


@dataclass(frozen=True)
class FunctionNode:
    """One function in the linked program."""

    fid: str
    module: str
    qualname: str
    name: str
    path: str
    line: int
    col: int
    is_async: bool
    owner_class: Optional[str]  # cid of the lexically enclosing class
    decorators: Tuple[str, ...] = ()
    sinks: Tuple["SinkRef", ...] = ()
    calls: Tuple[ResolvedCall, ...] = ()
    raises: Tuple[ResolvedRaise, ...] = ()
    returns: Tuple[ReturnFlow, ...] = ()

    @property
    def display(self) -> str:
        return f"{self.module}.{self.qualname}"


@dataclass(frozen=True)
class SinkRef:
    """A direct sink inside a function (copied from the summary)."""

    line: int
    col: int
    kind: str
    detail: str
    suppressed: bool


@dataclass(frozen=True)
class ClassNode:
    """One class in the linked program."""

    cid: str
    module: str
    qualname: str
    name: str
    path: str
    line: int
    base_ids: Tuple[str, ...] = ()  # internal bases (cids)
    external_bases: Tuple[str, ...] = ()  # unresolved/external base names
    methods: Tuple[Tuple[str, str], ...] = ()  # (bare name, fid)
    attr_types: Tuple[Tuple[str, str], ...] = ()  # (attr, cid)


@dataclass
class Program:
    """The linked whole-program view the REP007–REP011 rules consume."""

    modules: Dict[str, ModuleSummary] = field(default_factory=dict)
    by_path: Dict[str, ModuleSummary] = field(default_factory=dict)
    functions: Dict[str, FunctionNode] = field(default_factory=dict)
    classes: Dict[str, ClassNode] = field(default_factory=dict)
    #: Reverse call edges: callee fid -> ((caller fid, edge), ...).
    callers: Dict[str, Tuple[Tuple[str, ResolvedCall], ...]] = field(
        default_factory=dict
    )
    #: Per-module symbol tables (name -> Resolution-ish), for REP008's
    #: module-scope resolution of RunUnit slot names.
    symbols: Dict[str, Dict[str, Tuple[str, str]]] = field(default_factory=dict)

    # -- resolution helpers (shared with the rules) -------------------

    def resolve_absolute(self, dotted: str, _depth: int = 0) -> Resolution:
        """Resolve an absolute dotted path, chasing re-exports."""
        if _depth > _MAX_ALIAS_DEPTH:
            return ("unknown", None)
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            module = ".".join(parts[:i])
            if module in self.modules:
                break
        else:
            return ("external", dotted)
        rest = parts[i:]
        if not rest:
            return ("module", module)
        return self._resolve_members(module, rest, _depth)

    def _resolve_members(
        self, module: str, rest: Sequence[str], depth: int
    ) -> Resolution:
        symbols = self.symbols.get(module, {})
        head, tail = rest[0], list(rest[1:])
        entry = symbols.get(head)
        if entry is None:
            return ("unknown", None)
        kind, value = entry
        if kind == "alias":
            return self.resolve_absolute(".".join([value] + tail), depth + 1)
        if kind == "function":
            return (kind, value) if not tail else ("unknown", None)
        if kind == "module-lambda":
            return (kind, value) if not tail else ("unknown", None)
        if kind == "class":
            if not tail:
                return ("class", value)
            if len(tail) == 1:
                fid = self.lookup_method(value, tail[0])
                return ("function", fid) if fid else ("unknown", None)
            return ("unknown", None)
        return ("unknown", None)

    def resolve_in_module(self, module: str, raw: Optional[str]) -> Resolution:
        """Resolve a raw dotted name in a module's top-level scope."""
        if raw is None:
            return ("unknown", None)
        parts = raw.split(".")
        head, tail = parts[0], parts[1:]
        symbols = self.symbols.get(module, {})
        entry = symbols.get(head)
        if entry is not None:
            kind, value = entry
            if kind == "alias":
                return self.resolve_absolute(".".join([value] + tail))
            return self._resolve_members(module, parts, 0)
        if head in _BUILTIN_NAMES:
            return ("external", raw)
        if tail:
            return ("unknown", None)  # attribute chain on a local value
        return ("unknown", None)

    def resolve_in_function(
        self, fn: FunctionNode, raw: Optional[str]
    ) -> Resolution:
        """Resolve a raw dotted name as seen from inside a function."""
        if raw is None:
            return ("unknown", None)
        parts = raw.split(".")
        head, tail = parts[0], parts[1:]
        if head in ("self", "cls") and fn.owner_class:
            return self._resolve_self(fn.owner_class, tail)
        if not tail:
            # A bare name may be a function nested in an enclosing scope.
            scopes = fn.qualname.split(".<locals>.")
            for i in range(len(scopes), 0, -1):
                scope = ".<locals>.".join(scopes[:i])
                candidate = f"{fn.module}:{scope}.<locals>.{head}"
                if candidate in self.functions:
                    return ("function", candidate)
        return self.resolve_in_module(fn.module, raw)

    def _resolve_self(self, cid: str, tail: Sequence[str]) -> Resolution:
        if len(tail) == 1:
            fid = self.lookup_method(cid, tail[0])
            return ("function", fid) if fid else ("unknown", None)
        if len(tail) == 2:
            attr, method = tail
            node = self.classes.get(cid)
            attr_cid = dict(node.attr_types).get(attr) if node else None
            if attr_cid is None:
                return ("unknown", None)
            fid = self.lookup_method(attr_cid, method)
            return ("function", fid) if fid else ("unknown", None)
        return ("unknown", None)

    def lookup_method(self, cid: str, name: str) -> Optional[str]:
        """Find ``name`` on the class or its internal bases (MRO-ish)."""
        seen: Set[str] = set()
        queue = deque([cid])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            node = self.classes.get(current)
            if node is None:
                continue
            table = dict(node.methods)
            if name in table:
                return table[name]
            queue.extend(node.base_ids)
        return None

    # -- exception hierarchy helpers (REP009) -------------------------

    def is_repro_error(self, cid: str) -> bool:
        """True when the class derives (internally) from ReproError."""
        seen: Set[str] = set()
        queue = deque([cid])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            node = self.classes.get(current)
            if node is None:
                continue
            if (
                node.module == _REPRO_ERROR_MODULE
                and node.name == _REPRO_ERROR_CLASS
            ):
                return True
            queue.extend(node.base_ids)
        return False

    def external_exception_roots(self, cid: str) -> Tuple[str, ...]:
        """External base names reachable from a class, sorted."""
        roots: Set[str] = set()
        seen: Set[str] = set()
        queue = deque([cid])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            node = self.classes.get(current)
            if node is None:
                continue
            roots.update(node.external_bases)
            queue.extend(node.base_ids)
        return tuple(sorted(roots))


def link_program(summaries: Iterable[ModuleSummary]) -> Program:
    """Join per-file summaries into one linked :class:`Program`."""
    program = Program()
    for summary in sorted(summaries, key=lambda s: s.path):
        module = summary.module
        if module in program.modules:
            # Two files mapping to the same module name (e.g. two
            # standalone scripts both called ``demo.py``): re-key the
            # later one by path so neither silently shadows the other.
            module = summary.path
            summary = ModuleSummary(
                module=module,
                path=summary.path,
                is_package=summary.is_package,
                aliases=summary.aliases,
                functions=summary.functions,
                classes=summary.classes,
                unit_sites=summary.unit_sites,
                module_lambdas=summary.module_lambdas,
                suppressions=summary.suppressions,
            )
        program.modules[module] = summary
        program.by_path[summary.path] = summary

    # Symbol tables: local definitions shadow imports.
    for module, summary in program.modules.items():
        table: Dict[str, Tuple[str, str]] = {}
        for local, target in summary.aliases:
            table[local] = ("alias", target)
        for name in summary.module_lambdas:
            table[name] = ("module-lambda", f"{module}:{name}")
        for cls in summary.classes:
            if "." not in cls.qualname:
                table[cls.name] = ("class", f"{module}:{cls.qualname}")
        for fn in summary.functions:
            if "." not in fn.qualname:
                table[fn.name] = ("function", f"{module}:{fn.qualname}")
        program.symbols[module] = table

    # Class nodes: bases and attribute types need the symbol tables.
    for module, summary in program.modules.items():
        for cls in summary.classes:
            cid = f"{module}:{cls.qualname}"
            base_ids: List[str] = []
            external: List[str] = []
            for base in cls.bases:
                kind, target = program.resolve_in_module(module, base)
                if kind == "class" and target is not None:
                    base_ids.append(target)
                else:
                    external.append(base)
            methods = tuple(
                (name, f"{module}:{cls.qualname}.{name}")
                for name in cls.methods
            )
            program.classes[cid] = ClassNode(
                cid=cid,
                module=module,
                qualname=cls.qualname,
                name=cls.name,
                path=summary.path,
                line=cls.line,
                base_ids=tuple(base_ids),
                external_bases=tuple(external),
                methods=methods,
                attr_types=(),  # filled below, after all classes exist
            )

    # Attribute types: ``self.x = SomeClass(...)`` — resolved now that
    # every class id exists.  ``SomeClass.factory(...)`` falls back to
    # the head class (classmethod-constructor heuristic).
    for module, summary in program.modules.items():
        for cls in summary.classes:
            cid = f"{module}:{cls.qualname}"
            resolved: List[Tuple[str, str]] = []
            for attr, target in cls.attr_types:
                kind, value = program.resolve_in_module(module, target)
                if kind != "class" and "." in target:
                    kind, value = program.resolve_in_module(
                        module, target.split(".")[0]
                    )
                if kind == "class" and value is not None:
                    resolved.append((attr, value))
            node = program.classes[cid]
            program.classes[cid] = ClassNode(
                cid=node.cid,
                module=node.module,
                qualname=node.qualname,
                name=node.name,
                path=node.path,
                line=node.line,
                base_ids=node.base_ids,
                external_bases=node.external_bases,
                methods=node.methods,
                attr_types=tuple(resolved),
            )

    # Function nodes first (resolution of bare names needs them all).
    for module, summary in program.modules.items():
        for fn in summary.functions:
            fid = f"{module}:{fn.qualname}"
            owner = f"{module}:{fn.owner_class}" if fn.owner_class else None
            program.functions[fid] = FunctionNode(
                fid=fid,
                module=module,
                qualname=fn.qualname,
                name=fn.name,
                path=summary.path,
                line=fn.line,
                col=fn.col,
                is_async=fn.is_async,
                owner_class=owner,
                decorators=fn.decorators,
                sinks=tuple(
                    SinkRef(s.line, s.col, s.kind, s.detail, s.suppressed)
                    for s in fn.sinks
                ),
            )

    # Now resolve each function's calls, raises, and return flow.
    reverse: Dict[str, List[Tuple[str, ResolvedCall]]] = {}
    for module, summary in program.modules.items():
        for fn in summary.functions:
            fid = f"{module}:{fn.qualname}"
            node = program.functions[fid]
            calls = tuple(
                _resolve_call(program, node, site) for site in fn.calls
            )
            raises = tuple(
                _resolve_raise(program, node, site) for site in fn.raises
            )
            returns = tuple(
                flow
                for flow in (
                    _resolve_return(program, node, site) for site in fn.returns
                )
                if flow is not None
            )
            program.functions[fid] = FunctionNode(
                fid=node.fid,
                module=node.module,
                qualname=node.qualname,
                name=node.name,
                path=node.path,
                line=node.line,
                col=node.col,
                is_async=node.is_async,
                owner_class=node.owner_class,
                decorators=node.decorators,
                sinks=node.sinks,
                calls=calls,
                raises=raises,
                returns=returns,
            )
            for call in calls:
                if call.target_kind == "function" and call.target is not None:
                    reverse.setdefault(call.target, []).append((fid, call))
    program.callers = {
        callee: tuple(sorted(edges, key=lambda e: (e[0], e[1].line, e[1].col)))
        for callee, edges in reverse.items()
    }
    return program


def _resolve_call(
    program: Program, fn: FunctionNode, site: CallSite
) -> ResolvedCall:
    kind, target = program.resolve_in_function(fn, site.name)
    return ResolvedCall(
        line=site.line,
        col=site.col,
        kind=site.kind,
        raw=site.name,
        target_kind=kind,
        target=target,
    )


def _resolve_raise(
    program: Program, fn: FunctionNode, site: RaiseSite
) -> ResolvedRaise:
    kind, target = program.resolve_in_function(fn, site.name)
    if kind not in ("class", "external"):
        kind, target = "unknown", None
    return ResolvedRaise(
        line=site.line, col=site.col, name=site.name, target_kind=kind,
        target=target,
    )


def _resolve_return(
    program: Program, fn: FunctionNode, site: ReturnSite
) -> Optional[ReturnFlow]:
    if site.kind in ("lambda", "nested"):
        return ReturnFlow(line=site.line, kind=site.kind, target=site.name)
    if site.kind == "call":
        kind, target = program.resolve_in_function(fn, site.name)
        if kind == "function" and target is not None:
            return ReturnFlow(line=site.line, kind="call", target=target)
        if kind == "module-lambda":
            # Calling a module-level lambda returns its body's value —
            # conservative: not a taint source by itself.
            return None
    return None  # "partial" of a module-level callable pickles fine


def propagate_to_callers(
    program: Program,
    seeds: Mapping[str, str],
    *,
    edge_kinds: Tuple[str, ...] = ("call",),
    through: Optional[Callable[[FunctionNode], bool]] = None,
) -> Dict[str, Tuple[str, ...]]:
    """Fixpoint taint: which functions (transitively) reach a seed.

    ``seeds`` maps function id -> sink description.  Taint flows from a
    callee to its callers over edges of the given kinds, but only when
    ``through(callee)`` holds — e.g. REP007 stops at async callees,
    REP011 stops at the sanctioned atomic helpers.  Returns, for every
    tainted function, a shortest witness chain ending in the seed's
    description; BFS over sorted frontiers keeps chains deterministic.
    """
    tainted: Dict[str, Tuple[str, ...]] = {
        fid: (desc,) for fid, desc in sorted(seeds.items())
    }
    queue = deque(sorted(seeds))
    while queue:
        callee = queue.popleft()
        callee_node = program.functions.get(callee)
        if callee_node is None:
            continue
        if through is not None and not through(callee_node):
            continue
        for caller, call in program.callers.get(callee, ()):
            if call.kind not in edge_kinds or caller in tainted:
                continue
            tainted[caller] = (callee_node.display,) + tainted[callee]
            queue.append(caller)
    return tainted


def reachable_from(
    program: Program,
    roots: Iterable[str],
    *,
    edge_kinds: Tuple[str, ...] = ("call", "ref", "bridge"),
) -> Dict[str, Tuple[str, ...]]:
    """Forward reachability with witness chains from the nearest root."""
    chains: Dict[str, Tuple[str, ...]] = {}
    queue: "deque[str]" = deque()
    for fid in sorted(roots):
        node = program.functions.get(fid)
        if node is None:
            continue
        chains[fid] = (node.display,)
        queue.append(fid)
    while queue:
        fid = queue.popleft()
        node = program.functions[fid]
        for call in node.calls:
            if call.kind not in edge_kinds:
                continue
            if call.target_kind != "function" or call.target is None:
                continue
            if call.target in chains or call.target not in program.functions:
                continue
            target = program.functions[call.target]
            chains[call.target] = chains[fid] + (target.display,)
            queue.append(call.target)
    return chains
