"""REP011: atomic-write taint — persisting code must not reach raw writes.

REP001 flags a direct ``open('w')``/``write_text`` in the file that
contains it.  This rule adds the caller-side view: a function in a
persisting package whose call chain ends in a raw write — through any
number of helpers — bypasses the tmp-sibling + ``os.replace`` + fsync
discipline of :mod:`repro.runner.atomic`, and the *caller* is where the
artefact contract is owned.  Findings are reported at the frontier call
site with the witness chain down to the sink.

Sanctioned sinks generate no taint: :mod:`repro.runner.atomic` (the one
module allowed to open files for writing) and
:mod:`repro.runner.faults` (deliberate fault injection — its direct
writes exist to corrupt artefacts).  A write site that carries a REP001
suppression is a documented deviation and does not taint its callers
either — the suppression inventory already explains it.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ...registry import ProgramViolation, program_checker
from ..graph import FunctionNode, Program, propagate_to_callers

_SANCTIONED_MODULES = frozenset(
    {"repro.runner.atomic", "repro.runner.faults"}
)

#: Mirrors REP006's notion of "persisting packages": the package minus
#: the runner (owns the helpers) and the analyzer (writes no artefacts).
_EXEMPT_PREFIXES = ("repro.runner", "repro.analysis")


def _persisting(module: str) -> bool:
    if not (module == "repro" or module.startswith("repro.")):
        return False
    return not any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in _EXEMPT_PREFIXES
    )


def _transmits(node: FunctionNode) -> bool:
    return node.module not in _SANCTIONED_MODULES


@program_checker(
    "REP011",
    "atomic-flow",
    "A persisting package whose call chain bottoms out in a raw write "
    "bypasses the atomic tmp/rename/fsync discipline even though the "
    "write lives in another file; a crash mid-chain can still tear the "
    "artefact --resume revalidates.",
)
def check_atomic_flow(program: Program) -> Iterator[ProgramViolation]:
    seeds: Dict[str, str] = {}
    for node in program.functions.values():
        if node.module in _SANCTIONED_MODULES:
            continue
        raw_writes = [
            s for s in node.sinks if s.kind == "write" and not s.suppressed
        ]
        if raw_writes:
            first = min(raw_writes, key=lambda s: (s.line, s.col))
            seeds[node.fid] = f"{first.detail} at {node.path}:{first.line}"
    tainted = propagate_to_callers(
        program, seeds, edge_kinds=("call",), through=_transmits
    )

    findings: List[Tuple[str, int, int, str]] = []
    for node in sorted(program.functions.values(), key=lambda n: n.fid):
        if not _persisting(node.module):
            continue
        for call in node.calls:
            if call.kind != "call" or call.target is None:
                continue
            if call.target not in tainted:
                continue
            chain = " -> ".join(tainted[call.target])
            findings.append(
                (
                    node.path,
                    call.line,
                    call.col,
                    f"{call.raw}() transitively performs a raw file write "
                    f"({chain}) without going through repro.runner.atomic; "
                    "route the write through atomic_open / "
                    "write_text_atomic / write_bytes_atomic",
                )
            )
    for finding in sorted(set(findings)):
        yield finding
