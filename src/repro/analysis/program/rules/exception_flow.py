"""REP009: every raise reachable from a CLI entry point is typed.

The CLI's contract is ``error: …`` + exit 2 for every library failure,
which holds because :func:`repro.cli.main` catches exactly
:class:`~repro.errors.ReproError`.  REP003 polices the obvious local
spellings (``raise ValueError`` in package code), but a helper that
wraps a stdlib call and raises ``OSError``/``json.JSONDecodeError``
escapes as a traceback.  This rule walks the call graph from the CLI
entry points (``main`` and the ``_cmd_*`` handlers, over call, ref and
bridge edges — callbacks and pool-shipped bodies count) and checks that
every resolvable ``raise`` in reachable package code is a ReproError
subclass or an allowed programming-error builtin.

Allowed: ReproError subclasses; builtins that signal *programming*
errors or control flow (TypeError, KeyError, …, SystemExit,
KeyboardInterrupt); classes deriving from BaseException but not
Exception (crash-injection vehicles like InjectedCrash must bypass the
handler by design).  Unresolvable raises (bare re-raise, raising a
variable) are skipped.  Raises REP003 already bans are left to REP003.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ...registry import ProgramViolation, program_checker
from ...rules.error_policy import _BANNED_RAISES
from ..graph import Program, reachable_from

_CLI_MODULE = "repro.cli"

_ALLOWED_BUILTINS = frozenset(
    {
        "TypeError",
        "AttributeError",
        "KeyError",
        "IndexError",
        "LookupError",
        "NotImplementedError",
        "AssertionError",
        "StopIteration",
        "StopAsyncIteration",
        "GeneratorExit",
        "KeyboardInterrupt",
        "SystemExit",
    }
)


def _entry_points(program: Program) -> List[str]:
    return [
        node.fid
        for node in program.functions.values()
        if node.module == _CLI_MODULE
        and (node.name == "main" or node.name.startswith("_cmd_"))
    ]


@program_checker(
    "REP009",
    "exception-flow",
    "A raise of an untyped/stdlib exception reachable from a CLI entry "
    "point escapes main()'s ReproError handler and surfaces as a "
    "traceback, breaking the 'error: ... exit 2' contract REP003 "
    "enforces for the direct spellings.",
)
def check_exception_flow(program: Program) -> Iterator[ProgramViolation]:
    reachable = reachable_from(program, _entry_points(program))
    findings: List[Tuple[str, int, int, str]] = []
    for fid in sorted(reachable):
        node = program.functions[fid]
        if not (
            node.module == "repro" or node.module.startswith("repro.")
        ):
            continue
        for raised in node.raises:
            if raised.name in _BANNED_RAISES:
                continue  # REP003's per-file finding; not duplicated
            if raised.target_kind == "class" and raised.target is not None:
                if program.is_repro_error(raised.target):
                    continue
                roots = program.external_exception_roots(raised.target)
                bases = {root.split(".")[-1] for root in roots}
                if bases and "Exception" not in bases and bases <= {
                    "BaseException"
                }:
                    continue  # crash-injection vehicle; bypasses by design
                label = "locally-defined class"
            elif raised.target_kind == "external":
                last = (raised.target or raised.name).split(".")[-1]
                if last in _ALLOWED_BUILTINS:
                    continue
                label = "external exception"
            else:
                continue  # unresolvable — skipped, never guessed
            chain = " -> ".join(reachable[fid])
            findings.append(
                (
                    node.path,
                    raised.line,
                    raised.col,
                    f"raise {raised.name} ({label}) is reachable from the "
                    f"CLI ({chain}) but is not a ReproError subclass; it "
                    "escapes main()'s handler as a traceback",
                )
            )
    for finding in sorted(set(findings)):
        yield finding
