"""REP008: transitive picklability of pool-bound unit bodies.

REP004 catches a lambda or nested def written *directly* into a
``RunUnit(run=..., to_record=...)`` slot.  It cannot catch the wrapper
trick: ``run=make_body(x)`` where ``make_body`` returns a closure, or
``run=body`` where ``body`` is a module-level lambda (pickle serializes
functions by qualified name — a lambda's ``<lambda>`` qualname never
round-trips).  Both crash the first time ``--workers`` is passed.

This rule walks return-flow taint through the call graph: a function
that returns a lambda/nested def — or the value of a call to such a
function — "may return an unpicklable", and handing its return value to
a shipped slot is flagged with the witness chain.  Names are resolved
through module symbols and re-exports; unresolved callees are skipped
when reporting (conservative, no false positives) but remain explicit
unknowns in the graph.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ...registry import ProgramViolation, program_checker
from ..graph import Program

_SHIPPED_HINT = (
    "pool workers rebuild unit bodies by pickling; use a module-level "
    "function or a dataclass instance (see repro.runner.pool)"
)


def _may_return_unpicklable(program: Program) -> Dict[str, Tuple[str, ...]]:
    """Fixpoint over return-flow edges: fid -> witness chain."""
    tainted: Dict[str, Tuple[str, ...]] = {}
    for fid in sorted(program.functions):
        node = program.functions[fid]
        for flow in node.returns:
            if flow.kind in ("lambda", "nested"):
                what = (
                    "a lambda"
                    if flow.kind == "lambda"
                    else f"nested function {flow.target!r}"
                )
                tainted[fid] = (f"{node.display} returns {what}",)
                break
    changed = True
    while changed:
        changed = False
        for fid in sorted(program.functions):
            if fid in tainted:
                continue
            node = program.functions[fid]
            for flow in node.returns:
                if (
                    flow.kind == "call"
                    and flow.target is not None
                    and flow.target in tainted
                ):
                    tainted[fid] = (
                        f"{node.display} returns "
                        f"{program.functions[flow.target].display}(...)",
                    ) + tainted[flow.target]
                    changed = True
                    break
    return tainted


@program_checker(
    "REP008",
    "pickle-flow",
    "A RunUnit body built by a wrapper that returns a lambda/closure, or "
    "bound to a module-level lambda, pickles under the serial engine and "
    "crashes every --workers run — the same landmine REP004 catches for "
    "the direct spelling.",
)
def check_pickle_flow(program: Program) -> Iterator[ProgramViolation]:
    tainted = _may_return_unpicklable(program)
    findings: List[Tuple[str, int, int, str]] = []
    for module in sorted(program.modules):
        summary = program.modules[module]
        for site in summary.unit_sites:
            if site.kind == "direct" or site.name is None:
                continue
            if site.kind == "local-lambda":
                findings.append(
                    (
                        summary.path,
                        site.line,
                        site.col,
                        f"RunUnit {site.slot}= is {site.name!r}, a local "
                        f"lambda; {_SHIPPED_HINT}",
                    )
                )
                continue
            resolution = program.resolve_in_module(module, site.name)
            kind, target = resolution
            if site.kind in ("name", "partial") and kind == "module-lambda":
                how = (
                    "functools.partial of" if site.kind == "partial" else
                    "bound to"
                )
                findings.append(
                    (
                        summary.path,
                        site.line,
                        site.col,
                        f"RunUnit {site.slot}= is {how} module-level lambda "
                        f"{site.name!r}, whose <lambda> qualname cannot be "
                        f"pickled; {_SHIPPED_HINT}",
                    )
                )
            elif (
                site.kind == "call"
                and kind == "function"
                and target in tainted
            ):
                chain = "; ".join(tainted[target])
                findings.append(
                    (
                        summary.path,
                        site.line,
                        site.col,
                        f"RunUnit {site.slot}= takes the return value of "
                        f"{site.name}(), which may be unpicklable "
                        f"({chain}); {_SHIPPED_HINT}",
                    )
                )
    for finding in sorted(set(findings)):
        yield finding
