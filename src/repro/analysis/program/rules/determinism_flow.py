"""REP010: determinism taint — clocks/RNG reaching model code via helpers.

REP002 bans wall-clock reads and unseeded RNG *inside* the model
packages, file by file.  The leak it cannot see: a model function
calling a helper in ``traces/``, ``study/`` or ``units.py`` that reads
the clock — the model output is now nondeterministic but every
individual file lints clean.  This rule propagates a "nondeterministic"
fact from direct clock/RNG sinks up the call graph and reports at the
call site inside a model module (the frontier, where the fix or a
documented suppression belongs).

Only interprocedural findings are reported — a direct sink inside a
model file stays REP002's per-file finding.  Sinks that carry a REP002
suppression are documented deviations and generate no taint.  The
execution packages (``runner/``, ``serve/``) legitimately read clocks,
so they neither seed nor transmit taint: a model function calling into
the runner is not a determinism leak (the runner never feeds timing
back into model results).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ...registry import ProgramViolation, program_checker
from ..graph import FunctionNode, Program, propagate_to_callers

#: Modules whose outputs must be byte-identical under parallelism.
#: Mirrors REP002's model dirs plus ``core`` (the sweep/experiment
#: layer whose records land in artefacts).
_MODEL_PREFIXES = (
    "repro.cache",
    "repro.core",
    "repro.timing",
    "repro.area",
    "repro.power",
    "repro.ext",
)

#: Execution-layer packages: clocks are their business; excluded from
#: seeding and propagation entirely.
_EXEC_PREFIXES = ("repro.runner", "repro.serve")


def _matches(module: str, prefixes: Tuple[str, ...]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


def _in_scope(node: FunctionNode) -> bool:
    in_package = node.module == "repro" or node.module.startswith("repro.")
    return in_package and not _matches(node.module, _EXEC_PREFIXES)


@program_checker(
    "REP010",
    "determinism-flow",
    "A wall-clock or RNG read hidden behind a helper makes model output "
    "nondeterministic while every file lints clean under REP002; the "
    "byte-identical-under-parallelism guarantee breaks exactly the same "
    "way as a direct read.",
)
def check_determinism_flow(program: Program) -> Iterator[ProgramViolation]:
    seeds: Dict[str, str] = {}
    for node in program.functions.values():
        if not _in_scope(node):
            continue
        impure = [
            s for s in node.sinks
            if s.kind in ("clock", "rng") and not s.suppressed
        ]
        if impure:
            first = min(impure, key=lambda s: (s.line, s.col))
            seeds[node.fid] = f"{first.detail} at {node.path}:{first.line}"
    tainted = propagate_to_callers(
        program, seeds, edge_kinds=("call",), through=_in_scope
    )

    findings: List[Tuple[str, int, int, str]] = []
    for node in sorted(program.functions.values(), key=lambda n: n.fid):
        if not _matches(node.module, _MODEL_PREFIXES):
            continue
        for call in node.calls:
            if call.kind != "call" or call.target is None:
                continue
            if call.target not in tainted or call.target == node.fid:
                continue
            chain = " -> ".join(tainted[call.target])
            findings.append(
                (
                    node.path,
                    call.line,
                    call.col,
                    f"{call.raw}() called from model code transitively "
                    f"reads a clock/RNG ({chain}); model outputs must be "
                    "pure functions of their inputs",
                )
            )
    for finding in sorted(set(findings)):
        yield finding
