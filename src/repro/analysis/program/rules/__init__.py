"""Whole-program rules REP007–REP011.

Imported by the registry for registration side effects, exactly like
the per-file rules package.  Each module registers one rule via
:func:`~repro.analysis.registry.program_checker`; the check functions
consume a linked :class:`~repro.analysis.program.graph.Program` and
yield ``(path, line, col, message)`` tuples.
"""

from __future__ import annotations

from . import (  # noqa: F401
    async_safety,
    atomic_flow,
    determinism_flow,
    exception_flow,
    picklable_flow,
)
