"""REP007: nothing blocking is reachable from the serve path's coroutines.

The PR 6 serve loop is a single asyncio event loop: one blocking call —
``time.sleep``, a synchronous ``open``/``os``/``subprocess``, a pool
``.result()`` join, pathlib file I/O — anywhere in the transitive call
chain of an ``async def`` freezes *every* in-flight request, which is
how deadline tests start flaking under load.  The per-file rules cannot
see a sink two helpers away; this rule propagates a "blocks" fact up
the call graph and reports at the *frontier*: the call site inside the
serve coroutine, where a suppression or an executor bridge belongs.

Callables handed to ``loop.run_in_executor`` / ``asyncio.to_thread``
are bridged (they run on a worker thread) and generate no taint, which
is exactly the sanctioned fix.  Async callees never transmit blocking
taint — awaiting them yields to the loop.  Unknown callees are skipped
when *reporting* (no false positives) but stay visible in the graph as
unknown, never "safe".
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ...registry import ProgramViolation, program_checker
from ..graph import FunctionNode, Program, propagate_to_callers

_SERVE_PREFIX = "repro.serve"


def _in_serve(module: str) -> bool:
    return module == _SERVE_PREFIX or module.startswith(_SERVE_PREFIX + ".")


@program_checker(
    "REP007",
    "async-safety",
    "A blocking call transitively reachable from a serve coroutine "
    "stalls the whole event loop — every in-flight request, not just "
    "one; blocking work must cross a run_in_executor/to_thread bridge.",
)
def check_async_safety(program: Program) -> Iterator[ProgramViolation]:
    # Seed: synchronous functions containing a direct blocking sink.
    # Async functions with direct sinks are findings themselves but do
    # not transmit taint (calling them just builds a coroutine).
    seeds: Dict[str, str] = {}
    for node in program.functions.values():
        if node.is_async:
            continue
        blocking = [s for s in node.sinks if s.kind == "blocking"]
        if blocking:
            first = min(blocking, key=lambda s: (s.line, s.col))
            seeds[node.fid] = f"{first.detail} at {node.path}:{first.line}"
    tainted = propagate_to_callers(
        program,
        seeds,
        edge_kinds=("call",),
        through=lambda fn: not fn.is_async,
    )

    findings: List[Tuple[str, int, int, str]] = []
    for node in sorted(program.functions.values(), key=lambda n: n.fid):
        if not (node.is_async and _in_serve(node.module)):
            continue
        for sink in node.sinks:
            if sink.kind != "blocking":
                continue
            findings.append(
                (
                    node.path,
                    sink.line,
                    sink.col,
                    f"blocking {sink.detail} inside async "
                    f"{node.qualname}; run it on the pool via "
                    "loop.run_in_executor(...) or asyncio.to_thread(...)",
                )
            )
        for call in node.calls:
            if call.kind != "call" or call.target is None:
                continue
            if call.target not in tainted:
                continue
            callee = program.functions.get(call.target)
            if callee is None or callee.is_async:
                continue
            chain = " -> ".join(tainted[call.target])
            findings.append(
                (
                    node.path,
                    call.line,
                    call.col,
                    f"{call.raw}() called from async {node.qualname} "
                    f"transitively blocks ({chain}); bridge it with "
                    "loop.run_in_executor(...) or asyncio.to_thread(...)",
                )
            )
    seen = set()
    for finding in sorted(findings):
        if finding not in seen:
            seen.add(finding)
            yield finding
