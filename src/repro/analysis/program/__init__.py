"""Whole-program analysis: symbol table, call graph, taint propagation.

The per-file rules (REP001–REP006) see one AST at a time, so a
wall-clock read two calls deep into a helper, a lambda smuggled into a
pool unit via a wrapper, or a blocking ``time.sleep`` reachable from an
``async def`` are all invisible to them.  This subpackage adds the
missing layer in two passes that mirror the engine's split between
parallel per-file work and serial linking:

1. :mod:`~repro.analysis.program.summary` — a per-file extraction pass
   producing a :class:`~repro.analysis.program.summary.ModuleSummary`:
   pure derived data (functions, classes, call sites, sinks, raises,
   returns, ``RunUnit`` sites, suppressions) with no AST nodes, so
   summaries pickle to pool workers and serialize into the lint cache.
2. :mod:`~repro.analysis.program.graph` — a linking pass joining the
   summaries into a :class:`~repro.analysis.program.graph.Program`:
   project symbol table (modules, classes, functions, re-exports), a
   conservative call graph (unresolvable callees are recorded as
   *unknown*, never silently treated as safe), and reachability/taint
   fixpoints with shortest witness chains for diagnostics.

The five interprocedural rules (REP007–REP011) live in
:mod:`~repro.analysis.program.rules` and consume only the linked
:class:`Program`, which keeps per-rule evaluation trivially
parallelizable.
"""

from __future__ import annotations

from .graph import Program, link_program
from .summary import SUMMARY_SCHEMA, ModuleSummary, summarize_source

__all__ = [
    "Program",
    "link_program",
    "ModuleSummary",
    "summarize_source",
    "SUMMARY_SCHEMA",
]
