"""Static analysis: machine-checked correctness contracts (``repro lint``).

The reproduction's headline guarantees — crash-safe artefacts,
byte-identical parallel runs, a typed error contract, and the paper's
cache-geometry discipline — rest on coding conventions that no runtime
test can enforce exhaustively.  This package turns those conventions
into AST-level lint rules:

========  ===================  ==============================================
rule      name                 contract
========  ===================  ==============================================
REP000    suppressions         inline suppressions carry a reason and
                               actually suppress something
REP001    atomic-writes        artefact writes route through
                               :mod:`repro.runner.atomic`
REP002    determinism          model code never reads wall clocks or
                               unseeded RNGs
REP003    error-policy         library code raises :class:`~repro.errors.ReproError`
                               subclasses, never bare ``ValueError``/
                               ``RuntimeError``, and never ``except:``
REP004    pool-picklability    unit bodies handed to the process pool are
                               module-level callables
REP005    geometry-literals    cache-shape literals satisfy the same
                               predicate the runtime validator enforces
========  ===================  ==============================================

Use :func:`lint_paths` programmatically or ``repro lint`` from the
command line; see ``docs/static-analysis.md`` for the rule catalogue
and the suppression policy (``# repro: lint-ok[RULE] reason``).
"""

from __future__ import annotations

from .engine import LintReport, lint_paths, lint_source
from .finding import Finding
from .registry import Rule, all_rules, resolve_rules
from .reporters import render_human, render_json

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "render_human",
    "render_json",
    "resolve_rules",
]
