"""Static analysis: machine-checked correctness contracts (``repro lint``).

The reproduction's headline guarantees — crash-safe artefacts,
byte-identical parallel runs, a typed error contract, and the paper's
cache-geometry discipline — rest on coding conventions that no runtime
test can enforce exhaustively.  This package turns those conventions
into AST-level lint rules:

========  ===================  ==============================================
rule      name                 contract
========  ===================  ==============================================
REP000    suppressions         inline suppressions carry a reason and
                               actually suppress something
REP001    atomic-writes        artefact writes route through
                               :mod:`repro.runner.atomic`
REP002    determinism          model code never reads wall clocks or
                               unseeded RNGs
REP003    error-policy         library code raises :class:`~repro.errors.ReproError`
                               subclasses, never bare ``ValueError``/
                               ``RuntimeError``, and never ``except:``
REP004    pool-picklability    unit bodies handed to the process pool are
                               module-level callables
REP005    geometry-literals    cache-shape literals satisfy the same
                               predicate the runtime validator enforces
REP006    manifest-tracking    artefact-producing code declares manifest
                               tracking
========  ===================  ==============================================

The **whole-program phase** (``repro lint --program``) builds a project
symbol table and a conservative call graph (:mod:`repro.analysis.program`)
and layers interprocedural rules on top — facts no single file shows:

========  ===================  ==============================================
rule      name                 contract
========  ===================  ==============================================
REP007    async-safety         no blocking call transitively reachable
                               from an ``async def`` in ``serve/``
REP008    picklable-flow       pool-shipped unit bodies stay picklable
                               through the full reachable closure
REP009    exception-flow       every raise reachable from a CLI entry
                               point resolves to a ReproError subclass
REP010    determinism-flow     clock/RNG taint propagated through helpers
                               never reaches model code
REP011    atomic-flow          persisting code never reaches a raw write
                               that bypasses :mod:`repro.runner.atomic`
========  ===================  ==============================================

Unknown callees (dynamic ``getattr``, untyped attributes) stay explicit
"unknown" nodes — the graph degrades to *not proven*, never to a false
"safe".  An optional content-hash cache (:mod:`repro.analysis.cache`)
skips unchanged files on warm runs for both phases.

Use :func:`lint_paths` programmatically or ``repro lint`` from the
command line; see ``docs/static-analysis.md`` for the rule catalogue
and the suppression policy (``# repro: lint-ok[RULE] reason``).
"""

from __future__ import annotations

from .cache import LintCache, file_sha256, ruleset_key
from .engine import LintReport, lint_paths, lint_source
from .finding import Finding
from .program import Program, link_program, summarize_source
from .registry import Rule, all_rules, resolve_rules
from .reporters import render_human, render_json

__all__ = [
    "Finding",
    "LintCache",
    "LintReport",
    "Program",
    "Rule",
    "all_rules",
    "file_sha256",
    "link_program",
    "lint_paths",
    "lint_source",
    "render_human",
    "render_json",
    "resolve_rules",
    "ruleset_key",
    "summarize_source",
]
