"""Findings and the per-file analysis context shared by all checkers."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from functools import cached_property
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

__all__ = ["Finding", "FileContext", "dotted_name"]


@dataclass(frozen=True)
class Finding:
    """One rule violation (or suppressed violation) at a source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    suppression_reason: str = ""

    def to_record(self) -> Dict[str, object]:
        """JSON-safe representation (the ``--format json`` row)."""
        record: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.suppressed:
            record["reason"] = self.suppression_reason
        return record

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "Finding":
        """Inverse of :meth:`to_record`; used by the lint cache."""
        return cls(
            rule=str(record["rule"]),
            severity=str(record["severity"]),
            path=str(record["path"]),
            line=int(record["line"]),  # type: ignore[call-overload]
            col=int(record["col"]),  # type: ignore[call-overload]
            message=str(record["message"]),
            suppressed="reason" in record,
            suppression_reason=str(record.get("reason", "")),
        )

    def suppress(self, reason: str) -> "Finding":
        return replace(self, suppressed=True, suppression_reason=reason)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


# Locations a checker may scope itself to.  Precedence matters: fixture
# trees that mimic the repo layout (tests/fixtures/.../src/repro/...)
# must classify by the innermost role, so the package match wins.
_PACKAGE_MARKER = "src/repro/"


@dataclass(frozen=True)
class FileContext:
    """Everything a checker needs to inspect one parsed source file."""

    path: Path
    source: str
    tree: ast.Module = field(repr=False)

    @cached_property
    def lines(self) -> Tuple[str, ...]:
        return tuple(self.source.splitlines())

    @cached_property
    def package_relpath(self) -> Optional[str]:
        """Path inside ``src/repro/`` (e.g. ``cache/geometry.py``), or None."""
        posix = self.path.as_posix()
        if _PACKAGE_MARKER in posix:
            return posix.rsplit(_PACKAGE_MARKER, 1)[1]
        return None

    @cached_property
    def kind(self) -> str:
        """``package`` / ``benchmark`` / ``example`` / ``test`` / ``other``."""
        if self.package_relpath is not None:
            return "package"
        parts = self.path.as_posix().split("/")
        if "benchmarks" in parts:
            return "benchmark"
        if "examples" in parts:
            return "example"
        if "tests" in parts or self.path.name.startswith("test_"):
            return "test"
        return "other"

    def in_package_dirs(self, *prefixes: str) -> bool:
        """True if the file lives under one of the given package subdirs."""
        rel = self.package_relpath
        if rel is None:
            return False
        return any(rel.startswith(prefix.rstrip("/") + "/") for prefix in prefixes)

    @cached_property
    def parent_map(self) -> Dict[int, ast.AST]:
        """Map ``id(node) -> parent node`` over the whole tree."""
        parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                parents[id(child)] = parent
        return parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current: Optional[ast.AST] = self.parent_map.get(id(node))
        while current is not None:
            yield current
            current = self.parent_map.get(id(current))

    @cached_property
    def import_aliases(self) -> Dict[str, str]:
        """Local name -> canonical dotted module/attribute path.

        ``import numpy as np`` maps ``np -> numpy``; ``from random
        import randint as ri`` maps ``ri -> random.randint``.  Checkers
        canonicalise call targets against this before matching.
        """
        aliases: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    aliases[item.asname or item.name.split(".")[0]] = (
                        item.name if item.asname else item.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for item in node.names:
                    if item.name == "*":
                        continue
                    aliases[item.asname or item.name] = f"{node.module}.{item.name}"
        return aliases

    def canonical_call_name(self, func: ast.AST) -> Optional[str]:
        """The fully-qualified dotted target of a call, if resolvable."""
        name = dotted_name(func)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        head = self.import_aliases.get(head, head)
        return f"{head}.{rest}" if rest else head

    def in_pytest_raises(self, node: ast.AST) -> bool:
        """True when ``node`` sits inside a ``with pytest.raises(...)``."""
        for ancestor in self.ancestors(node):
            if not isinstance(ancestor, ast.With):
                continue
            for item in ancestor.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    target = dotted_name(expr.func)
                    if target in ("pytest.raises", "raises"):
                        return True
        return False
