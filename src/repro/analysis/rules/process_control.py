"""REP013: process-control discipline — one place owns signals and exits.

The lifecycle layer (PR 10) centralises every process-global shutdown
mechanism — signal handlers, interval timers, hard exits, interpreter
exit hooks — in :mod:`repro.runner.lifecycle` (and the CLI entry
point, which installs the supervisor).  That centralisation *is* the
guarantee: a second ``signal.signal`` call anywhere else silently
replaces the supervisor's handler, and the two-phase drain (first
signal drains, second aborts) stops working with no error anywhere.
Likewise ``os._exit`` skips the drain's journal/manifest flush, and an
``atexit`` hook is an uncoordinated shadow shutdown path.

So in package code, ``signal.signal`` / ``signal.setitimer`` /
``os._exit`` / ``atexit.register`` are reserved for the sanctioned
modules.  Anything else must go through the lifecycle API — take a
:class:`~repro.runner.lifecycle.CancelToken`, use
:func:`~repro.runner.lifecycle.unit_timeout`, or raise.  (The
asyncio route, ``loop.add_signal_handler``, composes with the loop
and is not matched.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..finding import FileContext
from ..registry import Violation, checker

#: Process-global shutdown mechanisms reserved for the lifecycle layer.
_PROCESS_CONTROL = frozenset(
    {
        "signal.signal",
        "signal.setitimer",
        "os._exit",
        "atexit.register",
    }
)

#: Modules allowed to own process-global shutdown state: the lifecycle
#: supervisor itself, and the CLI entry point that installs it.
_SANCTIONED_MODULES = frozenset({"runner/lifecycle.py", "cli.py"})


@checker(
    "REP013",
    "process-control-discipline",
    "signal.signal / setitimer / os._exit / atexit.register outside the "
    "lifecycle layer silently replaces the supervisor's handlers or "
    "bypasses the graceful drain; route shutdown through "
    "repro.runner.lifecycle instead.",
)
def check_process_control(ctx: FileContext) -> Iterator[Violation]:
    if ctx.kind != "package":
        return
    if ctx.package_relpath in _SANCTIONED_MODULES:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = ctx.canonical_call_name(node.func)
        if target in _PROCESS_CONTROL:
            yield (
                node.lineno,
                node.col_offset + 1,
                f"{target}() takes over process shutdown outside the "
                "lifecycle layer; only repro/runner/lifecycle.py (and the "
                "CLI entry point) may install handlers or hard-exit — use "
                "CancelToken / unit_timeout / Supervisor instead",
            )
