"""REP002: model code must be deterministic; execution code seeded.

The parallel-execution guarantee (PR 2) is that a sweep's artefacts are
byte-identical whatever the worker count — which is only true while the
cache, timing, area, power, and extension models compute pure functions
of their inputs.  Wall-clock reads and unseeded random sources are the
two ways determinism silently leaks out, so both are banned in those
packages.  (Seeded generators are fine: the trace synthesiser derives
every ``numpy`` generator from a stable name hash.)

The *execution* packages (``runner/``, ``serve/``) legitimately read
clocks — elapsed-time measurement, deadlines, breaker cooldowns are
their job — but they must never draw from the global RNG: retry
backoff jitter, the classic temptation, has to derive from the seeded
LFSR and the unit id (:func:`repro.runner.engine.jitter_unit`) so that
a replayed run backs off identically.  For those directories only the
randomness bans apply.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..finding import FileContext
from ..registry import Violation, checker

#: Packages whose byte-equality the differential pool tests depend on:
#: both wall clocks and unseeded randomness are banned.
_MODEL_DIRS = ("cache", "timing", "area", "power", "ext")

#: Execution-layer packages: clocks are their business (timeouts,
#: latency metrics, breaker cooldowns) but global randomness is still
#: banned — backoff jitter must come from the seeded LFSR/unit id.
_EXEC_DIRS = ("runner", "serve")

_WALL_CLOCKS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: numpy.random attributes that are *not* the legacy global RNG.
_SEEDABLE_CONSTRUCTORS = frozenset(
    {"Generator", "SeedSequence", "BitGenerator", "PCG64", "PCG64DXSM",
     "Philox", "MT19937", "SFC64"}
)


@checker(
    "REP002",
    "determinism",
    "A wall-clock read or unseeded RNG in a model module breaks the "
    "byte-identical-under-parallelism guarantee the pool tests enforce; "
    "global-RNG draws in execution code (e.g. backoff jitter) break "
    "run replayability.",
)
def check_determinism(ctx: FileContext) -> Iterator[Violation]:
    in_model = ctx.in_package_dirs(*_MODEL_DIRS)
    in_exec = ctx.in_package_dirs(*_EXEC_DIRS)
    if not (in_model or in_exec):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = ctx.canonical_call_name(node.func)
        if target is None:
            continue
        where = (node.lineno, node.col_offset + 1)
        if target in _WALL_CLOCKS:
            if in_model:
                yield (*where, f"{target}() reads the wall clock in model code; "
                       "model outputs must be pure functions of their inputs")
        elif target.startswith("random."):
            hint = (
                "derive deterministic jitter from the seeded LFSR and the "
                "unit id (repro.runner.engine.jitter_unit) instead"
                if in_exec
                else "derive a seeded numpy Generator from the model's "
                "inputs instead"
            )
            yield (*where, f"{target}() uses the global stdlib RNG; {hint}")
        elif target.startswith("numpy.random."):
            tail = target[len("numpy.random."):]
            if tail == "default_rng":
                if not node.args and not node.keywords:
                    yield (*where, "numpy.random.default_rng() without a seed "
                           "is nondeterministic; pass an explicit seed")
            elif tail not in _SEEDABLE_CONSTRUCTORS:
                yield (*where, f"numpy.random.{tail}() uses the legacy global "
                       "RNG; use a seeded numpy.random.default_rng(...)")
