"""REP002: model code must be deterministic.

The parallel-execution guarantee (PR 2) is that a sweep's artefacts are
byte-identical whatever the worker count — which is only true while the
cache, timing, area, power, and extension models compute pure functions
of their inputs.  Wall-clock reads and unseeded random sources are the
two ways determinism silently leaks out, so both are banned in those
packages.  (Seeded generators are fine: the trace synthesiser derives
every ``numpy`` generator from a stable name hash.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..finding import FileContext
from ..registry import Violation, checker

#: Packages whose byte-equality the differential pool tests depend on.
_SCOPED_DIRS = ("cache", "timing", "area", "power", "ext")

_WALL_CLOCKS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: numpy.random attributes that are *not* the legacy global RNG.
_SEEDABLE_CONSTRUCTORS = frozenset(
    {"Generator", "SeedSequence", "BitGenerator", "PCG64", "PCG64DXSM",
     "Philox", "MT19937", "SFC64"}
)


@checker(
    "REP002",
    "determinism",
    "A wall-clock read or unseeded RNG in a model module breaks the "
    "byte-identical-under-parallelism guarantee the pool tests enforce.",
)
def check_determinism(ctx: FileContext) -> Iterator[Violation]:
    if not ctx.in_package_dirs(*_SCOPED_DIRS):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = ctx.canonical_call_name(node.func)
        if target is None:
            continue
        where = (node.lineno, node.col_offset + 1)
        if target in _WALL_CLOCKS:
            yield (*where, f"{target}() reads the wall clock in model code; "
                   "model outputs must be pure functions of their inputs")
        elif target.startswith("random."):
            yield (*where, f"{target}() uses the global stdlib RNG; derive a "
                   "seeded numpy Generator from the model's inputs instead")
        elif target.startswith("numpy.random."):
            tail = target[len("numpy.random."):]
            if tail == "default_rng":
                if not node.args and not node.keywords:
                    yield (*where, "numpy.random.default_rng() without a seed "
                           "is nondeterministic; pass an explicit seed")
            elif tail not in _SEEDABLE_CONSTRUCTORS:
                yield (*where, f"numpy.random.{tail}() uses the legacy global "
                       "RNG; use a seeded numpy.random.default_rng(...)")
