"""REP004: pool-bound unit bodies must be picklable.

:class:`~repro.runner.pool.PoolRunner` ships a unit's ``run`` and
``to_record`` callables to worker processes, so they must pickle —
module-level functions or instances of module-level classes.  A lambda
or a function defined inside another function works fine under the
serial engine and then explodes the moment ``--workers`` is passed,
which is exactly the kind of latent landmine a static check removes.
(``check_skip`` and ``from_record`` stay parent-side and may close over
anything, per the pool module's pickling contract.)
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from ..finding import FileContext, dotted_name
from ..registry import Violation, checker

#: RunUnit(unit_id, payload, run, to_record, ...) positional slots that
#: are shipped to workers.
_SHIPPED_ARGS = {2: "run", 3: "to_record"}
_SHIPPED_KEYWORDS = frozenset(_SHIPPED_ARGS.values())


def _nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined inside another function's body."""
    nested: Set[str] = set()

    def walk(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            is_fn = isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            if is_fn and inside_function:
                nested.add(child.name)  # type: ignore[union-attr]
            walk(child, inside_function or is_fn)

    walk(tree, False)
    return nested


def _is_run_unit_call(call: ast.Call) -> bool:
    name = dotted_name(call.func)
    return name is not None and name.split(".")[-1] == "RunUnit"


@checker(
    "REP004",
    "pool-picklability",
    "A lambda or nested function as a unit body pickles under the serial "
    "engine but crashes every --workers run; bodies must be module-level "
    "callables or instances of module-level classes.",
)
def check_picklable(ctx: FileContext) -> Iterator[Violation]:
    if ctx.kind != "package":
        return
    nested = _nested_function_names(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not _is_run_unit_call(node):
            continue
        for slot, value in _shipped_arguments(node):
            problem: Optional[str] = None
            if isinstance(value, ast.Lambda):
                problem = "a lambda"
            elif isinstance(value, ast.Name) and value.id in nested:
                problem = f"nested function {value.id!r}"
            if problem is not None:
                yield (
                    value.lineno,
                    value.col_offset + 1,
                    f"RunUnit {slot}= is {problem}, which cannot be pickled "
                    "to pool workers; use a module-level function or a "
                    "dataclass instance (see repro.runner.pool)",
                )


def _shipped_arguments(call: ast.Call) -> Iterator[Tuple[str, ast.expr]]:
    for index, arg in enumerate(call.args):
        if index in _SHIPPED_ARGS:
            yield _SHIPPED_ARGS[index], arg
    for keyword in call.keywords:
        if keyword.arg in _SHIPPED_KEYWORDS:
            yield keyword.arg, keyword.value
