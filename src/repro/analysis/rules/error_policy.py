"""REP003: the typed error contract.

The CLI promises ``error: …`` + exit 2 for every library failure, which
works because :func:`repro.cli.main` catches exactly
:class:`~repro.errors.ReproError`.  A ``raise ValueError`` deep in the
library escapes that contract and surfaces as a traceback; a bare
``except:`` swallows ``KeyboardInterrupt`` and the injected crashes the
resilience tests rely on.  Library code therefore raises ``ReproError``
subclasses and never uses a bare except.

``TypeError`` (and friends) stay allowed: a *programming* error — wrong
type handed to an API — is deliberately distinct from a *library*
error, per the :mod:`repro.errors` module contract.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..finding import FileContext, dotted_name
from ..registry import Violation, checker

_BANNED_RAISES = frozenset({"ValueError", "RuntimeError", "Exception"})


@checker(
    "REP003",
    "error-policy",
    "Library failures must surface as ReproError subclasses so the CLI's "
    "exit-2 contract holds and callers can catch library errors without "
    "swallowing programming errors; bare except blocks break crash "
    "injection and Ctrl-C.",
)
def check_error_policy(ctx: FileContext) -> Iterator[Violation]:
    in_library = ctx.kind == "package"
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Raise) and in_library:
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = dotted_name(exc) if exc is not None else None
            if name in _BANNED_RAISES:
                yield (
                    node.lineno,
                    node.col_offset + 1,
                    f"raise {name} in library code; raise a ReproError "
                    "subclass from repro.errors so the CLI error contract "
                    "(exit 2) holds",
                )
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            yield (
                node.lineno,
                node.col_offset + 1,
                "bare 'except:' also catches KeyboardInterrupt and injected "
                "crashes; catch Exception or a ReproError subclass",
            )
