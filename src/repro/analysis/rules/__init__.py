"""Built-in lint rules; importing this package registers them all."""

from __future__ import annotations

from . import (
    atomic_writes,
    determinism,
    error_policy,
    geometry,
    manifest,
    picklable,
    process_control,
    telemetry,
)

__all__ = [
    "atomic_writes",
    "determinism",
    "error_policy",
    "geometry",
    "manifest",
    "picklable",
    "process_control",
    "telemetry",
]
