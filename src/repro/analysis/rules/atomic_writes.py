"""REP001: artefact writes must route through :mod:`repro.runner.atomic`.

The crash-safety guarantee (PR 1) is that every persisted artefact is
either the previous complete file or the new complete file — never a
torn half-write.  That only holds if *every* write goes through the
tmp-sibling + ``os.replace`` helpers.  This rule flags the escape
hatches: a builtin ``open`` in a writing mode, ``gzip``/``io`` opens in
a writing mode, and ``Path.write_text``/``Path.write_bytes``.

Scope: library code, benchmarks, and examples.  Test files are exempt
(tests legitimately scribble into ``tmp_path`` to *create* corrupt
inputs), as is ``runner/atomic.py`` itself — the one module allowed to
open files for writing.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..finding import FileContext, dotted_name
from ..registry import Violation, checker

_ALLOWED_FILE = "runner/atomic.py"
_OPENERS = ("open", "gzip.open", "io.open", "bz2.open", "lzma.open")
_PATH_WRITERS = ("write_text", "write_bytes")


def _literal_mode(call: ast.Call) -> Optional[str]:
    """The call's ``mode`` argument when it is a string literal."""
    mode: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"  # builtin default
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None  # dynamic — cannot prove a write statically


@checker(
    "REP001",
    "atomic-writes",
    "A direct file write can be torn by a crash mid-write; the atomic "
    "helpers guarantee the artefact is always either complete or absent, "
    "which is what --resume's artefact validation relies on.",
)
def check_atomic_writes(ctx: FileContext) -> Iterator[Violation]:
    if ctx.kind == "test":
        return
    if ctx.package_relpath == _ALLOWED_FILE:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = dotted_name(node.func)
        if target in _OPENERS:
            mode = _literal_mode(node)
            if mode is not None and any(ch in mode for ch in "wax+"):
                yield (
                    node.lineno,
                    node.col_offset + 1,
                    f"{target}(..., {mode!r}) writes directly; route artefact "
                    "writes through repro.runner.atomic "
                    "(atomic_open / write_text_atomic / write_bytes_atomic)",
                )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _PATH_WRITERS
        ):
            yield (
                node.lineno,
                node.col_offset + 1,
                f".{node.func.attr}(...) writes directly; use "
                f"repro.runner.atomic.{'write_text_atomic' if node.func.attr == 'write_text' else 'write_bytes_atomic'} "
                "so a crash cannot leave a torn artefact",
            )
