"""REP006: artefact-producing code must declare manifest tracking.

``repro verify`` can only vouch for artefacts it knows about: a file
written through the atomic helpers *without* a sha256 sidecar is
invisible to the integrity walk — silent corruption of it is
undetectable.  The ``track=`` keyword on
:func:`~repro.runner.atomic.atomic_open` /
:func:`~repro.runner.atomic.write_text_atomic` /
:func:`~repro.runner.atomic.write_bytes_atomic` is the registration
point, and it deliberately has no "right" default for library code:
every call site must *choose* — ``track=True`` for persisted artefacts,
``track=False`` for scratch output — and say so explicitly.

Scope: package code outside ``runner/`` (which implements the
machinery and owns its own integrity records) and ``analysis/`` (which
never writes artefacts).  Benchmarks, examples, and tests are exempt:
their output is throwaway by definition.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..finding import FileContext, dotted_name
from ..registry import Violation, checker

_HELPERS = ("atomic_open", "write_text_atomic", "write_bytes_atomic")


def _is_atomic_helper(ctx: FileContext, func: ast.AST) -> bool:
    """True when the call target resolves to one of the atomic helpers.

    Handles both absolute imports (canonicalised through the file's
    import aliases) and the package's own relative imports
    (``from ..runner import write_text_atomic``), where only the bare
    name is visible.
    """
    canonical = ctx.canonical_call_name(func)
    raw = dotted_name(func)
    for name in (canonical, raw):
        if name is not None and name.split(".")[-1] in _HELPERS:
            return True
    return False


@checker(
    "REP006",
    "manifest-tracking",
    "An artefact written without a sha256 sidecar is invisible to "
    "`repro verify` — corruption of it can never be detected or "
    "repaired; every atomic-helper call site must explicitly choose "
    "track=True (persisted artefact) or track=False (scratch output).",
)
def check_manifest_tracking(ctx: FileContext) -> Iterator[Violation]:
    if ctx.kind != "package":
        return
    if ctx.in_package_dirs("runner", "analysis"):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if not _is_atomic_helper(ctx, node.func):
            continue
        explicit = any(
            keyword.arg == "track" or keyword.arg is None  # track= or **kwargs
            for keyword in node.keywords
        )
        if not explicit:
            target = dotted_name(node.func) or "atomic helper"
            yield (
                node.lineno,
                node.col_offset + 1,
                f"{target}(...) does not declare manifest tracking; pass "
                "track=True to register the artefact with MANIFEST.json "
                "(or track=False to explicitly opt scratch output out)",
            )
