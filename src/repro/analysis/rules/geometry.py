"""REP005: cache-shape literals must be valid geometries.

Benchmarks, examples, and tests are full of literal cache shapes —
``CacheGeometry(kb(64), associativity=4)`` and friends.  An invalid
literal only explodes when that particular script runs, which for a
rarely-exercised ablation can be long after the commit.  This rule
evaluates literal shapes at lint time against
:func:`repro.cache.geometry.geometry_violations` — the *same* predicate
the runtime validator raises from, so the static and dynamic checks
agree exactly (power-of-two capacity, power-of-two line size,
associativity >= 1, whole sets).

Shapes with non-literal arguments are skipped (nothing to evaluate),
as are constructions inside ``pytest.raises`` blocks, which exist
precisely to exercise invalid shapes.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from ...cache.geometry import DEFAULT_LINE_SIZE, geometry_violations
from ...units import KB
from ..finding import FileContext, dotted_name
from ..registry import Violation, checker

_FIELDS = ("size_bytes", "line_size", "associativity")


def _literal_int(node: ast.expr) -> Optional[int]:
    """Evaluate a literal integer expression, including ``kb(N)`` calls."""
    if isinstance(node, ast.Constant):
        value = node.value
        if isinstance(value, bool) or not isinstance(value, int):
            return None
        return value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal_int(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.BinOp):
        left = _literal_int(node.left)
        right = _literal_int(node.right)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.LShift):
            return left << right if 0 <= right < 64 else None
        if isinstance(node.op, ast.Pow):
            return left**right if 0 <= right < 64 else None
        return None
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if (
            name is not None
            and name.split(".")[-1] == "kb"
            and len(node.args) == 1
            and not node.keywords
        ):
            inner = _literal_int(node.args[0])
            return None if inner is None else inner * KB
    return None


def _shape_arguments(call: ast.Call) -> Optional[Dict[str, int]]:
    """Literal (field -> value) for a CacheGeometry call, else None.

    None means at least one *present* argument is not statically
    evaluable, so the shape cannot be judged; absent fields fall back
    to the dataclass defaults inside ``geometry_violations``.
    """
    values: Dict[str, int] = {}
    if len(call.args) > len(_FIELDS):
        return None
    for index, arg in enumerate(call.args):
        literal = _literal_int(arg)
        if literal is None:
            return None
        values[_FIELDS[index]] = literal
    for keyword in call.keywords:
        if keyword.arg not in _FIELDS:
            return None
        literal = _literal_int(keyword.value)
        if literal is None:
            return None
        values[keyword.arg] = literal
    return values


@checker(
    "REP005",
    "geometry-literals",
    "An invalid literal cache shape only fails when its script finally "
    "runs; checking literals against the runtime validator's own "
    "predicate at lint time catches the breakage at commit time.",
)
def check_geometry_literals(ctx: FileContext) -> Iterator[Violation]:
    if ctx.kind not in ("benchmark", "example", "test"):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None or name.split(".")[-1] != "CacheGeometry":
            continue
        if ctx.in_pytest_raises(node):
            continue
        shape = _shape_arguments(node)
        if shape is None or "size_bytes" not in shape:
            continue
        for problem in geometry_violations(
            shape["size_bytes"],
            shape.get("line_size", DEFAULT_LINE_SIZE),
            shape.get("associativity", 1),
        ):
            yield (
                node.lineno,
                node.col_offset + 1,
                f"invalid cache geometry literal: {problem} "
                "(CacheGeometry would raise GeometryError at runtime)",
            )
