"""REP012: telemetry discipline — injected clocks, context-managed spans.

The observability layer (PR 9) makes two promises that are easy to
break silently:

* **Time is injectable.**  Every duration and timestamp the telemetry
  layer records flows through :class:`repro.obs.clock.Clock`, so tests
  drive time with a :class:`~repro.obs.clock.ManualClock` and span
  durations are deterministic under test.  A direct ``time.time()`` /
  ``time.monotonic()`` inside ``obs/`` bypasses the injection point —
  only ``obs/clock.py`` (the adapter that *defines* the sanctioned
  reads) may touch the ``time`` module.  Execution-layer code outside
  ``obs/`` keeps its REP002 latitude: clocks are its business.

* **Spans close.**  A span only records on scope exit; calling
  ``span(...)`` without entering it (``tracer.span("x")`` as a bare
  statement or assignment) produces a context manager that is never
  entered — no duration, no record, and with a generator-based
  manager, a silent leak.  Package code must use ``with ... as s:``
  (or hand the manager to ``ExitStack.enter_context``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..finding import FileContext
from ..registry import Violation, checker

#: Direct time reads banned inside ``obs/`` (``clock.py`` excepted).
_WALL_CLOCKS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: The one module allowed to read ``time.*``: it is the Clock adapter.
_SANCTIONED_CLOCK_MODULE = "obs/clock.py"


def _call_tail(func: ast.AST) -> Optional[str]:
    """The last dotted component of a call target (``a.b.span`` -> ``span``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_context_managed(ctx: FileContext, call: ast.Call) -> bool:
    """True when ``call`` is a with-item or fed to ``enter_context``."""
    parent = ctx.parent_map.get(id(call))
    if isinstance(parent, ast.withitem) and parent.context_expr is call:
        return True
    if isinstance(parent, ast.Call) and _call_tail(parent.func) == "enter_context":
        return True
    return False


@checker(
    "REP012",
    "telemetry-discipline",
    "A direct time.* read inside the telemetry layer bypasses the "
    "injected Clock (tests can no longer drive time), and a span(...) "
    "call outside a with statement is never entered — it records "
    "nothing and leaks the open scope.",
)
def check_telemetry(ctx: FileContext) -> Iterator[Violation]:
    if ctx.kind != "package":
        return
    in_obs = (
        ctx.in_package_dirs("obs")
        and ctx.package_relpath != _SANCTIONED_CLOCK_MODULE
    )
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        where = (node.lineno, node.col_offset + 1)
        if in_obs:
            target = ctx.canonical_call_name(node.func)
            if target in _WALL_CLOCKS:
                yield (
                    *where,
                    f"{target}() reads time directly in the telemetry "
                    "layer; go through the injected Clock "
                    "(repro.obs.clock) so tests can drive time",
                )
        if _call_tail(node.func) == "span" and not _is_context_managed(ctx, node):
            yield (
                *where,
                "span(...) outside a with statement is never entered and "
                "records nothing; use 'with ...span(...) as s:' or "
                "ExitStack.enter_context",
            )
