"""Dynamic-energy model for on-chip caches.

The paper's introduction lists five advantages of two-level on-chip
caching; the fifth is power:

    "a chip with a two-level cache will usually use less power ... In a
    single-level configuration, wordlines and bitlines are longer,
    meaning there is a larger capacitance that needs to be charged or
    discharged with every cache access.  In a two-level configuration,
    most accesses only require an access to a small first-level cache."

This package quantifies that argument with the same structural
parameters the timing model uses: the switched capacitance of the
decoder, word line, bit lines, sense amplifiers, comparator and output
drivers of the active subarray gives a per-access energy, and combining
per-level access energies with the simulated access counts gives energy
per instruction.  ``repro.power.study`` reproduces the claim as an
experiment (see ``benchmarks/bench_power_claim.py``).
"""

from .energy import EnergyBreakdown, cache_access_energy, optimal_access_energy
from .system import SystemEnergy, energy_per_instruction

__all__ = [
    "EnergyBreakdown",
    "cache_access_energy",
    "optimal_access_energy",
    "SystemEnergy",
    "energy_per_instruction",
]
