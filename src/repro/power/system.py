"""Energy per instruction for a whole cache system on a workload.

Combines per-level access energies with simulated access counts:

* every instruction accesses the L1 I-cache, and ``data_ratio`` of them
  access the L1 D-cache in the same cycle;
* every L1 miss probes the L2 (two-level systems);
* every off-chip fetch pays a fixed (configurable) energy for the pad
  drivers and external access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..cache.hierarchy import Policy
from ..core.config import SystemConfig
from ..core.evaluate import _cached_stats
from ..traces.address import Trace
from ..traces.store import get_trace
from .energy import optimal_access_energy

__all__ = ["SystemEnergy", "energy_per_instruction"]

#: Energy of one off-chip line fetch (pJ): pad drivers, bus, external
#: array — two orders of magnitude above an on-chip access, in line
#: with the era's chip-crossing costs.
OFF_CHIP_PJ = 2000.0


@dataclass(frozen=True)
class SystemEnergy:
    """Energy accounting for one (config, workload) pair."""

    config: SystemConfig
    workload: str
    l1_access_pj: float
    l2_access_pj: float
    l1_energy_pj: float
    l2_energy_pj: float
    off_chip_energy_pj: float
    n_instructions: int

    @property
    def total_pj(self) -> float:
        return self.l1_energy_pj + self.l2_energy_pj + self.off_chip_energy_pj

    @property
    def epi_pj(self) -> float:
        """Energy per instruction (pJ) — the claim-5 figure of merit."""
        return self.total_pj / self.n_instructions

    @property
    def on_chip_epi_pj(self) -> float:
        """Energy per instruction excluding the off-chip term."""
        return (self.l1_energy_pj + self.l2_energy_pj) / self.n_instructions


def energy_per_instruction(
    config: SystemConfig,
    workload: Union[str, Trace],
    scale: Optional[float] = None,
    off_chip_pj: float = OFF_CHIP_PJ,
) -> SystemEnergy:
    """Energy per instruction of ``config`` on ``workload``.

    Uses the same memoised simulations as :func:`repro.core.evaluate`.
    """
    trace = get_trace(workload, scale) if isinstance(workload, str) else workload
    stats = _cached_stats(
        trace,
        config.l1_bytes,
        config.l2_bytes,
        config.l2_associativity,
        config.policy if config.has_l2 else Policy.CONVENTIONAL,
        config.line_size,
    )
    l1 = optimal_access_energy(
        config.l1_bytes,
        associativity=1,
        ports=config.l1_ports,
        line_size=config.line_size,
        tech=config.tech,
    ).total
    l1_energy = stats.n_refs * l1
    if config.has_l2:
        l2 = optimal_access_energy(
            config.l2_bytes,
            associativity=config.l2_associativity,
            line_size=config.line_size,
            tech=config.tech,
        ).total
        l2_energy = stats.l1_misses * l2
    else:
        l2 = 0.0
        l2_energy = 0.0
    off_chip_energy = stats.off_chip_fetches * off_chip_pj
    return SystemEnergy(
        config=config,
        workload=trace.name,
        l1_access_pj=l1,
        l2_access_pj=l2,
        l1_energy_pj=l1_energy,
        l2_energy_pj=l2_energy,
        off_chip_energy_pj=off_chip_energy,
        n_instructions=stats.n_instructions,
    )
