"""Per-access dynamic energy of one cache array.

Dynamic energy is the capacitance switched per access times V²
(E = C·V·ΔV; full-swing nodes switch the rail, bit lines only swing to
the sense threshold).  The capacitances reuse the timing model's
structural parameters, so array organisation affects energy exactly the
way the paper's intro argues: long word/bit lines in a big monolithic
array burn more charge per access than a small L1's short lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..cache.geometry import DEFAULT_LINE_SIZE, CacheGeometry
from ..errors import ModelError
from ..timing.model import OUTPUT_BITS
from ..timing.optimal import optimal_timing
from ..timing.organization import (
    ArrayOrganization,
    data_array_shape,
    tag_array_shape,
    tag_bits_per_entry,
)
from ..timing.technology import TECH_05UM, Technology

__all__ = ["EnergyBreakdown", "cache_access_energy", "optimal_access_energy"]

#: Supply voltage (V) of the paper's CMOS generation.
VDD = 5.0

#: Fraction of the rail the bit lines swing on a read (small-signal
#: sensing; matches the timing model's threshold development).
BITLINE_SWING = 0.2

#: Energy per sense amplifier activation (pJ) — sense amps burn a
#: roughly constant charge on each strobe.
SENSE_AMP_PJ = 0.4

#: Capacitance unit: all capacitances below are in fF, so C·V² is in
#: femtojoules; divide by 1000 for pJ.
_FJ_TO_PJ = 1e-3


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-structure dynamic energy (pJ) of one cache access."""

    decode: float
    wordline: float
    bitlines: float
    sense_amps: float
    tag_path: float
    output: float

    @property
    def total(self) -> float:
        """Total access energy in pJ."""
        return (
            self.decode
            + self.wordline
            + self.bitlines
            + self.sense_amps
            + self.tag_path
            + self.output
        )


def _full_swing(c_ff: float) -> float:
    """Energy (pJ) to charge ``c_ff`` femtofarads across the rail."""
    return c_ff * VDD * VDD * _FJ_TO_PJ


def _bitline_swing(c_ff: float) -> float:
    """Energy (pJ) for a partial bit-line swing (discharge + precharge)."""
    return c_ff * VDD * (BITLINE_SWING * VDD) * _FJ_TO_PJ


def cache_access_energy(
    geometry: CacheGeometry,
    organization: ArrayOrganization,
    tech: Technology = TECH_05UM,
    ports: int = 1,
) -> EnergyBreakdown:
    """Dynamic energy of one read access to ``geometry``.

    One data subarray and one tag subarray are activated per access
    (the organisation's other subarrays stay precharged); within the
    active subarray every column's bit line swings, which is what makes
    big flat arrays expensive.
    """
    if ports < 1:
        raise ModelError("ports must be >= 1")

    d_rows, d_cols = data_array_shape(
        geometry, organization.ndwl, organization.ndbl, organization.nspd
    )
    t_rows, t_cols = tag_array_shape(
        geometry, organization.ntwl, organization.ntbl, organization.ntspd
    )

    # Decoder: address drivers see the predecode gates and global wire
    # of every subarray; the active subarray's decode spine switches.
    n_subarrays = organization.data_subarrays + organization.tag_subarrays
    c_decode = (
        n_subarrays * (2.0 * tech.c_gate(tech.predecode_gate_um) + 10.0)
        + (d_rows + t_rows) * 0.1
        + (d_rows / 8.0 + t_rows / 8.0) * tech.c_gate(tech.final_decode_gate_um)
    )
    decode = _full_swing(c_decode)

    # Word line of the active data and tag subarrays (full swing).
    c_word_per_cell = (
        tech.c_word_wire_per_cell + 2.0 * tech.c_gate(tech.pass_transistor_um)
    )
    wordline = _full_swing((d_cols + t_cols) * c_word_per_cell)

    # Every column of the active subarrays develops a bit-line swing and
    # is then precharged back; ports multiply the bit-line pairs.
    c_bit_per_cell = tech.c_bit_wire_per_cell + tech.c_diff(tech.pass_transistor_um)
    bitlines = _bitline_swing(
        ports * (d_cols * d_rows + t_cols * t_rows) * c_bit_per_cell
    )

    # Sense amps: one per column actually sensed (after column muxing,
    # OUTPUT_BITS data columns plus the tag entry).
    sensed = OUTPUT_BITS + tag_bits_per_entry(geometry) * geometry.associativity
    sense_amps = sensed * SENSE_AMP_PJ

    # Tag comparator + way-select drivers.
    c_tag = tag_bits_per_entry(geometry) * tech.c_diff(2.0) * geometry.associativity
    if not geometry.is_direct_mapped:
        c_tag += OUTPUT_BITS * tech.c_gate(4.0)
    tag_path = _full_swing(c_tag)

    # Output drivers onto the array bus.
    output = _full_swing(OUTPUT_BITS * (80.0 / OUTPUT_BITS + 1.0))

    return EnergyBreakdown(
        decode=decode,
        wordline=wordline,
        bitlines=bitlines,
        sense_amps=sense_amps,
        tag_path=tag_path,
        output=output,
    )


@lru_cache(maxsize=4096)
def _optimal_access_energy_cached(
    size_bytes: int,
    line_size: int,
    associativity: int,
    ports: int,
    tech: Technology,
) -> EnergyBreakdown:
    geometry = CacheGeometry(
        size_bytes, line_size=line_size, associativity=associativity
    )
    timing = optimal_timing(size_bytes, associativity, line_size, tech)
    return cache_access_energy(geometry, timing.organization, tech, ports)


def optimal_access_energy(
    size_bytes: int,
    associativity: int = 1,
    ports: int = 1,
    line_size: int = DEFAULT_LINE_SIZE,
    tech: Technology = TECH_05UM,
) -> EnergyBreakdown:
    """Access energy of the *timing-optimal* organisation.

    Note the organisation chosen for speed also happens to save access
    energy: splitting the array shortens the lines each access switches
    (only the per-subarray decode fan-out grows).
    """
    return _optimal_access_energy_cached(
        size_bytes, line_size, associativity, ports, tech
    )
