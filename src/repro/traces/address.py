"""Reference-stream container shared by the trace generators and simulators.

The paper's machine model issues one instruction fetch per cycle and, for
a fraction of instructions, one data reference in the same cycle
(split L1 caches service both concurrently).  A :class:`Trace` therefore
carries two parallel streams:

* ``i_addrs[k]`` — the byte address fetched by instruction ``k``;
* ``d_addrs[j]`` / ``d_times[j]`` — the byte address of data reference
  ``j`` and the index of the instruction that issued it.

``d_times`` is non-decreasing, which is what lets the two L1 miss streams
be merged back into program order after independent simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import TraceError

__all__ = ["Trace"]


@dataclass(frozen=True, eq=False)
class Trace:
    """An immutable instruction + data reference stream.

    Equality/hash are by object identity (``eq=False``): traces are
    large arrays memoised by :mod:`repro.traces.store`, and identity
    hashing lets downstream layers ``lru_cache`` simulation results
    keyed on the trace object itself.

    Attributes
    ----------
    name:
        Workload name (e.g. ``"gcc1"``).
    i_addrs:
        ``int64`` byte addresses, one per instruction, in issue order.
    d_addrs:
        ``int64`` byte addresses of data references, in issue order.
    d_times:
        ``int64`` instruction index at which each data reference issues;
        non-decreasing and within ``[0, len(i_addrs))``.
    """

    name: str
    i_addrs: np.ndarray = field(repr=False)
    d_addrs: np.ndarray = field(repr=False)
    d_times: np.ndarray = field(repr=False)
    #: Optional per-data-reference store flag.  Miss behaviour is
    #: identical for loads and stores (write-allocate/fetch-on-write,
    #: §2.2 of the paper); the flags only feed the write-traffic
    #: accounting extension (:mod:`repro.ext.writes`).  ``None`` means
    #: "all loads".
    d_is_store: "np.ndarray | None" = field(repr=False, default=None)

    def __post_init__(self) -> None:
        i_addrs = np.ascontiguousarray(self.i_addrs, dtype=np.int64)
        d_addrs = np.ascontiguousarray(self.d_addrs, dtype=np.int64)
        d_times = np.ascontiguousarray(self.d_times, dtype=np.int64)
        if self.d_is_store is None:
            d_is_store = np.zeros(len(d_addrs), dtype=bool)
        else:
            d_is_store = np.ascontiguousarray(self.d_is_store, dtype=bool)
        object.__setattr__(self, "i_addrs", i_addrs)
        object.__setattr__(self, "d_addrs", d_addrs)
        object.__setattr__(self, "d_times", d_times)
        object.__setattr__(self, "d_is_store", d_is_store)
        self._validate()
        self.i_addrs.setflags(write=False)
        self.d_addrs.setflags(write=False)
        self.d_times.setflags(write=False)
        self.d_is_store.setflags(write=False)

    def _validate(self) -> None:
        if self.i_addrs.ndim != 1 or self.d_addrs.ndim != 1 or self.d_times.ndim != 1:
            raise TraceError("trace arrays must be one-dimensional")
        if len(self.i_addrs) == 0:
            raise TraceError("a trace must contain at least one instruction")
        if len(self.d_addrs) != len(self.d_times):
            raise TraceError("d_addrs and d_times must have equal length")
        if len(self.d_is_store) != len(self.d_addrs):
            raise TraceError("d_is_store must align with d_addrs")
        if len(self.d_times):
            if self.d_times[0] < 0 or self.d_times[-1] >= len(self.i_addrs):
                raise TraceError("d_times out of instruction-index range")
            if np.any(np.diff(self.d_times) < 0):
                raise TraceError("d_times must be non-decreasing")
        if np.any(self.i_addrs < 0) or (len(self.d_addrs) and np.any(self.d_addrs < 0)):
            raise TraceError("addresses must be non-negative")

    @property
    def n_instructions(self) -> int:
        """Number of instructions (equals the number of I-fetches)."""
        return len(self.i_addrs)

    @property
    def n_data_refs(self) -> int:
        """Number of data references."""
        return len(self.d_addrs)

    @property
    def n_refs(self) -> int:
        """Total references, as counted in the paper's Table 1."""
        return self.n_instructions + self.n_data_refs

    @property
    def data_ratio(self) -> float:
        """Data references per instruction."""
        return self.n_data_refs / self.n_instructions

    @property
    def store_fraction(self) -> float:
        """Fraction of data references that are stores."""
        if self.n_data_refs == 0:
            return 0.0
        return float(self.d_is_store.mean())

    def i_lines(self, line_size: int) -> np.ndarray:
        """Instruction stream as line addresses for ``line_size``-byte lines."""
        return self.i_addrs // line_size

    def d_lines(self, line_size: int) -> np.ndarray:
        """Data stream as line addresses for ``line_size``-byte lines."""
        return self.d_addrs // line_size

    def __len__(self) -> int:
        return self.n_refs

    def __repr__(self) -> str:  # short, array-free
        return (
            f"Trace(name={self.name!r}, instructions={self.n_instructions}, "
            f"data_refs={self.n_data_refs})"
        )
