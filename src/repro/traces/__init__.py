"""Synthetic memory-reference traces standing in for the paper's SPEC89 traces.

The original study consumed address traces of gcc1, espresso, fpppp,
doduc, li, eqntott, and tomcatv captured on a DECStation 5000 (Table 1 of
the paper).  Those traces are not available, so this package provides a
deterministic synthetic workload model per benchmark (see
:mod:`repro.traces.workloads`), calibrated so that the miss-rate-vs-size
curves — the only property the study consumes — have the shapes the
paper reports.  See DESIGN.md §2 for the substitution rationale.

Public API
----------
:class:`~repro.traces.address.Trace`
    An immutable instruction + data reference stream.
:class:`~repro.traces.workloads.WorkloadSpec` and
:data:`~repro.traces.workloads.WORKLOADS`
    The seven calibrated workload models.
:func:`~repro.traces.store.get_trace`
    Memoised trace generation (`REPRO_TRACE_SCALE` aware).
:class:`~repro.traces.stats.TraceStats`
    Summary statistics used by the Table 1 reproduction.
"""

from .address import Trace
from .stats import TraceStats, compute_stats
from .store import clear_trace_cache, default_scale, get_trace
from .synthetic import SyntheticWorkload
from .workloads import WORKLOADS, WorkloadSpec, workload_names

__all__ = [
    "Trace",
    "TraceStats",
    "compute_stats",
    "SyntheticWorkload",
    "WorkloadSpec",
    "WORKLOADS",
    "workload_names",
    "get_trace",
    "default_scale",
    "clear_trace_cache",
]
