"""Deterministic synthetic reference-stream generators.

The generators model the two structural features that determine cache
miss-rate curves (the only trace property the study consumes):

* **Temporal locality** — references are drawn from a working set with a
  Zipf-like popularity distribution; the footprint size sets where the
  miss-rate curve flattens and the exponent sets how steeply it falls.
* **Spatial structure** — instruction fetch proceeds through sequential
  "function bodies" chosen by popularity (loops and calls), and data
  components may be streaming walks over large arrays (tomcatv-style),
  which make the miss rate insensitive to cache size.

Everything is generated with vectorised numpy from a seed derived from
the workload name, so traces are reproducible across runs and platforms.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence, Tuple, Union

import numpy as np

from ..errors import TraceError
from .address import Trace

__all__ = [
    "ZipfComponent",
    "StreamComponent",
    "InstructionModel",
    "SyntheticWorkload",
]

#: Bytes per instruction (a 32-bit RISC instruction, as in the paper's
#: DECStation traces).
INSTRUCTION_BYTES = 4

#: Regions are placed on 16 GiB boundaries so code and each data
#: component can never alias each other.
_REGION_SPACING = 1 << 34


def _seed_from(name: str, salt: str) -> int:
    """Stable 64-bit seed derived from a workload name and a salt."""
    digest = hashlib.sha256(f"{name}/{salt}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def _zipf_cdf(n_items: int, exponent: float) -> np.ndarray:
    """Cumulative distribution of a Zipf(``exponent``) law over ``n_items``."""
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return cdf


def _sample_zipf(rng: np.random.Generator, cdf: np.ndarray, size: int) -> np.ndarray:
    """Draw ``size`` ranks (0-based) from a precomputed Zipf CDF."""
    u = rng.random(size)
    return np.searchsorted(cdf, u, side="left").astype(np.int64)


@dataclass(frozen=True)
class ZipfComponent:
    """Data references drawn Zipf-fashion from a fixed working set.

    Attributes
    ----------
    weight:
        Relative share of data references served by this component.
    footprint_bytes:
        Total working-set size; the miss-rate knee sits near this value.
    exponent:
        Zipf exponent; larger means steeper locality (faster miss-rate
        decay as the cache grows).
    granule_bytes:
        Addressable granule.  16 matches the line size, so each rank is
        one distinct line; smaller granules create intra-line reuse.
    """

    weight: float
    footprint_bytes: int
    exponent: float
    granule_bytes: int = 16

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise TraceError("component weight must be positive")
        if self.footprint_bytes < self.granule_bytes:
            raise TraceError("footprint smaller than one granule")
        if self.exponent <= 0:
            raise TraceError("zipf exponent must be positive")

    @property
    def n_granules(self) -> int:
        return max(1, self.footprint_bytes // self.granule_bytes)


@dataclass(frozen=True)
class StreamComponent:
    """Round-robin sequential walks over large arrays (vector code).

    Models tomcatv-style array sweeps: ``n_arrays`` arrays are walked in
    lockstep with a fixed stride, wrapping at ``array_bytes``.  Once the
    arrays exceed the cache size the component contributes an almost
    size-independent miss rate of ``stride / line_size`` per reference.
    """

    weight: float
    n_arrays: int
    array_bytes: int
    stride_bytes: int = 8
    #: Extra spacing between consecutive arrays.  Power-of-two sized
    #: arrays placed back-to-back would alias to identical cache sets
    #: and every round-robin reference would conflict-miss; real
    #: programs' arrays are separated by other data, modelled here as a
    #: deliberately non-power-of-two gap.
    stagger_bytes: int = 6400

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise TraceError("component weight must be positive")
        if self.n_arrays < 1:
            raise TraceError("need at least one array")
        if self.array_bytes < self.stride_bytes:
            raise TraceError("array smaller than one stride")
        if self.stagger_bytes < 0:
            raise TraceError("stagger must be non-negative")


DataComponent = Union[ZipfComponent, StreamComponent]


@dataclass(frozen=True)
class InstructionModel:
    """Instruction-fetch model: Zipf-selected sequential function bodies.

    The code footprint is split into ``n_functions`` equal, contiguous
    bodies.  Execution repeatedly picks a function with Zipf popularity
    and fetches it sequentially from start to end.  This yields long
    sequential runs (good spatial locality) over a working set whose
    effective size is controlled by the exponent — exactly the knobs
    needed to position each benchmark's instruction miss-rate curve.
    """

    footprint_bytes: int
    n_functions: int
    exponent: float

    def __post_init__(self) -> None:
        if self.n_functions < 1:
            raise TraceError("need at least one function")
        if self.footprint_bytes < self.n_functions * INSTRUCTION_BYTES:
            raise TraceError("code footprint smaller than one instruction per function")

    @property
    def function_bytes(self) -> int:
        return self.footprint_bytes // self.n_functions

    @property
    def function_instructions(self) -> int:
        return max(1, self.function_bytes // INSTRUCTION_BYTES)


class SyntheticWorkload:
    """A reproducible synthetic workload.

    Parameters
    ----------
    name:
        Workload name; also the seed material, so two workloads with the
        same name and parameters generate identical traces.
    instructions:
        The instruction-fetch model.
    data_components:
        Mixture of :class:`ZipfComponent` / :class:`StreamComponent`.
    data_ratio:
        Data references per instruction (Table 1 of the paper).
    store_fraction:
        Fraction of data references flagged as stores.  Stores behave
        exactly like loads in the miss model (§2.2); the flag feeds the
        write-traffic accounting extension.
    """

    def __init__(
        self,
        name: str,
        instructions: InstructionModel,
        data_components: Sequence[DataComponent],
        data_ratio: float,
        store_fraction: float = 0.0,
    ) -> None:
        if not 0.0 < data_ratio < 1.0:
            raise TraceError("data_ratio must be in (0, 1)")
        if not 0.0 <= store_fraction <= 1.0:
            raise TraceError("store_fraction must be in [0, 1]")
        if not data_components:
            raise TraceError("at least one data component is required")
        self.name = name
        self.instructions = instructions
        self.data_components = tuple(data_components)
        self.data_ratio = data_ratio
        self.store_fraction = store_fraction

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------

    def generate(self, n_instructions: int) -> Trace:
        """Generate a trace with approximately ``n_instructions`` fetches.

        The instruction count is trimmed to an exact value; the data
        reference count follows from ``data_ratio`` stochastically.
        """
        if n_instructions < 1:
            raise TraceError("n_instructions must be positive")
        rng = np.random.default_rng(_seed_from(self.name, "trace"))
        i_addrs = self._generate_instructions(rng, n_instructions)
        d_addrs, d_times = self._generate_data(rng, n_instructions)
        d_is_store = rng.random(len(d_addrs)) < self.store_fraction
        return Trace(self.name, i_addrs, d_addrs, d_times, d_is_store)

    def _generate_instructions(
        self, rng: np.random.Generator, n_instructions: int
    ) -> np.ndarray:
        model = self.instructions
        per_call = model.function_instructions
        n_calls = int(np.ceil(n_instructions / per_call)) + 1
        cdf = _zipf_cdf(model.n_functions, model.exponent)
        ranks = _sample_zipf(rng, cdf, n_calls)
        # Spread popular functions across the address space so Zipf rank
        # adjacency does not translate into set adjacency.
        placement = rng.permutation(model.n_functions).astype(np.int64)
        bases = placement[ranks] * model.function_bytes
        # Expand each call into a sequential fetch run.
        total = n_calls * per_call
        offsets = np.tile(
            np.arange(per_call, dtype=np.int64) * INSTRUCTION_BYTES, n_calls
        )
        addrs = np.repeat(bases, per_call) + offsets
        if total < n_instructions:  # pragma: no cover - guarded by ceil above
            raise TraceError("internal error: instruction expansion too short")
        return addrs[:n_instructions]

    def _generate_data(
        self, rng: np.random.Generator, n_instructions: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        issue = rng.random(n_instructions) < self.data_ratio
        d_times = np.nonzero(issue)[0].astype(np.int64)
        n_data = len(d_times)
        d_addrs = np.zeros(n_data, dtype=np.int64)
        if n_data == 0:
            return d_addrs, d_times

        weights = np.array([c.weight for c in self.data_components], dtype=np.float64)
        weights /= weights.sum()
        choice = rng.choice(len(self.data_components), size=n_data, p=weights)

        for index, component in enumerate(self.data_components):
            mask = choice == index
            count = int(mask.sum())
            if count == 0:
                continue
            region_base = (index + 1) * _REGION_SPACING
            if isinstance(component, ZipfComponent):
                d_addrs[mask] = region_base + self._zipf_addresses(
                    rng, component, count
                )
            else:
                d_addrs[mask] = region_base + self._stream_addresses(
                    component, count
                )
        return d_addrs, d_times

    def _zipf_addresses(
        self, rng: np.random.Generator, component: ZipfComponent, count: int
    ) -> np.ndarray:
        cdf = _zipf_cdf(component.n_granules, component.exponent)
        ranks = _sample_zipf(rng, cdf, count)
        placement = rng.permutation(component.n_granules).astype(np.int64)
        return placement[ranks] * component.granule_bytes

    def _stream_addresses(self, component: StreamComponent, count: int) -> np.ndarray:
        seq = np.arange(count, dtype=np.int64)
        array_id = seq % component.n_arrays
        position = (seq // component.n_arrays) * component.stride_bytes
        position %= component.array_bytes
        spacing = component.array_bytes + component.stagger_bytes
        return array_id * spacing + position

    def __repr__(self) -> str:
        return (
            f"SyntheticWorkload(name={self.name!r}, "
            f"data_ratio={self.data_ratio}, "
            f"components={len(self.data_components)})"
        )
