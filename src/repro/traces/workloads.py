"""The seven calibrated SPEC89-like workload models.

Each :class:`WorkloadSpec` stands in for one benchmark from the paper's
Table 1.  The parameters were calibrated (see ``tests/test_calibration``
and EXPERIMENTS.md) so that the combined L1 miss-rate curves reproduce
the anchors and qualitative behaviours the paper reports:

======== ===========================================================
gcc1     code-heavy, miss rate falls steadily up to ~128 KB
espresso tiny working set, ~0.0100 at 32 KB, little to gain beyond
fpppp    very long basic blocks, large code footprint (wins at 64 KB+)
doduc    numeric mix, moderate code + data footprints
li       pointer-chasing lisp interpreter, mid-size working set
eqntott  low miss rate ~0.0149 at 32 KB, small code, skewed data
tomcatv  streaming vector code, ~0.109 at 32 KB and nearly flat
======== ===========================================================

The ``paper_instruction_refs`` / ``paper_data_refs`` fields carry the
original Table 1 reference counts (in millions) so the Table 1
reproduction can show the original scale next to the synthetic one.
Data-reference ratios follow Table 1 exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import TraceError
from ..units import kb
from .synthetic import (
    InstructionModel,
    StreamComponent,
    SyntheticWorkload,
    ZipfComponent,
)

__all__ = ["WorkloadSpec", "WORKLOADS", "workload_names", "get_workload"]

#: Instructions generated at trace scale 1.0.
BASE_INSTRUCTIONS = 1_000_000


@dataclass(frozen=True)
class WorkloadSpec:
    """A named synthetic stand-in for one of the paper's benchmarks."""

    name: str
    description: str
    #: Millions of instruction references in the paper's original trace.
    paper_instruction_refs: float
    #: Millions of data references in the paper's original trace.
    paper_data_refs: float
    instructions: InstructionModel
    data_components: Sequence[object]
    data_ratio: float
    #: Fraction of data references that are stores (feeds the
    #: write-traffic extension; miss behaviour is unaffected, §2.2).
    store_fraction: float = 0.35

    @property
    def paper_total_refs(self) -> float:
        """Millions of total references in the original trace (Table 1)."""
        return self.paper_instruction_refs + self.paper_data_refs

    def build(self) -> SyntheticWorkload:
        """Instantiate the generator for this workload."""
        return SyntheticWorkload(
            name=self.name,
            instructions=self.instructions,
            data_components=self.data_components,
            data_ratio=self.data_ratio,
            store_fraction=self.store_fraction,
        )


def _spec(
    name: str,
    description: str,
    paper_i: float,
    paper_d: float,
    code_kb: int,
    function_instructions: int,
    code_exponent: float,
    data_components: Sequence[object],
    store_fraction: float = 0.35,
) -> WorkloadSpec:
    footprint = kb(code_kb)
    n_functions = max(1, footprint // (function_instructions * 4))
    return WorkloadSpec(
        name=name,
        description=description,
        paper_instruction_refs=paper_i,
        paper_data_refs=paper_d,
        instructions=InstructionModel(
            footprint_bytes=footprint,
            n_functions=n_functions,
            exponent=code_exponent,
        ),
        data_components=tuple(data_components),
        data_ratio=paper_d / paper_i,
        store_fraction=store_fraction,
    )


def _build_catalog() -> Dict[str, WorkloadSpec]:
    specs: List[WorkloadSpec] = [
        _spec(
            "gcc1",
            "GNU C compiler: large code footprint, diverse data",
            22.7,
            7.2,
            code_kb=96,
            function_instructions=48,
            code_exponent=1.55,
            store_fraction=0.35,
            data_components=[
                ZipfComponent(weight=0.35, footprint_bytes=kb(4), exponent=2.0),
                ZipfComponent(weight=0.60, footprint_bytes=kb(224), exponent=1.55),
                StreamComponent(weight=0.05, n_arrays=2, array_bytes=kb(64)),
            ],
        ),
        _spec(
            "espresso",
            "logic minimiser: small, hot working set",
            135.3,
            31.8,
            code_kb=24,
            function_instructions=64,
            code_exponent=1.75,
            store_fraction=0.25,
            data_components=[
                ZipfComponent(weight=0.55, footprint_bytes=kb(2), exponent=2.0),
                ZipfComponent(weight=0.45, footprint_bytes=kb(512), exponent=1.3),
            ],
        ),
        _spec(
            "fpppp",
            "quantum chemistry: enormous basic blocks",
            244.1,
            136.2,
            code_kb=192,
            function_instructions=1024,
            code_exponent=1.35,
            store_fraction=0.45,
            data_components=[
                ZipfComponent(weight=0.50, footprint_bytes=kb(8), exponent=1.9),
                ZipfComponent(weight=0.50, footprint_bytes=kb(160), exponent=1.55),
            ],
        ),
        _spec(
            "doduc",
            "Monte-Carlo nuclear reactor model: numeric mix",
            283.6,
            108.2,
            code_kb=64,
            function_instructions=128,
            code_exponent=1.45,
            store_fraction=0.40,
            data_components=[
                ZipfComponent(weight=0.45, footprint_bytes=kb(8), exponent=1.9),
                ZipfComponent(weight=0.45, footprint_bytes=kb(160), exponent=1.5),
                StreamComponent(weight=0.10, n_arrays=2, array_bytes=kb(96)),
            ],
        ),
        _spec(
            "li",
            "lisp interpreter: pointer chasing over the heap",
            1247.1,
            452.8,
            code_kb=32,
            function_instructions=32,
            code_exponent=1.6,
            store_fraction=0.42,
            data_components=[
                ZipfComponent(weight=0.45, footprint_bytes=kb(4), exponent=2.0),
                ZipfComponent(weight=0.55, footprint_bytes=kb(160), exponent=1.5),
            ],
        ),
        _spec(
            "eqntott",
            "truth-table generator: tiny code, skewed data",
            1484.7,
            293.6,
            code_kb=8,
            function_instructions=96,
            code_exponent=1.7,
            store_fraction=0.12,
            data_components=[
                ZipfComponent(weight=0.50, footprint_bytes=kb(2), exponent=2.0),
                ZipfComponent(weight=0.35, footprint_bytes=kb(192), exponent=1.6),
                StreamComponent(weight=0.15, n_arrays=1, array_bytes=kb(192)),
            ],
        ),
        _spec(
            "tomcatv",
            "vectorised mesh generation: streaming array sweeps",
            1986.3,
            963.6,
            code_kb=4,
            function_instructions=256,
            code_exponent=1.5,
            store_fraction=0.40,
            data_components=[
                StreamComponent(weight=0.62, n_arrays=7, array_bytes=kb(256)),
                ZipfComponent(weight=0.38, footprint_bytes=kb(24), exponent=1.7),
            ],
        ),
    ]
    return {spec.name: spec for spec in specs}


#: Catalog of the seven workload models, keyed by benchmark name.
WORKLOADS: Dict[str, WorkloadSpec] = _build_catalog()


def workload_names() -> List[str]:
    """The seven benchmark names in the paper's Table 1 order."""
    return list(WORKLOADS.keys())


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload spec by name.

    Raises
    ------
    TraceError
        If ``name`` is not one of the seven benchmarks.
    """
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(WORKLOADS)
        raise TraceError(f"unknown workload {name!r}; known: {known}") from None
