"""Summary statistics over traces (used by the Table 1 reproduction)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .address import Trace

__all__ = ["TraceStats", "compute_stats"]


@dataclass(frozen=True)
class TraceStats:
    """Counts and footprints for one trace.

    Footprints are measured in unique 16-byte lines touched, converted
    to bytes, which is the quantity that determines where miss-rate
    curves flatten.
    """

    name: str
    n_instructions: int
    n_data_refs: int
    instruction_footprint_bytes: int
    data_footprint_bytes: int

    @property
    def n_refs(self) -> int:
        """Total references (instruction + data)."""
        return self.n_instructions + self.n_data_refs

    @property
    def data_ratio(self) -> float:
        """Data references per instruction."""
        return self.n_data_refs / self.n_instructions

    @property
    def total_footprint_bytes(self) -> int:
        """Combined unique-line footprint in bytes."""
        return self.instruction_footprint_bytes + self.data_footprint_bytes


def compute_stats(trace: Trace, line_size: int = 16) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace`` at ``line_size`` granularity."""
    i_unique = len(np.unique(trace.i_lines(line_size)))
    d_unique = len(np.unique(trace.d_lines(line_size))) if trace.n_data_refs else 0
    return TraceStats(
        name=trace.name,
        n_instructions=trace.n_instructions,
        n_data_refs=trace.n_data_refs,
        instruction_footprint_bytes=i_unique * line_size,
        data_footprint_bytes=d_unique * line_size,
    )
