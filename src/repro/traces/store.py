"""Process-wide memoised trace generation.

Trace generation is the most expensive part of a sweep after the cache
simulation itself, and every experiment reuses the same traces, so
generated traces are cached per ``(workload, scale)``.

The default scale comes from the ``REPRO_TRACE_SCALE`` environment
variable (1.0 → :data:`~repro.traces.workloads.BASE_INSTRUCTIONS`
instructions per workload).  Tests pass explicit small scales instead of
mutating the environment.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from ..errors import TraceError
from .address import Trace
from .workloads import BASE_INSTRUCTIONS, get_workload

__all__ = ["default_scale", "get_trace", "clear_trace_cache"]

_ENV_VAR = "REPRO_TRACE_SCALE"

_cache: Dict[Tuple[str, int], Trace] = {}


def default_scale() -> float:
    """The trace scale from ``REPRO_TRACE_SCALE`` (default 1.0)."""
    raw = os.environ.get(_ENV_VAR)
    if raw is None:
        return 1.0
    try:
        scale = float(raw)
    except ValueError:
        raise TraceError(f"{_ENV_VAR}={raw!r} is not a number") from None
    if scale <= 0:
        raise TraceError(f"{_ENV_VAR} must be positive, got {scale}")
    return scale


def get_trace(name: str, scale: Optional[float] = None) -> Trace:
    """Return the (memoised) trace for workload ``name`` at ``scale``.

    Parameters
    ----------
    name:
        One of the seven benchmark names.
    scale:
        Multiplier on the base instruction count; ``None`` means the
        environment default.
    """
    if scale is None:
        scale = default_scale()
    n_instructions = max(1, int(round(BASE_INSTRUCTIONS * scale)))
    key = (name, n_instructions)
    trace = _cache.get(key)
    if trace is None:
        spec = get_workload(name)
        trace = spec.build().generate(n_instructions)
        _cache[key] = trace
    return trace


def clear_trace_cache() -> None:
    """Drop all memoised traces (mainly for tests managing memory)."""
    _cache.clear()
