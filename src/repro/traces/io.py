"""Trace file I/O: save/load traces and import ``din``-format traces.

Two formats are supported:

* **npz** — the library's native round-trip format (numpy arrays plus
  the workload name), compact and lossless.
* **din** — the classic Dinero text trace format used by cache studies
  of the paper's era: one reference per line, ``<label> <hex-address>``
  with label 0 = data read, 1 = data write, 2 = instruction fetch.
  Since the paper models writes as reads (§2.2), reads and writes both
  become data references (the write flag is preserved for the
  write-traffic extension); instruction fetches define the issue
  timeline, and data references are attributed to the most recent
  fetch.

This lets users substitute *real* traces for the synthetic workload
models without touching any other layer.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import List, Union

import numpy as np

from ..errors import TraceError
from ..runner.atomic import atomic_open
from .address import Trace

__all__ = ["save_trace", "load_trace", "read_din", "write_din"]

_DIN_READ = 0
_DIN_WRITE = 1
_DIN_FETCH = 2


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` as a compressed ``.npz`` archive.

    The archive is written to a ``.tmp`` sibling and renamed into
    place, so an interrupted save never leaves a torn archive behind;
    a sha256 sidecar records the archive's digest so ``repro verify``
    can prove it unchanged later.
    """
    path = Path(path)
    if not path.suffix:
        # np.savez appends .npz to bare filenames; keep that contract.
        path = path.with_suffix(".npz")
    with atomic_open(path, "wb", track=True) as handle:
        np.savez_compressed(
            handle,
            name=np.array(trace.name),
            i_addrs=trace.i_addrs,
            d_addrs=trace.d_addrs,
            d_times=trace.d_times,
            d_is_store=trace.d_is_store,
        )


def _validate_trace_arrays(
    path: Path,
    i_addrs: np.ndarray,
    d_addrs: np.ndarray,
    d_times: np.ndarray,
    d_is_store: "np.ndarray | None",
) -> None:
    for label, array in (("i_addrs", i_addrs), ("d_addrs", d_addrs), ("d_times", d_times)):
        if not np.issubdtype(array.dtype, np.integer):
            raise TraceError(
                f"{path}: {label} must be an integer array, got dtype {array.dtype}"
            )
    if len(d_addrs) != len(d_times):
        raise TraceError(
            f"{path}: d_addrs ({len(d_addrs)}) and d_times ({len(d_times)}) "
            f"lengths disagree"
        )
    if d_is_store is not None:
        if not (
            d_is_store.dtype == np.bool_
            or np.issubdtype(d_is_store.dtype, np.integer)
        ):
            raise TraceError(
                f"{path}: d_is_store must be boolean, got dtype {d_is_store.dtype}"
            )
        if len(d_is_store) != len(d_addrs):
            raise TraceError(
                f"{path}: d_is_store ({len(d_is_store)}) and d_addrs "
                f"({len(d_addrs)}) lengths disagree"
            )
    if len(d_times):
        if d_times[0] < 0:
            raise TraceError(f"{path}: d_times must be non-negative")
        if np.any(np.diff(d_times) < 0):
            raise TraceError(f"{path}: d_times must be non-decreasing")


def load_trace(path: Union[str, Path]) -> Trace:
    """Load a trace previously written by :func:`save_trace`.

    Raises
    ------
    TraceError
        If the archive does not contain the expected arrays, or the
        arrays fail validation (wrong dtypes, mismatched lengths,
        decreasing ``d_times``, out-of-range indices).
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        try:
            name = str(archive["name"])
            i_addrs = archive["i_addrs"]
            d_addrs = archive["d_addrs"]
            d_times = archive["d_times"]
        except KeyError as missing:
            raise TraceError(f"{path} is not a trace archive: missing {missing}") from None
        # Archives written before store flags existed stay loadable.
        d_is_store = archive["d_is_store"] if "d_is_store" in archive else None
    _validate_trace_arrays(path, i_addrs, d_addrs, d_times, d_is_store)
    try:
        return Trace(name, i_addrs, d_addrs, d_times, d_is_store)
    except TraceError as error:
        raise TraceError(f"{path}: {error}") from None


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_din(path: Union[str, Path], name: str = "") -> Trace:
    """Parse a Dinero ``din`` trace (optionally gzip-compressed).

    Data references that occur before the first instruction fetch are
    attributed to instruction 0.

    Raises
    ------
    TraceError
        On malformed lines, unknown labels, or a trace with no
        instruction fetches.
    """
    path = Path(path)
    i_addrs: List[int] = []
    d_addrs: List[int] = []
    d_times: List[int] = []
    d_is_store: List[bool] = []
    with _open_text(path, "r") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise TraceError(f"{path}:{line_number}: expected 'label address'")
            try:
                label = int(parts[0])
                address = int(parts[1], 16)
            except ValueError:
                raise TraceError(
                    f"{path}:{line_number}: unparsable reference {line!r}"
                ) from None
            if label == _DIN_FETCH:
                i_addrs.append(address)
            elif label in (_DIN_READ, _DIN_WRITE):
                # Writes are modelled as reads (fetch-on-write, §2.2);
                # the flag is kept for write-back accounting.
                d_addrs.append(address)
                d_times.append(max(0, len(i_addrs) - 1))
                d_is_store.append(label == _DIN_WRITE)
            else:
                raise TraceError(
                    f"{path}:{line_number}: unknown din label {label}"
                )
    if not i_addrs:
        raise TraceError(f"{path}: din trace contains no instruction fetches")
    return Trace(
        name or path.stem,
        np.array(i_addrs, dtype=np.int64),
        np.array(d_addrs, dtype=np.int64),
        np.array(d_times, dtype=np.int64),
        np.array(d_is_store, dtype=bool),
    )


def write_din(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` in ``din`` format (gzip if the path ends ``.gz``).

    Data references are emitted after the fetch of the instruction that
    issued them, preserving the program order the simulators use.
    Every data reference is emitted: a reference whose ``d_times`` is
    behind the cursor (out of order) still attaches to the current
    fetch, and one past the last fetch raises :class:`TraceError`
    rather than being silently dropped — so
    ``read_din(write_din(t))`` always preserves reference counts.
    The file is fully rendered before anything touches disk, so a
    rejected trace leaves no partial artefact.
    """
    path = Path(path)
    d_cursor = 0
    n_data = trace.n_data_refs
    d_times = trace.d_times
    buffer = io.StringIO()
    for cycle, i_addr in enumerate(trace.i_addrs.tolist()):
        buffer.write(f"{_DIN_FETCH} {i_addr:x}\n")
        while d_cursor < n_data and d_times[d_cursor] <= cycle:
            label = _DIN_WRITE if trace.d_is_store[d_cursor] else _DIN_READ
            buffer.write(f"{label} {trace.d_addrs[d_cursor]:x}\n")
            d_cursor += 1
    if d_cursor != n_data:
        raise TraceError(
            f"{path}: {n_data - d_cursor} data references issue after the last "
            f"instruction fetch and cannot be represented in din format"
        )
    with _open_text(path, "w") as handle:
        handle.write(buffer.getvalue())
