"""Units and small numeric helpers shared across the library.

The paper works in three unit systems:

* **bytes / kilobytes** for cache capacities (all powers of two),
* **nanoseconds** for access, cycle, and off-chip service times,
* **register-bit equivalents (rbe)** for silicon area, after Mulder,
  Quach and Flynn.

This module centralises conversions and the power-of-two arithmetic used
throughout the cache, timing, and area models.
"""

from __future__ import annotations

import math

from .errors import GeometryError, ModelError

__all__ = [
    "KB",
    "kb",
    "to_kb",
    "is_pow2",
    "log2_int",
    "ceil_div",
    "round_up_to_multiple",
    "fmt_size",
]

#: Number of bytes in a kilobyte (binary, as the paper uses).
KB: int = 1024


def kb(n: float) -> int:
    """Return ``n`` kilobytes expressed in bytes.

    >>> kb(4)
    4096
    """
    value = n * KB
    result = int(value)
    if result != value:
        raise GeometryError(f"{n} KB is not a whole number of bytes")
    return result


def to_kb(nbytes: int) -> float:
    """Return ``nbytes`` expressed in kilobytes.

    >>> to_kb(8192)
    8.0
    """
    return nbytes / KB


def is_pow2(n: object) -> bool:
    """Return True if ``n`` is a positive power-of-two integer.

    Accepts any object so it can double as a validation predicate:
    non-integers — including ``bool``, which *is* an ``int`` but never a
    meaningful cache dimension — are simply not powers of two.

    >>> is_pow2(64), is_pow2(0), is_pow2(3)
    (True, False, False)
    >>> is_pow2(True), is_pow2(-8), is_pow2(4.0)
    (False, False, False)
    """
    if isinstance(n, bool) or not isinstance(n, int):
        return False
    return n > 0 and (n & (n - 1)) == 0


def log2_int(n: int) -> int:
    """Return log2 of a power-of-two integer, raising otherwise.

    >>> log2_int(1024)
    10
    """
    if not is_pow2(n):
        raise GeometryError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``.

    >>> ceil_div(7, 2)
    4
    """
    if b <= 0:
        raise ModelError("divisor must be positive")
    return -(-a // b)


def round_up_to_multiple(value: float, quantum: float) -> float:
    """Round ``value`` up to the next multiple of ``quantum``.

    This implements the paper's quantisation rule: the L2 cycle time and
    the off-chip service time are both "rounded to the next higher
    multiple of the L1 cycle time".  Values already on a multiple are
    left unchanged (a small relative tolerance absorbs floating-point
    noise).

    >>> round_up_to_multiple(4.1, 2.0)
    6.0
    >>> round_up_to_multiple(4.0, 2.0)
    4.0
    """
    if quantum <= 0:
        raise ModelError("quantum must be positive")
    if value <= 0:
        return 0.0
    ratio = value / quantum
    n = math.ceil(ratio - 1e-9)
    return n * quantum


def fmt_size(nbytes: int) -> str:
    """Format a byte count the way the paper labels points, e.g. ``32K``.

    >>> fmt_size(32768)
    '32K'
    >>> fmt_size(512)
    '512B'
    """
    if nbytes >= KB and nbytes % KB == 0:
        return f"{nbytes // KB}K"
    return f"{nbytes}B"
