"""Deterministic fault injection for exercising the execution engine.

The robustness machinery (isolation, retries, timeouts, resume) is only
trustworthy if it can be *demonstrated*, so the engine consults this
module before every unit attempt and the report writer after every
artefact write.  Faults are configured either programmatically
(:func:`install`) or through the ``REPRO_FAULTS`` environment variable,
and fire deterministically on named units — no randomness, so tests and
CI smoke runs reproduce exactly.

Specification grammar (comma-separated, e.g.
``REPRO_FAULTS="fail=fig5:2,delay=fig7:0.5"``)::

    fail=<unit>[:<times>]    raise InjectedFault on <unit>, <times> attempts
    crash=<unit>             raise InjectedCrash before <unit> (simulated kill)
    delay=<unit>[:<seconds>] sleep before running <unit>
    corrupt=<unit>           truncate <unit>'s written artefact (torn write)

Unit ids may themselves contain colons (sweep units look like
``0007:8:64``): the optional argument is split off at the *last* colon,
so a colon-bearing unit id must spell the argument out explicitly
(``fail=0007:8:64:2``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Optional, Union

from ..errors import ReproError, RunnerError

__all__ = [
    "ENV_VAR",
    "InjectedFault",
    "InjectedCrash",
    "FaultPlan",
    "parse_plan",
    "install",
    "clear",
    "active_plan",
    "before_unit",
    "maybe_corrupt_file",
]

#: Environment variable holding a fault specification.
ENV_VAR = "REPRO_FAULTS"


class InjectedFault(ReproError):
    """A transient failure raised by the fault hook (retryable)."""


class InjectedCrash(BaseException):
    """Simulates a hard kill (SIGKILL/OOM) of the whole process.

    Deliberately derives from :class:`BaseException` so the engine's
    per-unit isolation can never swallow it — exactly like a real kill,
    it terminates the run and only the journal survives.
    """


@dataclass(frozen=True)
class FaultPlan:
    """Which units fail, crash, stall, or corrupt their output."""

    fail_unit: Optional[str] = None
    fail_times: int = 1
    crash_unit: Optional[str] = None
    delay_unit: Optional[str] = None
    delay_s: float = 1.0
    corrupt_unit: Optional[str] = None


_installed: Optional[FaultPlan] = None
_fail_counts: Dict[str, int] = {}


def parse_plan(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS``-style specification string."""
    plan = FaultPlan()
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep or not value:
            raise RunnerError(f"bad fault spec {part!r}: expected kind=unit[:arg]")
        # The numeric argument sits after the *last* colon; unit ids may
        # contain colons of their own.  Argless kinds take the whole
        # value as the unit id.
        head, sep, tail = value.rpartition(":")
        unit, arg = (head, tail) if sep else (value, "")
        try:
            if key == "fail":
                plan = replace(plan, fail_unit=unit, fail_times=int(arg) if arg else 1)
            elif key == "crash":
                plan = replace(plan, crash_unit=value)
            elif key == "delay":
                plan = replace(plan, delay_unit=unit, delay_s=float(arg) if arg else 1.0)
            elif key == "corrupt":
                plan = replace(plan, corrupt_unit=value)
            else:
                raise RunnerError(
                    f"unknown fault kind {key!r}; expected fail/crash/delay/corrupt"
                )
        except ValueError:
            raise RunnerError(f"bad fault argument in {part!r}") from None
    return plan


def install(plan: Optional[FaultPlan]) -> None:
    """Activate ``plan`` for the current process (None deactivates)."""
    global _installed
    _installed = plan
    _fail_counts.clear()


def clear() -> None:
    """Remove any installed plan and reset fail counters."""
    install(None)


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, else one parsed from ``REPRO_FAULTS``."""
    if _installed is not None:
        return _installed
    spec = os.environ.get(ENV_VAR, "")
    return parse_plan(spec) if spec else None


def before_unit(unit_id: str) -> None:
    """Fault hook called by the engine before each unit attempt."""
    plan = active_plan()
    if plan is None:
        return
    if plan.crash_unit == unit_id:
        raise InjectedCrash(f"injected crash before unit {unit_id}")
    if plan.delay_unit == unit_id and plan.delay_s > 0:
        time.sleep(plan.delay_s)
    if plan.fail_unit == unit_id:
        count = _fail_counts.get(unit_id, 0)
        if count < plan.fail_times:
            _fail_counts[unit_id] = count + 1
            raise InjectedFault(
                f"injected fault on unit {unit_id} "
                f"(failure {count + 1} of {plan.fail_times})"
            )


def maybe_corrupt_file(unit_id: str, path: Union[str, Path]) -> None:
    """Truncate ``path`` if the plan corrupts ``unit_id``'s output.

    Emulates a torn write that bypassed the atomic-rename discipline,
    so resume-time artefact validation can be tested.
    """
    plan = active_plan()
    if plan is None or plan.corrupt_unit != unit_id:
        return
    path = Path(path)
    data = path.read_bytes()
    # repro: lint-ok[REP001] deliberately tears the artefact; bypassing the atomic-rename discipline is the point of this fault
    path.write_bytes(data[: len(data) // 2])
