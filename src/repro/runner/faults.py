"""Deterministic fault injection for exercising the execution engine.

The robustness machinery (isolation, retries, timeouts, resume,
integrity verification) is only trustworthy if it can be
*demonstrated*, so the engine consults this module before every unit
attempt, the atomic write path mid-write, and the report writer after
every artefact write.  Faults are configured either programmatically
(:func:`install`) or through the ``REPRO_FAULTS`` environment variable,
and fire deterministically on named units — no randomness, so tests,
CI smoke runs, and the seeded chaos harness reproduce exactly.

Specification grammar (comma-separated, e.g.
``REPRO_FAULTS="fail=fig5:2,delay=fig7:0.5"``)::

    fail=<unit>[:<times>]     raise InjectedFault on <unit>, <times> attempts
    crash=<unit>              raise InjectedCrash before <unit> (simulated kill)
    delay=<unit>[:<seconds>]  sleep before running <unit>
    corrupt=<unit>            truncate <unit>'s written artefact (torn write)
    bitflip=<unit>[:<offset>] XOR one bit into <unit>'s artefact (bit rot)
    partial=<unit>[:<bytes>]  keep only <bytes> bytes of <unit>'s artefact
    enospc=<unit>[:<times>]   fail <unit>'s artefact writes with ENOSPC
    killworker=<unit>         hard-kill the pool worker running <unit>
    slowworker=<unit>[:<s>]   sleep before *every* attempt of <unit>
    pooldeath=<unit>[:<times>] hard-kill the worker running <unit>, <times> times
    poisonmemo=<key>[:<times>] bit-rot a memo-store entry after it is written
    hang=<unit>[:<seconds>]   wedge the pool worker running <unit> (no heartbeat)
    sigterm=<unit>            deliver SIGTERM to the supervising process on <unit>

``corrupt``/``bitflip``/``partial`` emulate damage that *bypassed* the
atomic-rename discipline (a torn write, silent media bit rot), so
resume-time artefact validation and ``repro verify`` can be tested.
``enospc`` fires inside :func:`~repro.runner.atomic.atomic_open` for
writes issued while the named unit is executing, surfacing as the
retryable ``CheckpointError`` the real condition produces.
``killworker`` terminates the *worker process* with ``os._exit`` — the
parent sees a broken pool, exactly like an OOM kill; outside a pool
worker it is a no-op (there is no worker to kill).

The serve-side kinds (``slowworker``/``pooldeath``/``poisonmemo``)
exercise ``repro serve``: request unit ids are canonical config hashes
a test cannot predict, so these three accept ``*`` to match any unit.
``slowworker`` is ``delay`` that fires on *every* attempt (driving a
request past its deadline so the 504 path is reachable); ``pooldeath``
is a times-bounded ``killworker`` (the service must rebuild its pool
mid-request); ``poisonmemo`` flips a bit in a just-written memo-store
artefact *after* its sidecar was recorded — the poisoned entry must be
detected on read, quarantined, and never served.

The lifecycle kinds exercise supervision (:mod:`repro.runner.lifecycle`).
``hang`` wedges a pool worker in an uninterruptible sleep *before* the
unit's heartbeat-stamped attempt begins, exactly the stuck-in-C-code
shape the RSS watchdog cannot see; the parent's liveness check must
kill the worker and requeue the unit.  Outside a pool worker it is a
no-op (the serial engine's pre-emptive ``SIGALRM`` already bounds a
wedged unit), which is also what lets a rescue-exhausted pool finish
the hanging unit on the serial rung.  ``sigterm`` delivers a real
SIGTERM to the supervising process (the pool's parent, or the serial
process itself) when the named unit starts, driving the
graceful-drain machinery end to end; it fires once per process tree,
and the unit then proceeds normally — a drain lets in-flight work
finish.

Unit ids may themselves contain colons (sweep units look like
``0007:8:64``): the optional argument is split off at the *last* colon,
so a colon-bearing unit id must spell the argument out explicitly
(``fail=0007:8:64:2``).
"""

from __future__ import annotations

import errno
import multiprocessing
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from ..errors import ReproError, RunnerError

__all__ = [
    "ENV_VAR",
    "InjectedFault",
    "InjectedCrash",
    "FaultPlan",
    "parse_plan",
    "install",
    "clear",
    "active_plan",
    "before_unit",
    "unit_scope",
    "current_unit",
    "check_write",
    "damage_artifact",
    "damage_memo",
    "maybe_corrupt_file",
]

#: Environment variable holding a fault specification.
ENV_VAR = "REPRO_FAULTS"


class InjectedFault(ReproError):
    """A transient failure raised by the fault hook (retryable)."""


class InjectedCrash(BaseException):
    """Simulates a hard kill (SIGKILL/OOM) of the whole process.

    Deliberately derives from :class:`BaseException` so the engine's
    per-unit isolation can never swallow it — exactly like a real kill,
    it terminates the run and only the journal survives.
    """


@dataclass(frozen=True)
class FaultPlan:
    """Which units fail, crash, stall, or corrupt their output."""

    fail_unit: Optional[str] = None
    fail_times: int = 1
    crash_unit: Optional[str] = None
    delay_unit: Optional[str] = None
    delay_s: float = 1.0
    corrupt_unit: Optional[str] = None
    bitflip_unit: Optional[str] = None
    bitflip_offset: Optional[int] = None
    partial_unit: Optional[str] = None
    partial_bytes: Optional[int] = None
    enospc_unit: Optional[str] = None
    enospc_times: int = 1
    killworker_unit: Optional[str] = None
    slowworker_unit: Optional[str] = None
    slowworker_s: float = 0.5
    pooldeath_unit: Optional[str] = None
    pooldeath_times: int = 1
    poisonmemo_unit: Optional[str] = None
    poisonmemo_times: int = 1
    hang_unit: Optional[str] = None
    hang_s: float = 30.0
    sigterm_unit: Optional[str] = None


_installed: Optional[FaultPlan] = None
_fire_counts: Dict[Tuple[str, str], int] = {}
_current_unit: Optional[str] = None


def parse_plan(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS``-style specification string."""
    plan = FaultPlan()
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep or not value:
            raise RunnerError(f"bad fault spec {part!r}: expected kind=unit[:arg]")
        # The numeric argument sits after the *last* colon; unit ids may
        # contain colons of their own.  Argless kinds take the whole
        # value as the unit id.
        head, sep, tail = value.rpartition(":")
        unit, arg = (head, tail) if sep else (value, "")
        try:
            if key == "fail":
                plan = replace(plan, fail_unit=unit, fail_times=int(arg) if arg else 1)
            elif key == "crash":
                plan = replace(plan, crash_unit=value)
            elif key == "delay":
                plan = replace(plan, delay_unit=unit, delay_s=float(arg) if arg else 1.0)
            elif key == "corrupt":
                plan = replace(plan, corrupt_unit=value)
            elif key == "bitflip":
                plan = replace(
                    plan,
                    bitflip_unit=unit,
                    bitflip_offset=int(arg) if arg else None,
                )
            elif key == "partial":
                plan = replace(
                    plan,
                    partial_unit=unit,
                    partial_bytes=int(arg) if arg else None,
                )
            elif key == "enospc":
                plan = replace(
                    plan, enospc_unit=unit, enospc_times=int(arg) if arg else 1
                )
            elif key == "killworker":
                plan = replace(plan, killworker_unit=value)
            elif key == "slowworker":
                plan = replace(
                    plan,
                    slowworker_unit=unit,
                    slowworker_s=float(arg) if arg else 0.5,
                )
            elif key == "pooldeath":
                plan = replace(
                    plan, pooldeath_unit=unit, pooldeath_times=int(arg) if arg else 1
                )
            elif key == "poisonmemo":
                plan = replace(
                    plan, poisonmemo_unit=unit, poisonmemo_times=int(arg) if arg else 1
                )
            elif key == "hang":
                plan = replace(
                    plan, hang_unit=unit, hang_s=float(arg) if arg else 30.0
                )
            elif key == "sigterm":
                plan = replace(plan, sigterm_unit=value)
            else:
                raise RunnerError(
                    f"unknown fault kind {key!r}; expected fail/crash/delay/corrupt/"
                    f"bitflip/partial/enospc/killworker/slowworker/pooldeath/"
                    f"poisonmemo/hang/sigterm"
                )
        except ValueError:
            raise RunnerError(f"bad fault argument in {part!r}") from None
    return plan


def install(plan: Optional[FaultPlan]) -> None:
    """Activate ``plan`` for the current process (None deactivates)."""
    global _installed
    _installed = plan
    _fire_counts.clear()


def clear() -> None:
    """Remove any installed plan and reset fire counters."""
    install(None)


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, else one parsed from ``REPRO_FAULTS``."""
    if _installed is not None:
        return _installed
    spec = os.environ.get(ENV_VAR, "")
    return parse_plan(spec) if spec else None


def _fires(kind: str, unit_id: str, limit: int) -> bool:
    """Count one firing of ``kind`` on ``unit_id``; True while under limit."""
    count = _fire_counts.get((kind, unit_id), 0)
    if count >= limit:
        return False
    _fire_counts[(kind, unit_id)] = count + 1
    return True


@contextmanager
def unit_scope(unit_id: str) -> Iterator[None]:
    """Mark ``unit_id`` as the unit currently executing in this process.

    Write-path hooks (:func:`check_write`) fire on the *current* unit,
    since the atomic write layer has no unit identity of its own.
    """
    global _current_unit
    previous = _current_unit
    _current_unit = unit_id
    try:
        yield
    finally:
        _current_unit = previous


def current_unit() -> Optional[str]:
    """The unit id currently executing in this process, if any."""
    return _current_unit


def _matches(spec: Optional[str], unit_id: str) -> bool:
    """True when a fault spec names ``unit_id`` (``*`` matches any)."""
    return spec is not None and (spec == "*" or spec == unit_id)


def before_unit(unit_id: str) -> None:
    """Fault hook called by the engine before each unit attempt."""
    plan = active_plan()
    if plan is None:
        return
    if plan.killworker_unit == unit_id and _fires("killworker", unit_id, 1):
        if multiprocessing.parent_process() is not None:
            # A hard worker death: no exception, no cleanup, no reply —
            # the parent observes a broken pool, as with a real OOM kill.
            # repro: lint-ok[REP013] emulating a SIGKILL requires a true hard exit; routing it through the lifecycle drain would defeat the fault
            os._exit(86)
        # No worker to kill in the main process; the fault is a no-op so
        # a degraded-to-serial rerun of the same unit can complete.
    if (
        _matches(plan.pooldeath_unit, unit_id)
        and multiprocessing.parent_process() is not None
        and _fires("pooldeath", "*", plan.pooldeath_times)
    ):
        # Same mechanics as killworker, but times-bounded and wildcard-
        # addressable: the serve path must survive repeated pool deaths
        # by rebuilding its executor, so the soak needs more than one.
        # repro: lint-ok[REP013] emulating a SIGKILL requires a true hard exit; routing it through the lifecycle drain would defeat the fault
        os._exit(86)
    if (
        _matches(plan.hang_unit, unit_id)
        and multiprocessing.parent_process() is not None
        and _fires("hang", unit_id, 1)
    ):
        # Wedge this worker *after* the heartbeat stamped the unit as
        # running: the stamp goes stale and the parent's liveness check
        # must kill us.  Bounded (not an infinite loop) so a run without
        # hang detection still terminates; outside a pool worker this is
        # a no-op — the serial engine's SIGALRM already bounds a unit.
        time.sleep(plan.hang_s)
    if _matches(plan.sigterm_unit, unit_id) and _fires("sigterm", "*", 1):
        parent = multiprocessing.parent_process()
        target = parent.pid if parent is not None else os.getpid()
        # A real mid-flight shutdown signal to the supervising process;
        # this unit then proceeds normally — a graceful drain lets
        # in-flight work finish and journal.
        os.kill(target, signal.SIGTERM)
    if plan.crash_unit == unit_id:
        raise InjectedCrash(f"injected crash before unit {unit_id}")
    if plan.delay_unit == unit_id and plan.delay_s > 0:
        time.sleep(plan.delay_s)
    if _matches(plan.slowworker_unit, unit_id) and plan.slowworker_s > 0:
        # Unlike ``delay`` this fires on *every* attempt: a persistently
        # slow worker, not a one-off stall — what drives a served
        # request past its deadline however often it is retried.
        time.sleep(plan.slowworker_s)
    if plan.fail_unit == unit_id and _fires("fail", unit_id, plan.fail_times):
        count = _fire_counts[("fail", unit_id)]
        raise InjectedFault(
            f"injected fault on unit {unit_id} "
            f"(failure {count} of {plan.fail_times})"
        )


def check_write(path: Union[str, Path]) -> None:
    """Write hook called by the atomic layer before committing ``path``.

    Raises ``OSError(ENOSPC)`` — which :func:`atomic_open` converts to
    the retryable ``CheckpointError`` a real full disk produces — when
    the plan exhausts disk space for the unit currently executing.
    """
    plan = active_plan()
    unit_id = _current_unit
    if plan is None or unit_id is None or plan.enospc_unit != unit_id:
        return
    if _fires("enospc", unit_id, plan.enospc_times):
        # repro: lint-ok[REP009] emulates a real ENOSPC; atomic_open converts it to CheckpointError
        raise OSError(errno.ENOSPC, "injected: no space left on device", str(path))


def damage_artifact(unit_id: str, path: Union[str, Path]) -> None:
    """Damage ``path`` if the plan corrupts ``unit_id``'s output.

    Emulates corruption that bypassed the atomic-rename discipline —
    a torn write (``corrupt``), silent bit rot (``bitflip``), or a
    truncated artefact (``partial``) — so resume-time validation and
    ``repro verify`` can be tested against every corruption class.
    """
    plan = active_plan()
    if plan is None:
        return
    path = Path(path)
    if plan.corrupt_unit == unit_id:
        data = path.read_bytes()
        # repro: lint-ok[REP001] deliberately tears the artefact; bypassing the atomic-rename discipline is the point of this fault
        path.write_bytes(data[: len(data) // 2])
    if plan.bitflip_unit == unit_id:
        data = bytearray(path.read_bytes())
        if data:
            offset = plan.bitflip_offset
            if offset is None or not 0 <= offset < len(data):
                offset = len(data) // 2
            data[offset] ^= 0x01
            # repro: lint-ok[REP001] deliberately injects silent bit rot behind the atomic layer's back; detecting it is the manifest's job
            path.write_bytes(bytes(data))
    if plan.partial_unit == unit_id:
        data = path.read_bytes()
        keep = plan.partial_bytes
        if keep is None or keep < 0:
            keep = len(data) // 2
        # repro: lint-ok[REP001] deliberately truncates the artefact to a prefix, emulating a short write that dodged fsync
        path.write_bytes(data[:keep])


def damage_memo(key: str, path: Union[str, Path]) -> None:
    """Poison a memo-store entry — called by the store *after* writing.

    Fires when the plan's ``poisonmemo`` spec names ``key`` (or ``*``),
    flipping one bit in the artefact body while leaving the sha256
    sidecar describing the healthy bytes.  That is exactly the damage
    shape of post-write bit rot: the next integrity-verified read must
    detect the mismatch, quarantine the entry, and recompute — a
    poisoned entry must never be served.
    """
    plan = active_plan()
    if plan is None or not _matches(plan.poisonmemo_unit, key):
        return
    if not _fires("poisonmemo", "*", plan.poisonmemo_times):
        return
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        return
    data[len(data) // 2] ^= 0x01
    # repro: lint-ok[REP001] deliberately rots the memo entry behind the atomic layer; detecting it on read is what the serve soak proves
    path.write_bytes(bytes(data))


#: Backwards-compatible alias: the original hook only knew ``corrupt``.
maybe_corrupt_file = damage_artifact
