"""Process-pool execution backend: fan units out over worker processes.

:class:`PoolRunner` is the parallel counterpart of the serial
:class:`~repro.runner.engine.Runner` and preserves every protection it
offers — with the work distributed over a
:class:`concurrent.futures.ProcessPoolExecutor`:

* **resume** — journal replay and ``check_skip`` artefact validation
  run in the parent *before* any work is submitted, so completed units
  never reach a worker;
* **isolation / retries / timeouts** — each worker runs the shared
  attempt loop (:func:`~repro.runner.engine.execute_attempts`), so a
  unit's bounded retries with backoff and its per-attempt wall-clock
  budget behave exactly as in the serial engine.  Timeouts in workers
  use the same two-tier enforcement: pre-emptive ``SIGALRM`` where the
  task runs on the worker's main thread (the normal case), a portable
  post-hoc deadline check otherwise;
* **crash-safe journaling** — outcomes are journalled by the *parent*
  as they arrive (workers never touch the journal, so there is no
  cross-process write contention), each append persisting atomically.
  A killed parallel run therefore resumes from exactly the units whose
  outcomes made it back; on successful completion the journal is
  canonically reordered (:meth:`~repro.runner.journal.RunJournal.rewrite_ordered`)
  so its final contents are independent of worker count and completion
  order;
* **determinism** — unit outcomes are keyed by unit id / configuration
  hash and the returned :class:`~repro.runner.engine.RunResult` is
  assembled in unit submission order, never arrival order.  Downstream
  artefacts (report rows, sweep tables, envelopes, failure manifests)
  are thus bit-identical to a serial run; the only volatile journal
  fields are the wall-clock ``elapsed_s`` measurements.

Worker-side fault injection (:mod:`repro.runner.faults`) works through
the ``REPRO_FAULTS`` environment variable (inherited by workers under
every start method) or, under ``fork``, through a plan installed before
the pool is created.  An injected crash (``BaseException``) in a worker
terminates the whole parallel run — mirroring the serial engine — with
the journal intact.

Pickling contract: a unit shipped to a worker carries its ``run`` and
``to_record`` callables, which must therefore be picklable (module-level
functions or instances of module-level classes — not closures).
``check_skip`` and ``from_record`` stay parent-side and may be
closures, exactly as before.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from pathlib import Path

from ..errors import RunnerError
from ..obs.telemetry import DISABLED as _DISABLED_TELEMETRY
from ..obs.telemetry import Telemetry
from .engine import (
    RetryPolicy,
    RunResult,
    RunUnit,
    UnitOutcome,
    error_record,
    execute_attempts,
    resume_outcome,
)
from .journal import RunJournal
from .lifecycle import CancelToken, Heartbeat, HeartbeatRecord, read_heartbeats
from .watchdog import ResourceWatchdog, peak_rss_bytes

__all__ = ["PoolRunner", "resolve_workers"]


def resolve_workers(spec: Union[None, int, str]) -> Optional[int]:
    """Normalise a ``--workers`` value: None for serial, else a count.

    ``None``/``0``/``"serial"`` select the serial engine; ``"auto"``
    means one worker per CPU; any other value must be a positive
    integer (1 runs the pool machinery with a single worker, which is
    occasionally useful for debugging the parallel path).
    """
    if spec is None:
        return None
    if isinstance(spec, str):
        text = spec.strip().lower()
        if text in ("", "0", "serial"):
            return None
        if text == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            count = int(text)
        except ValueError:
            raise RunnerError(
                f"workers must be a non-negative integer or 'auto', got {spec!r}"
            ) from None
    else:
        count = int(spec)
    if count < 0:
        raise RunnerError(f"workers must be a non-negative integer, got {count}")
    return count or None


@dataclass(frozen=True)
class _WorkerTask:
    """The picklable slice of a unit shipped to a worker process."""

    unit_id: str
    payload: dict
    run: Callable[[], Any] = field(repr=False)
    to_record: Optional[Callable[[Any], dict]] = field(default=None, repr=False)
    retry: RetryPolicy = RetryPolicy()
    timeout_s: Optional[float] = None
    telemetry_on: bool = False
    profile_dir: Optional[str] = None
    heartbeat_dir: Optional[str] = None


def _execute_task(task: _WorkerTask) -> dict:
    """Worker entry point: run the attempt loop, return a picklable reply.

    With ``telemetry_on`` the worker records this unit's metrics and
    spans into a fresh per-task bundle and ships the snapshot back in
    the reply; the parent absorbs it (re-basing span ids) so the merged
    telemetry is identical in content to a serial run's.

    ``BaseException`` (injected crashes, interrupts) propagates out and
    surfaces on the future — the parent treats it like a process kill.
    """
    unit = RunUnit(
        unit_id=task.unit_id,
        payload=task.payload,
        run=task.run,
        to_record=task.to_record,
    )
    telemetry = Telemetry() if task.telemetry_on else None
    heartbeat = Heartbeat(task.heartbeat_dir) if task.heartbeat_dir else None
    outcome = execute_attempts(
        unit,
        retry=task.retry,
        timeout_s=task.timeout_s,
        telemetry=telemetry,
        profile_dir=Path(task.profile_dir) if task.profile_dir else None,
        heartbeat=heartbeat,
    )
    if heartbeat is not None:
        heartbeat.beat(task.unit_id, phase="idle")
    reply: Dict[str, Any] = {
        "status": outcome.status,
        "attempts": outcome.attempts,
        "elapsed_s": outcome.elapsed_s,
        "duration_s": outcome.duration_s,
        "started_at": outcome.started_at,
        "ended_at": outcome.ended_at,
        "error": outcome.error,
        "result": None,
        "value": None,
        "has_value": False,
        "exception": None,
        "rss_bytes": peak_rss_bytes(),
        "telemetry": telemetry.snapshot() if telemetry is not None else None,
    }
    if outcome.status == "ok":
        if task.to_record is not None:
            reply["result"] = task.to_record(outcome.value)
        try:
            pickle.dumps(outcome.value)
        except Exception:
            pass  # parent falls back to from_record(result), or None
        else:
            reply["value"] = outcome.value
            reply["has_value"] = True
    elif outcome.exception is not None:
        try:
            pickle.dumps(outcome.exception)
        except Exception:
            pass  # error record still describes the failure
        else:
            reply["exception"] = outcome.exception
    return reply


def _kill_workers(executor: ProcessPoolExecutor) -> None:
    """SIGKILL every live worker of ``executor`` (abort path only).

    ``shutdown(wait=True)`` would otherwise block forever behind a
    wedged worker; killing first makes the join prompt.  Reaches into
    the executor's private process table — there is no public handle on
    worker processes — so it degrades to a no-op if that ever changes.
    """
    processes: Any = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:
            pass


class PoolRunner:
    """Drive :class:`RunUnit` sequences over a process pool.

    Mirrors the serial :class:`~repro.runner.engine.Runner` contract:
    ``run`` returns a :class:`RunResult` in unit submission order and
    never raises for unit failures; ``BaseException`` from a worker
    (an injected crash) propagates with the journal intact.  With
    ``keep_going=False`` the first failure (in submission order)
    truncates the result exactly like the serial engine; units already
    finished by other workers remain journalled so a later ``resume``
    does not repeat them.

    Parameters
    ----------
    workers:
        Worker process count (see :func:`resolve_workers`).
    initializer / initargs:
        Forwarded to the executor; use them to pre-warm per-worker
        caches (e.g. trace generation and L1 filter passes) once per
        worker instead of once per unit.
    submit_order:
        Optional permutation of unit indices controlling *submission*
        order.  Results are always assembled in unit order, so any
        permutation must produce identical output — the differential
        tests shuffle this to prove order independence.
    mp_context:
        Optional :mod:`multiprocessing` context (e.g. the ``fork``
        context when workers must inherit parent state).
    watchdog:
        Optional :class:`~repro.runner.watchdog.ResourceWatchdog`.
        When set, the journal directory gets a disk-space preflight,
        and memory pressure degrades the run instead of killing it: a
        worker reply whose peak RSS breaches the policy ceiling sheds
        the queued work back to the parent (which finishes it
        serially), and a worker that dies outright (OOM kill) likewise
        falls back to serial execution instead of raising.  After a
        degraded run :attr:`degraded_reason` records why.
    """

    def __init__(
        self,
        journal: Optional[RunJournal] = None,
        retry: Optional[RetryPolicy] = None,
        timeout_s: Optional[float] = None,
        keep_going: bool = False,
        workers: int = 2,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
        submit_order: Optional[Sequence[int]] = None,
        mp_context: Any = None,
        watchdog: Optional[ResourceWatchdog] = None,
        telemetry: Optional[Telemetry] = None,
        profile_dir: Optional[Path] = None,
        cancel: Optional[CancelToken] = None,
    ):
        if workers < 1:
            raise RunnerError(f"PoolRunner needs at least one worker, got {workers}")
        self.journal = journal
        self.retry = retry if retry is not None else RetryPolicy()
        self.timeout_s = timeout_s
        self.keep_going = keep_going
        self.workers = workers
        self.initializer = initializer
        self.initargs = initargs
        self.submit_order = submit_order
        self.mp_context = mp_context
        self.watchdog = watchdog
        self.telemetry = telemetry if telemetry is not None else _DISABLED_TELEMETRY
        self.profile_dir = profile_dir
        self.cancel = cancel
        #: Why the last run shed its workers, or None if it never did.
        self.degraded_reason: Optional[str] = None
        #: Hung workers killed-and-requeued during the last run.
        self.rescues = 0

    def run(self, units: Sequence[RunUnit]) -> RunResult:
        units = list(units)
        unit_ids = [unit.unit_id for unit in units]
        if len(set(unit_ids)) != len(unit_ids):
            raise RunnerError("duplicate unit ids in one parallel run")
        self.degraded_reason = None
        self.rescues = 0
        if self.watchdog is not None and self.journal is not None:
            self.watchdog.preflight_disk(self.journal.path.parent)
        outcomes: Dict[str, UnitOutcome] = {}
        pending: List[RunUnit] = []
        for unit in units:
            skipped = resume_outcome(self.journal, unit)
            if skipped is not None:
                outcomes[unit.unit_id] = skipped
                self.telemetry.count("repro_units_total", status="skipped")
            else:
                pending.append(unit)
        if pending:
            self._run_pool(pending, outcomes)
        if self.journal is not None:
            self.journal.rewrite_ordered(unit_ids)
        self.telemetry.flush(unit_ids)
        interrupted: Optional[str] = None
        if self.cancel is not None and self.cancel.cancelled:
            interrupted = self.cancel.reason
        ordered: List[UnitOutcome] = []
        for unit in units:
            outcome = outcomes.get(unit.unit_id)
            if outcome is None:
                continue  # cancelled before it started
            ordered.append(outcome)
            if outcome.status == "failed" and not self.keep_going:
                break
        return RunResult(tuple(ordered), interrupted=interrupted)

    def _submission(self, pending: Sequence[RunUnit]) -> List[RunUnit]:
        if self.submit_order is None:
            return list(pending)
        if sorted(self.submit_order) != list(range(len(pending))):
            raise RunnerError(
                f"submit_order must be a permutation of range({len(pending)})"
            )
        return [pending[index] for index in self.submit_order]

    def _run_pool(
        self, pending: Sequence[RunUnit], outcomes: Dict[str, UnitOutcome]
    ) -> None:
        pending = list(pending)
        stopping = self._drive_pool(pending, outcomes)
        if self.degraded_reason is not None:
            reason = "worker-death"
            if "RSS" in self.degraded_reason:
                reason = "rss"
            elif "hung" in self.degraded_reason:
                reason = "hung-worker"
            self.telemetry.count("repro_degradations_total", reason=reason)
        if self.degraded_reason is None or stopping:
            return
        # Degradation ladder, final rung before --resume: the pool was
        # shed (RSS ceiling), broke (worker death), or exhausted its
        # hung-worker rescue budget; finish the units that never
        # produced an outcome serially in the parent, with the same
        # retry/timeout/journal semantics workers had.
        for unit in pending:
            if unit.unit_id in outcomes:
                continue
            if self.cancel is not None and self.cancel.cancelled:
                self.cancel.raise_if_expired()
                break
            outcome = execute_attempts(
                unit,
                retry=self.retry,
                timeout_s=self.timeout_s,
                telemetry=self.telemetry,
                profile_dir=self.profile_dir,
            )
            stored = None
            if outcome.status == "ok" and unit.to_record is not None:
                stored = unit.to_record(outcome.value)
            outcomes[unit.unit_id] = outcome
            self._journal_outcome(unit, outcome, stored)
            self.telemetry.unit_done()
            if outcome.status == "failed" and not self.keep_going:
                break

    def _drive_pool(
        self, pending: Sequence[RunUnit], outcomes: Dict[str, UnitOutcome]
    ) -> bool:
        """Fan ``pending`` out over the pool; True if a failure stopped it.

        Sets :attr:`degraded_reason` (leaving the un-finished units
        without outcomes) when the watchdog sheds the pool or a worker
        dies with a watchdog installed.

        The pool runs in *generations*: normally one, but killing a
        hung worker breaks the whole :class:`ProcessPoolExecutor` (its
        manager terminates every sibling), so each rescue starts a
        fresh generation that resubmits exactly the units still without
        an outcome — completed units are journalled and never
        re-executed.
        """
        order = self._submission(pending)
        heartbeat_dir: Optional[str] = None
        if (
            self.watchdog is not None
            and self.watchdog.policy.hang_timeout_s is not None
        ):
            heartbeat_dir = tempfile.mkdtemp(prefix="repro-heartbeat-")
        rescue_counts: Dict[str, int] = {}
        stopping = False
        try:
            while True:
                remaining = [
                    unit for unit in order if unit.unit_id not in outcomes
                ]
                if not remaining:
                    break
                stopping, rebuild = self._drive_generation(
                    remaining, outcomes, heartbeat_dir, rescue_counts
                )
                if stopping or not rebuild or self.degraded_reason is not None:
                    break
                if self.cancel is not None and self.cancel.cancelled:
                    break
        finally:
            if heartbeat_dir is not None:
                shutil.rmtree(heartbeat_dir, ignore_errors=True)
        return stopping

    def _drive_generation(
        self,
        units: Sequence[RunUnit],
        outcomes: Dict[str, UnitOutcome],
        heartbeat_dir: Optional[str],
        rescue_counts: Dict[str, int],
    ) -> Tuple[bool, bool]:
        """One executor's lifetime; returns ``(stopping, rebuild)``.

        ``rebuild`` is True only when a hung worker was killed within
        budget: the caller starts a fresh generation for the units left
        without outcomes (including the hung one, which gets a fresh
        worker).  Exhausting the budget sets :attr:`degraded_reason`
        instead, handing the leftovers to the serial rung.
        """
        if heartbeat_dir is not None:
            # Stale stamps from a previous generation's (killed) workers
            # must not trigger instant re-rescues.
            for stale in Path(heartbeat_dir).glob("*.json"):
                try:
                    stale.unlink()
                except OSError:
                    pass
        hang_limit = (
            self.watchdog.policy.hang_timeout_s
            if self.watchdog is not None and heartbeat_dir is not None
            else None
        )
        poll: Optional[float] = None
        if hang_limit is not None:
            poll = max(0.05, hang_limit / 4.0)
        elif self.cancel is not None:
            poll = 0.25
        executor = ProcessPoolExecutor(
            max_workers=min(self.workers, len(units)),
            mp_context=self.mp_context,
            initializer=self.initializer,
            initargs=self.initargs,
        )
        stopping = False
        rebuild = False
        drained = False
        try:
            futures = {
                executor.submit(
                    _execute_task,
                    _WorkerTask(
                        unit_id=unit.unit_id,
                        payload=unit.payload,
                        run=unit.run,
                        to_record=unit.to_record,
                        retry=self.retry,
                        timeout_s=self.timeout_s,
                        telemetry_on=self.telemetry.enabled,
                        profile_dir=(
                            str(self.profile_dir) if self.profile_dir else None
                        ),
                        heartbeat_dir=heartbeat_dir,
                    ),
                ): unit
                for unit in units
            }
            submitted = {future: index for index, future in enumerate(futures)}
            not_done = set(futures)
            while not_done:
                if (
                    self.cancel is not None
                    and self.cancel.cancelled
                    and not drained
                ):
                    # Drain: queued units never start (they stay
                    # outcome-less for --resume); running units finish
                    # and are journalled below.
                    drained = True
                    for other in not_done:
                        other.cancel()
                if self.cancel is not None and self.cancel.expired():
                    _kill_workers(executor)
                    self.cancel.raise_if_expired()
                done, not_done = wait(
                    not_done, timeout=poll, return_when=FIRST_COMPLETED
                )
                # A done *batch* is processed in submission order: when a
                # crash arrives together with results, everything that
                # finished before the crashing unit is journalled first,
                # so the journal a killed run leaves behind is
                # deterministic, not subject to set iteration order.
                for future in sorted(done, key=submitted.__getitem__):
                    if future.cancelled():
                        continue
                    unit = futures[future]
                    crash = future.exception()
                    if crash is not None:
                        if isinstance(crash, BrokenProcessPool):
                            if self.watchdog is None:
                                raise RunnerError(
                                    "worker pool broke (a worker died without "
                                    "reporting); completed units are journalled — "
                                    "re-run with --resume"
                                ) from crash
                            # Watchdog ladder: a dead worker (OOM kill)
                            # degrades to serial instead of aborting.
                            # Every in-flight future fails with the same
                            # BrokenProcessPool; their units simply stay
                            # outcome-less for the serial fallback.
                            if self.degraded_reason is None:
                                self.degraded_reason = (
                                    f"worker died without reporting ({crash}); "
                                    f"finishing remaining units serially"
                                )
                            continue
                        if not isinstance(crash, Exception):
                            # A simulated (or real) kill: abandon
                            # everything in flight, journal untouched
                            # beyond what already arrived.
                            raise crash
                        # Infrastructure failure around one unit (e.g.
                        # an unpicklable reply): a structured failure.
                        outcome = UnitOutcome(
                            unit.unit_id,
                            "failed",
                            attempts=1,
                            error=error_record(unit, crash, 1, 0.0),
                            exception=crash,
                        )
                        stored = None
                    else:
                        reply = future.result()
                        outcome = self._outcome_from_reply(unit, reply)
                        stored = reply["result"]
                        self.telemetry.absorb(reply.get("telemetry"))
                        if reply.get("rss_bytes") is not None:
                            self.telemetry.gauge_max(
                                "repro_worker_peak_rss_bytes",
                                float(reply["rss_bytes"]),
                            )
                        if (
                            self.watchdog is not None
                            and self.degraded_reason is None
                            and self.watchdog.over_rss(reply.get("rss_bytes"))
                        ):
                            # Shed: cancel what has not started (running
                            # units drain normally and are journalled);
                            # cancelled units fall to the serial rung.
                            self.degraded_reason = (
                                f"worker peak RSS {reply.get('rss_bytes')} "
                                f"bytes breached the watchdog ceiling; "
                                f"shedding queued units to serial execution"
                            )
                            for other in not_done:
                                other.cancel()
                    outcomes[unit.unit_id] = outcome
                    self._journal_outcome(unit, outcome, stored)
                    self.telemetry.unit_done()
                    if outcome.status == "failed" and not self.keep_going and not stopping:
                        stopping = True
                        for other in not_done:
                            other.cancel()
                if (
                    hang_limit is not None
                    and heartbeat_dir is not None
                    and not_done
                    and not stopping
                    and self.degraded_reason is None
                ):
                    in_flight = {
                        futures[future].unit_id
                        for future in not_done
                        if not future.cancelled()
                    }
                    hung = [
                        beat
                        for beat in self.watchdog.hung_workers(  # type: ignore[union-attr]
                            read_heartbeats(heartbeat_dir)
                        )
                        if beat.unit_id in in_flight
                    ]
                    if hung:
                        self._rescue(executor, hung, rescue_counts)
                        rebuild = self.degraded_reason is None
                        for other in not_done:
                            other.cancel()
                        break
        finally:
            executor.shutdown(wait=True, cancel_futures=True)
        return stopping, rebuild

    def _rescue(
        self,
        executor: ProcessPoolExecutor,
        hung: Sequence[HeartbeatRecord],
        rescue_counts: Dict[str, int],
    ) -> None:
        """Kill hung workers and charge the rescue budget.

        Killing any worker breaks the executor (its manager terminates
        the siblings), so the caller abandons this generation either
        way; within budget the next generation resubmits, past it
        :attr:`degraded_reason` routes the leftovers to the serial rung
        — where a deterministically-hanging unit cannot re-wedge a pool
        it is no longer in.
        """
        processes: Any = getattr(executor, "_processes", None) or {}
        for beat in hung:
            victim = processes.get(beat.pid)
            if victim is not None:
                victim.kill()
            self.rescues += 1
            unit_id = beat.unit_id or ""
            rescue_counts[unit_id] = rescue_counts.get(unit_id, 0) + 1
            self.telemetry.count("repro_runner_rescues_total")
        budget = (
            self.watchdog.policy.max_rescues if self.watchdog is not None else 0
        )
        repeat_offender = any(count >= 2 for count in rescue_counts.values())
        if self.rescues > budget or repeat_offender:
            self.degraded_reason = (
                f"hung-worker rescue budget exhausted after {self.rescues} "
                f"rescue(s); finishing remaining units serially"
            )

    def _outcome_from_reply(self, unit: RunUnit, reply: dict) -> UnitOutcome:
        value = None
        if reply["status"] == "ok":
            if reply["has_value"]:
                value = reply["value"]
            elif unit.from_record is not None and reply["result"] is not None:
                value = unit.from_record(reply["result"])
        return UnitOutcome(
            unit.unit_id,
            reply["status"],
            value=value,
            attempts=reply["attempts"],
            elapsed_s=reply["elapsed_s"],
            duration_s=reply.get("duration_s", 0.0),
            started_at=reply.get("started_at", 0.0),
            ended_at=reply.get("ended_at", 0.0),
            error=reply["error"],
            exception=reply["exception"],
        )

    def _journal_outcome(
        self, unit: RunUnit, outcome: UnitOutcome, stored: Optional[dict]
    ) -> None:
        if self.journal is None:
            return
        if outcome.status == "ok":
            self.journal.record(
                unit.unit_id,
                unit.key,
                "ok",
                attempts=outcome.attempts,
                elapsed_s=outcome.elapsed_s,
                duration_s=outcome.duration_s,
                started_at=outcome.started_at,
                ended_at=outcome.ended_at,
                result=stored,
            )
        else:
            self.journal.record(
                unit.unit_id,
                unit.key,
                "failed",
                attempts=outcome.attempts,
                elapsed_s=outcome.elapsed_s,
                duration_s=outcome.duration_s,
                started_at=outcome.started_at,
                ended_at=outcome.ended_at,
                error=outcome.error,
            )
