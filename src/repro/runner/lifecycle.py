"""Lifecycle supervision: cooperative cancellation, heartbeats, budgets.

Long sweeps die in three undignified ways the rest of the runner's
protections cannot help with: a SIGTERM arrives mid-flight and the
process vanishes without flushing its journal; a worker wedges in an
infinite loop where the RSS watchdog sees nothing wrong; and a serve
request that already answered 504 leaves its computation occupying a
pool slot forever.  This module gives the whole stack one
cooperative-cancellation story:

* **two-phase graceful shutdown** — a :class:`Supervisor` installs
  SIGTERM/SIGINT handlers in the CLI entry points.  The first signal
  *drains*: the runner stops submitting new units, in-flight units
  finish and are journalled, telemetry flushes, and the journal is
  canonically reordered; the process then exits with
  :data:`EXIT_DRAINED` and a ``--resume`` hint.  A second signal — or
  an optional drain deadline — *aborts*: :class:`~repro.errors.AbortError`
  propagates, in-flight work is abandoned (workers are killed), and the
  process exits with :data:`EXIT_ABORTED`.  Either way every unit that
  finished is journalled, so resume repeats nothing;
* **heartbeats** — pool workers stamp a per-process mtime file
  (:class:`Heartbeat`) when a unit starts an attempt and when the
  worker goes idle.  The parent reads the stamps back
  (:func:`read_heartbeats`) and the watchdog's liveness check turns a
  stale ``run``-phase stamp into a hung-worker verdict, closing the
  gap where :func:`unit_timeout`'s deadline fallback cannot interrupt
  a stuck unit off the main thread;
* **budgets** — :func:`unit_timeout` (relocated here from the engine,
  which re-exports it) enforces a per-unit wall-clock budget and is
  how serve's per-request deadline travels into the pool: the request
  dict carries ``budget_s`` and the worker's pre-emptive ``SIGALRM``
  frees the slot the moment the budget blows.

This is the only module in the package sanctioned to install signal
handlers or hard-exit (lint rule REP013); everything else expresses
shutdown through a :class:`CancelToken`.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from types import FrameType, TracebackType
from typing import Any, Callable, Iterator, List, Optional, Type, Union

from ..errors import AbortError, UnitTimeoutError
from .atomic import write_text_atomic

__all__ = [
    "EXIT_ABORTED",
    "EXIT_DRAINED",
    "CancelToken",
    "Heartbeat",
    "HeartbeatRecord",
    "Supervisor",
    "read_heartbeats",
    "unit_timeout",
]

#: Exit code of a run that drained gracefully after a shutdown signal
#: (sysexits EX_TEMPFAIL: re-running with ``--resume`` will finish it).
EXIT_DRAINED = 75

#: Exit code of a run aborted hard — second signal or drain deadline
#: (sysexits EX_SOFTWARE: in-flight work was abandoned, journal intact).
EXIT_ABORTED = 70


class CancelToken:
    """A thread-safe drain request shared by a supervisor and a runner.

    The token starts clear.  :meth:`cancel` trips it exactly once
    (later calls are no-ops reporting False) and optionally arms a
    grace deadline; :meth:`expired` turns True once that deadline
    elapses, which runners treat as "stop draining, abort now".
    Checking is lock-free (:class:`threading.Event`), so the engine can
    poll between units and the pool can poll between waits without
    contention.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._reason: Optional[str] = None
        self._deadline: Optional[float] = None

    @property
    def cancelled(self) -> bool:
        """True once a drain has been requested."""
        return self._event.is_set()

    @property
    def reason(self) -> Optional[str]:
        """Why the drain was requested, or None while the token is clear."""
        return self._reason

    def cancel(self, reason: str, grace_s: Optional[float] = None) -> bool:
        """Request a drain; True if this call tripped the token.

        ``grace_s`` arms the abort deadline: :meth:`expired` flips True
        that many seconds from *now*.  Only the tripping call's grace
        is honoured — a second cancel cannot shorten or extend it.
        """
        with self._lock:
            if self._event.is_set():
                return False
            self._reason = reason
            if grace_s is not None and grace_s > 0:
                self._deadline = time.monotonic() + grace_s
            self._event.set()
            return True

    def expired(self) -> bool:
        """True once the drain grace period has elapsed (abort time)."""
        deadline = self._deadline
        return (
            self._event.is_set()
            and deadline is not None
            and time.monotonic() > deadline
        )

    def raise_if_expired(self) -> None:
        """Raise :class:`~repro.errors.AbortError` past the drain deadline."""
        if self.expired():
            raise AbortError(
                f"drain grace period exhausted ({self._reason}); aborting "
                f"with in-flight work abandoned — completed units are "
                f"journalled, re-run with --resume"
            )


class Supervisor:
    """Two-phase SIGTERM/SIGINT shutdown for CLI entry points.

    Used as a context manager around a batch run::

        with Supervisor(grace_s=120.0) as supervisor:
            write_report(out, ids, cancel=supervisor.token)
        if supervisor.triggered:
            print("drained; re-run with --resume", file=sys.stderr)
            return EXIT_DRAINED

    The **first** signal trips the :class:`CancelToken` (and the
    optional ``on_drain`` callback): the run drains — no new units
    start, in-flight units finish and are journalled.  The **second**
    signal raises :class:`~repro.errors.AbortError` straight out of the
    handler, interrupting the main thread mid-drain; runners abandon
    in-flight work with the journal intact.  ``grace_s`` additionally
    bounds the drain — runners poll :meth:`CancelToken.expired` and
    abort on their own once it elapses, so a wedged drain cannot hang
    forever even if no second signal ever arrives.

    Handlers can only be installed on the main thread; elsewhere the
    supervisor degrades to an inert token holder (chaos soaks run
    in-process under pytest worker threads), which is safe because the
    process-level default handlers still apply.
    """

    _SIGNALS = ("SIGTERM", "SIGINT")

    def __init__(
        self,
        grace_s: Optional[float] = None,
        on_drain: Optional[Callable[[str], None]] = None,
    ):
        self.token = CancelToken()
        self.grace_s = grace_s
        self.on_drain = on_drain
        #: True once the second signal forced a hard abort.
        self.aborted = False
        self.installed = False
        self._previous: List[Any] = []

    @property
    def triggered(self) -> bool:
        """True once at least one shutdown signal was received."""
        return self.token.cancelled

    def exit_code(self) -> int:
        """The process exit code this shutdown deserves."""
        return EXIT_ABORTED if self.aborted else EXIT_DRAINED

    def _handle(self, signum: int, frame: Optional[FrameType]) -> None:
        name = signal.Signals(signum).name
        if self.token.cancel(f"received {name}", self.grace_s):
            if self.on_drain is not None:
                self.on_drain(name)
            return
        # Second signal: abort out of the handler, interrupting the
        # drain on the main thread (where handlers always run).
        self.aborted = True
        raise AbortError(
            f"received {name} during drain; aborting with in-flight work "
            f"abandoned — completed units are journalled, re-run with --resume"
        )

    def __enter__(self) -> "Supervisor":
        previous: List[Any] = []
        try:
            for name in self._SIGNALS:
                signum = getattr(signal, name, None)
                if signum is None:  # pragma: no cover - non-POSIX platforms
                    continue
                previous.append((signum, signal.signal(signum, self._handle)))
        except ValueError:
            # Not the main thread: restore whatever we managed to swap
            # and stay inert — the token still works for manual cancel.
            for signum, handler in previous:
                signal.signal(signum, handler)
            self._previous = []
            return self
        self._previous = previous
        self.installed = bool(previous)
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        for signum, handler in reversed(self._previous):
            signal.signal(signum, handler)
        self._previous = []
        self.installed = False


@dataclass(frozen=True)
class HeartbeatRecord:
    """One worker's most recent heartbeat, as read by the parent."""

    pid: int
    unit_id: Optional[str]
    phase: str
    age_s: float

    @property
    def running(self) -> bool:
        return self.phase == "run"


class Heartbeat:
    """Worker-side liveness stamp: one mtime file per worker process.

    Each :meth:`beat` atomically rewrites ``<directory>/<pid>.json``
    with the unit the worker is on and its phase (``run`` while a unit
    attempt executes, ``idle`` between units); the rename refreshes the
    file's mtime, which is all the parent's staleness arithmetic needs.
    Atomic replace keeps a reader from ever seeing a torn stamp, and
    ``track=False`` keeps heartbeat files out of manifest bookkeeping —
    they live in a tempdir, never in the artefact tree, so fingerprints
    stay byte-identical with and without supervision.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    def path(self) -> Path:
        return self.directory / f"{os.getpid()}.json"

    def beat(self, unit_id: Optional[str] = None, phase: str = "run") -> None:
        """Stamp this process's liveness; never raises.

        A heartbeat that cannot be written (tempdir vanished mid-drain)
        must not fail the unit riding above it — supervision is an
        observer, not a participant.
        """
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            write_text_atomic(
                self.path(),
                json.dumps(
                    {"pid": os.getpid(), "unit": unit_id, "phase": phase}
                ),
            )
        except Exception:
            pass


def read_heartbeats(directory: Union[str, Path]) -> List[HeartbeatRecord]:
    """Parent-side read of every worker heartbeat under ``directory``.

    Unreadable or torn files are skipped — a worker mid-rename just
    reports on the next poll.  ``age_s`` is wall-clock seconds since
    the stamp's mtime; the caller compares it against the watchdog's
    hang budget.
    """
    records: List[HeartbeatRecord] = []
    root = Path(directory)
    if not root.is_dir():
        return records
    now = time.time()
    for path in sorted(root.glob("*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            age = max(0.0, now - path.stat().st_mtime)
            records.append(
                HeartbeatRecord(
                    pid=int(payload["pid"]),
                    unit_id=payload.get("unit"),
                    phase=str(payload.get("phase", "run")),
                    age_s=age,
                )
            )
        except (OSError, ValueError, KeyError):
            continue
    return records


@contextmanager
def unit_timeout(
    seconds: Optional[float], *, force_deadline: bool = False
) -> Iterator[None]:
    """Raise :class:`UnitTimeoutError` after ``seconds`` of wall clock.

    Two enforcement mechanisms, picked automatically:

    * **pre-emptive** — ``SIGALRM``/``setitimer`` interrupts the unit
      mid-flight; only available on the main thread of a POSIX process
      (signals cannot be delivered to other threads);
    * **deadline** — everywhere else (worker threads, processes without
      ``SIGALRM``, or ``force_deadline=True``) the unit runs to
      completion and the budget is checked afterwards: an overrunning
      unit still fails with :class:`UnitTimeoutError` and its result is
      discarded, it just cannot be aborted mid-run.

    Either way the budget is *enforced* — the historical behaviour of
    silently skipping enforcement off the main thread is gone.  With
    ``seconds`` None/0 the context is a no-op.
    """
    if seconds is None or seconds <= 0:
        yield
        return
    preemptive = (
        not force_deadline
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not preemptive:
        started = time.monotonic()
        yield
        if time.monotonic() - started > seconds:
            raise UnitTimeoutError(
                f"unit exceeded its {seconds:g}s wall-clock budget "
                f"(detected at the deadline check)"
            )
        return

    def _alarm(signum: int, frame: Optional[FrameType]) -> None:
        raise UnitTimeoutError(f"unit exceeded its {seconds:g}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
