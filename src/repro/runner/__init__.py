"""Resilient batch execution: checkpoints, isolation, retries, timeouts.

Every sweep and report goes through this subsystem.  See
:mod:`repro.runner.engine` for the execution model,
:mod:`repro.runner.pool` for the process-pool backend that fans units
out over workers with identical guarantees and bit-identical output,
:mod:`repro.runner.journal` for the crash-safe checkpoint format,
:mod:`repro.runner.atomic` for torn-write-free artefact persistence,
and :mod:`repro.runner.faults` for the deterministic fault-injection
hooks that prove the machinery works.
"""

from .atomic import atomic_open, write_bytes_atomic, write_text_atomic
from .engine import (
    RetryPolicy,
    Runner,
    RunResult,
    RunUnit,
    UnitOutcome,
    error_record,
    execute_attempts,
    resume_outcome,
    unit_timeout,
)
from .journal import JOURNAL_SCHEMA, RunJournal, unit_key
from .pool import PoolRunner, resolve_workers

__all__ = [
    "atomic_open",
    "write_text_atomic",
    "write_bytes_atomic",
    "RetryPolicy",
    "Runner",
    "RunResult",
    "RunUnit",
    "UnitOutcome",
    "error_record",
    "execute_attempts",
    "resume_outcome",
    "unit_timeout",
    "PoolRunner",
    "resolve_workers",
    "JOURNAL_SCHEMA",
    "RunJournal",
    "unit_key",
]
