"""Resilient batch execution: checkpoints, isolation, retries, timeouts.

Every sweep and report goes through this subsystem.  See
:mod:`repro.runner.engine` for the execution model,
:mod:`repro.runner.pool` for the process-pool backend that fans units
out over workers with identical guarantees and bit-identical output,
:mod:`repro.runner.journal` for the crash-safe checkpoint format,
:mod:`repro.runner.atomic` for torn-write-free artefact persistence,
:mod:`repro.runner.integrity` for self-verifying artefacts (sha256
sidecars, per-directory manifests, ``repro verify``),
:mod:`repro.runner.watchdog` for resource-guarded execution,
:mod:`repro.runner.lifecycle` for supervision (graceful drain on
SIGTERM/SIGINT, worker heartbeats, wall-clock budgets), and
:mod:`repro.runner.faults` for the deterministic fault-injection hooks
that prove the machinery works.
"""

from .atomic import atomic_open, fsync_directory, write_bytes_atomic, write_text_atomic
from .engine import (
    RetryPolicy,
    Runner,
    RunResult,
    RunUnit,
    UnitOutcome,
    error_record,
    execute_attempts,
    resume_outcome,
    unit_timeout,
)
from .integrity import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA,
    RUN_METADATA_NAME,
    IntegrityFinding,
    IntegrityReport,
    hash_file,
    matches_sidecar,
    read_sidecar,
    tree_fingerprint,
    untrack,
    verify_tree,
    write_manifest,
    write_sidecar,
)
from .journal import JOURNAL_SCHEMA, RunJournal, unit_key
from .lifecycle import (
    EXIT_ABORTED,
    EXIT_DRAINED,
    CancelToken,
    Heartbeat,
    HeartbeatRecord,
    Supervisor,
    read_heartbeats,
)
from .pool import PoolRunner, resolve_workers
from .watchdog import ResourceWatchdog, WatchdogPolicy, peak_rss_bytes

__all__ = [
    "atomic_open",
    "fsync_directory",
    "write_text_atomic",
    "write_bytes_atomic",
    "RetryPolicy",
    "Runner",
    "RunResult",
    "RunUnit",
    "UnitOutcome",
    "error_record",
    "execute_attempts",
    "resume_outcome",
    "unit_timeout",
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA",
    "RUN_METADATA_NAME",
    "IntegrityFinding",
    "IntegrityReport",
    "hash_file",
    "matches_sidecar",
    "read_sidecar",
    "tree_fingerprint",
    "untrack",
    "verify_tree",
    "write_manifest",
    "write_sidecar",
    "EXIT_ABORTED",
    "EXIT_DRAINED",
    "CancelToken",
    "Heartbeat",
    "HeartbeatRecord",
    "Supervisor",
    "read_heartbeats",
    "PoolRunner",
    "resolve_workers",
    "ResourceWatchdog",
    "WatchdogPolicy",
    "peak_rss_bytes",
    "JOURNAL_SCHEMA",
    "RunJournal",
    "unit_key",
]
