"""The resilient unit-execution engine.

Batch work (a report over many experiments, a sweep over many
configurations) is decomposed into :class:`RunUnit` objects and driven
by a :class:`Runner`, which layers four protections around each unit:

* **checkpointing** — completed units are recorded in a
  :class:`~repro.runner.journal.RunJournal` keyed by a configuration
  hash, so an interrupted run resumed against the same journal skips
  finished work;
* **isolation** — a unit that raises produces a structured
  :func:`error_record` instead of killing the run (``keep_going``), or
  stops the run cleanly with the journal intact;
* **retries** — transient failures are retried with exponential
  backoff under a :class:`RetryPolicy`;
* **timeouts** — a per-unit wall-clock budget: pre-emptive
  ``SIGALRM``/``setitimer`` on the main thread of a POSIX process, and
  a portable post-hoc deadline check everywhere else (worker threads,
  pool workers on platforms without ``SIGALRM``), both raising
  :class:`~repro.errors.UnitTimeoutError`.

The attempt loop itself (:func:`execute_attempts`) is journal-free and
usable from any process, which is how the process-pool backend
(:mod:`repro.runner.pool`) reuses it inside workers.  Deterministic
fault injection (:mod:`repro.runner.faults`) hooks into the attempt
loop so all four behaviours are testable.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from pathlib import Path

from ..errors import AbortError, RunnerError, UnitTimeoutError
from ..lfsr import Lfsr16
from ..obs.profile import capture_profile, profile_path
from ..obs.telemetry import DISABLED as _DISABLED_TELEMETRY
from ..obs.telemetry import Telemetry, activate
from . import faults
from .journal import RunJournal, unit_key
from .lifecycle import CancelToken, Heartbeat, unit_timeout

__all__ = [
    "RetryPolicy",
    "RunUnit",
    "UnitOutcome",
    "RunResult",
    "Runner",
    "error_record",
    "execute_attempts",
    "jitter_unit",
    "resume_outcome",
    "unit_timeout",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``max_attempts`` counts the first try: 1 means no retries.
    Timeouts (:class:`~repro.errors.UnitTimeoutError`) are never
    retried — a unit that blows its wall-clock budget is pathological,
    not transient.

    ``jitter`` (a fraction in [0, 1]) spreads the retry storms of
    concurrent units apart by shortening each delay by up to that
    fraction of its exponential base.  The spread is *deterministic*
    and REP002-clean: it derives from a :class:`~repro.lfsr.Lfsr16`
    seeded by the unit id, never from the global RNG or the wall
    clock — two runs of the same unit always back off identically,
    while different units desynchronise.
    """

    max_attempts: int = 1
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 5.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise RunnerError("retry policy needs max_attempts >= 1")
        if self.backoff_s < 0 or self.backoff_factor < 1 or self.max_backoff_s < 0:
            raise RunnerError("retry backoff parameters must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise RunnerError("retry jitter must be a fraction in [0, 1]")

    def delay(self, attempt: int, token: str = "") -> float:
        """Backoff before the retry following failed attempt ``attempt``.

        ``token`` (normally the unit id) seeds the jitter; with
        ``jitter=0`` (the default) it is ignored and the delay is the
        plain exponential schedule, exactly as before.
        """
        base = min(
            self.backoff_s * self.backoff_factor ** (attempt - 1),
            self.max_backoff_s,
        )
        if not self.jitter or base <= 0:
            return base
        return base * (1.0 - self.jitter * jitter_unit(token, attempt))


def jitter_unit(token: str, attempt: int) -> float:
    """A deterministic pseudo-random fraction in [0, 1) for backoff jitter.

    Seeds a 16-bit LFSR from a sha256 of ``token`` and steps it once
    per attempt, so the (token, attempt) pair fully determines the
    value — the property the REP002 determinism audit enforces for
    every backoff path (the engine here, and the serve retry loop).
    """
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    seed = int.from_bytes(digest[:2], "big") or 0xACE1
    register = Lfsr16(seed)
    for _ in range(max(1, attempt)):
        register.step()
    return register.state / float(1 << 16)


@dataclass(frozen=True)
class RunUnit:
    """One isolatable piece of a batch run.

    Attributes
    ----------
    unit_id:
        Stable identifier; also the handle fault plans match on.
    payload:
        JSON-safe description of the unit's full configuration; its
        hash (:func:`~repro.runner.journal.unit_key`) keys the journal,
        so a unit re-runs if its configuration changed since the
        journalled run.
    run:
        The work; its return value becomes the outcome's ``value``.
    to_record / from_record:
        Optional value serialisers.  When given, the journal stores
        ``to_record(value)`` with the OK entry and resume rebuilds the
        value via ``from_record`` without re-executing the unit.
    check_skip:
        Optional resume-time validation: return False to force a
        journalled-OK unit to re-run (e.g. its artefact went missing
        or is corrupt on disk).
    """

    unit_id: str
    payload: dict
    run: Callable[[], Any] = field(repr=False)
    to_record: Optional[Callable[[Any], dict]] = field(default=None, repr=False)
    from_record: Optional[Callable[[dict], Any]] = field(default=None, repr=False)
    check_skip: Optional[Callable[[], bool]] = field(default=None, repr=False)

    @property
    def key(self) -> str:
        return unit_key(self.payload)


@dataclass(frozen=True)
class UnitOutcome:
    """What happened to one unit: ok, skipped (journal hit), or failed.

    ``elapsed_s`` spans the whole attempt loop (including backoff
    sleeps); ``duration_s`` is the final attempt's wall time alone —
    the number performance work cares about.  ``started_at`` /
    ``ended_at`` are Unix timestamps of the loop's boundaries (0.0 for
    skipped units, which never execute).
    """

    unit_id: str
    status: str
    value: Any = None
    attempts: int = 0
    elapsed_s: float = 0.0
    duration_s: float = 0.0
    started_at: float = 0.0
    ended_at: float = 0.0
    error: Optional[dict] = None
    exception: Optional[BaseException] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "skipped")


@dataclass(frozen=True)
class RunResult:
    """All outcomes of one :meth:`Runner.run` call, in unit order.

    ``interrupted`` is None for a run that covered every unit; when a
    :class:`~repro.runner.lifecycle.CancelToken` drained the run early
    it holds the cancel reason, and the missing units are exactly the
    ones a ``--resume`` against the same journal will pick up.
    """

    outcomes: Tuple[UnitOutcome, ...]
    interrupted: Optional[str] = None

    @property
    def completed(self) -> List[UnitOutcome]:
        return [o for o in self.outcomes if o.ok]

    @property
    def failed(self) -> List[UnitOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    def values(self) -> List[Any]:
        return [o.value for o in self.completed]

    def raise_first_failure(self) -> None:
        """Re-raise the first failed unit's original exception."""
        for outcome in self.failed:
            if outcome.exception is not None:
                raise outcome.exception
            raise RunnerError(f"unit {outcome.unit_id} failed: {outcome.error}")

    def failures_manifest(self) -> dict:
        """JSON-safe manifest of every failure (``FAILURES.json`` body)."""
        return {"schema": 1, "failures": [o.error for o in self.failed]}


def error_record(unit: RunUnit, error: BaseException, attempts: int, elapsed_s: float) -> dict:
    """Structured, JSON-safe record of one unit failure."""
    return {
        "unit": unit.unit_id,
        "type": type(error).__name__,
        "message": str(error),
        "config": unit.payload,
        "attempts": attempts,
        "elapsed_s": round(elapsed_s, 6),
    }


def execute_attempts(
    unit: RunUnit,
    retry: Optional[RetryPolicy] = None,
    timeout_s: Optional[float] = None,
    sleep: Callable[[float], None] = time.sleep,
    force_deadline: bool = False,
    telemetry: Optional[Telemetry] = None,
    profile_dir: Optional[Path] = None,
    heartbeat: Optional[Heartbeat] = None,
) -> UnitOutcome:
    """Run one unit's full attempt loop; never touches a journal.

    This is the engine's core shared by the serial :class:`Runner` and
    the process-pool workers (:mod:`repro.runner.pool`): bounded
    retries with backoff for transient failures, per-attempt timeout
    enforcement (timeouts are never retried), and the fault-injection
    hook before every attempt.  Unit failures come back as a ``failed``
    :class:`UnitOutcome`; ``BaseException`` (KeyboardInterrupt,
    injected crashes) propagates.

    ``telemetry`` wraps the loop in a ``unit`` span, counts outcomes /
    retries / timeouts, and is *activated* around the attempts so
    instrumented unit bodies can reach it ambiently
    (:func:`repro.obs.current`).  ``profile_dir`` additionally captures
    a per-unit :mod:`cProfile` into ``<profile_dir>/<unit>.prof`` (the
    last attempt wins).  Neither affects the outcome: telemetry is
    measured *around* the model code, never inside it (REP002), and a
    telemetry-off run is byte-identical.

    ``heartbeat`` (a :class:`~repro.runner.lifecycle.Heartbeat`) stamps
    this process's liveness file at the start of every attempt, so a
    supervising parent can tell a long unit from a wedged one.
    """
    retry = retry if retry is not None else RetryPolicy()
    telemetry = telemetry if telemetry is not None else _DISABLED_TELEMETRY
    profile_to = (
        profile_path(profile_dir, unit.unit_id) if profile_dir is not None else None
    )
    started_wall = time.time()
    started = time.monotonic()
    attempts = 0
    with telemetry.span("unit", unit=unit.unit_id) as span, activate(telemetry):
        while True:
            attempts += 1
            attempt_started = time.monotonic()
            if heartbeat is not None:
                heartbeat.beat(unit.unit_id, phase="run")
            try:
                with unit_timeout(timeout_s, force_deadline=force_deadline):
                    # The scope lets write-path fault hooks (and any future
                    # per-write bookkeeping) attribute writes to this unit.
                    with faults.unit_scope(unit.unit_id):
                        faults.before_unit(unit.unit_id)
                        with capture_profile(profile_to):
                            value = unit.run()
            except AbortError:
                # A hard abort (second shutdown signal delivered mid-unit)
                # is not a unit failure: it propagates like an injected
                # crash, with everything already journalled staying put.
                raise
            except Exception as error:
                elapsed = time.monotonic() - started
                duration = time.monotonic() - attempt_started
                transient = not isinstance(error, UnitTimeoutError)
                if transient and attempts < retry.max_attempts:
                    telemetry.count("repro_retries_total")
                    sleep(retry.delay(attempts, unit.unit_id))
                    continue
                if isinstance(error, UnitTimeoutError):
                    telemetry.count("repro_timeouts_total")
                telemetry.count("repro_units_total", status="failed")
                telemetry.observe("repro_unit_duration_seconds", duration)
                span.set(status="failed", attempts=attempts)
                record = error_record(unit, error, attempts, elapsed)
                return UnitOutcome(
                    unit.unit_id,
                    "failed",
                    attempts=attempts,
                    elapsed_s=elapsed,
                    duration_s=duration,
                    started_at=started_wall,
                    ended_at=time.time(),
                    error=record,
                    exception=error,
                )
            elapsed = time.monotonic() - started
            duration = time.monotonic() - attempt_started
            telemetry.count("repro_units_total", status="ok")
            telemetry.observe("repro_unit_duration_seconds", duration)
            span.set(status="ok", attempts=attempts)
            return UnitOutcome(
                unit.unit_id,
                "ok",
                value=value,
                attempts=attempts,
                elapsed_s=elapsed,
                duration_s=duration,
                started_at=started_wall,
                ended_at=time.time(),
            )


def resume_outcome(journal: Optional[RunJournal], unit: RunUnit) -> Optional[UnitOutcome]:
    """The ``skipped`` outcome for a journalled-complete unit, else None.

    A unit is skippable when the journal's latest entry for it is OK
    under the same configuration key and its ``check_skip`` validation
    (if any) still passes; the outcome's value is rebuilt through
    ``from_record`` when the journal stored one.
    """
    if journal is None or not journal.completed(unit.unit_id, unit.key):
        return None
    if unit.check_skip is not None and not unit.check_skip():
        return None
    value = None
    entry = journal.entry(unit.unit_id)
    stored = entry.get("result") if entry else None
    if unit.from_record is not None and stored is not None:
        value = unit.from_record(stored)
    return UnitOutcome(unit.unit_id, "skipped", value=value)


class Runner:
    """Drives a sequence of :class:`RunUnit` with the four protections.

    ``run`` never raises for unit failures — it returns a
    :class:`RunResult` and leaves the raise-or-continue decision to the
    caller (``RunResult.raise_first_failure``).  ``BaseException``
    (KeyboardInterrupt, injected crashes) always propagates: by then
    every finished unit is journalled, which is what makes resume work.
    """

    def __init__(
        self,
        journal: Optional[RunJournal] = None,
        retry: Optional[RetryPolicy] = None,
        timeout_s: Optional[float] = None,
        keep_going: bool = False,
        sleep: Callable[[float], None] = time.sleep,
        telemetry: Optional[Telemetry] = None,
        profile_dir: Optional[Path] = None,
        cancel: Optional[CancelToken] = None,
    ):
        self.journal = journal
        self.retry = retry if retry is not None else RetryPolicy()
        self.timeout_s = timeout_s
        self.keep_going = keep_going
        self._sleep = sleep
        self.telemetry = telemetry if telemetry is not None else _DISABLED_TELEMETRY
        self.profile_dir = profile_dir
        self.cancel = cancel

    def run(self, units: Sequence[RunUnit]) -> RunResult:
        outcomes: List[UnitOutcome] = []
        interrupted: Optional[str] = None
        for unit in units:
            if self.cancel is not None and self.cancel.cancelled:
                # Drain: the unit that was executing when the token
                # tripped has finished and is journalled; stop here.
                self.cancel.raise_if_expired()
                interrupted = self.cancel.reason
                break
            outcome = self._run_unit(unit)
            outcomes.append(outcome)
            if outcome.status == "failed" and not self.keep_going:
                break
        self.telemetry.flush([unit.unit_id for unit in units])
        return RunResult(tuple(outcomes), interrupted=interrupted)

    def _resume_outcome(self, unit: RunUnit) -> Optional[UnitOutcome]:
        return resume_outcome(self.journal, unit)

    def _run_unit(self, unit: RunUnit) -> UnitOutcome:
        skipped = self._resume_outcome(unit)
        if skipped is not None:
            self.telemetry.count("repro_units_total", status="skipped")
            return skipped
        outcome = execute_attempts(
            unit,
            retry=self.retry,
            timeout_s=self.timeout_s,
            sleep=self._sleep,
            telemetry=self.telemetry,
            profile_dir=self.profile_dir,
        )
        if self.journal is not None:
            if outcome.status == "ok":
                stored = (
                    unit.to_record(outcome.value)
                    if unit.to_record is not None
                    else None
                )
                self.journal.record(
                    unit.unit_id,
                    unit.key,
                    "ok",
                    attempts=outcome.attempts,
                    elapsed_s=outcome.elapsed_s,
                    duration_s=outcome.duration_s,
                    started_at=outcome.started_at,
                    ended_at=outcome.ended_at,
                    result=stored,
                )
            else:
                self.journal.record(
                    unit.unit_id,
                    unit.key,
                    "failed",
                    attempts=outcome.attempts,
                    elapsed_s=outcome.elapsed_s,
                    duration_s=outcome.duration_s,
                    started_at=outcome.started_at,
                    ended_at=outcome.ended_at,
                    error=outcome.error,
                )
        self.telemetry.unit_done()
        return outcome
