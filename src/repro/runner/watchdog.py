"""Resource watchdog: disk preflight and per-worker memory high-water.

Production-length sweeps die for boring reasons — a full results disk,
a worker ballooning past the container's memory limit — and the worst
failure mode is an opaque crash that loses the run.  The watchdog turns
both into typed, recoverable behaviour:

* **disk preflight** — before a run touches its output directory, the
  free space on the target filesystem is checked against a floor;
  falling below it raises :class:`~repro.errors.ResourceError` *before*
  any artefact or journal write can be torn by ``ENOSPC`` mid-run
  (writes that still hit a full disk surface as retryable
  ``CheckpointError`` from the atomic layer);
* **RSS high-water** — pool workers report their peak resident set
  (:func:`peak_rss_bytes`, via :mod:`resource`) with every reply; when
  a reply crosses the configured ceiling the pool **sheds** its
  remaining queued work and the parent finishes it serially — degrading
  throughput instead of dying on memory pressure.  A worker that is
  killed outright (OOM, ``killworker`` fault) breaks the pool; with a
  watchdog installed the parent likewise falls back to serial execution
  instead of aborting the run;
* **liveness** — pool workers stamp heartbeat files between unit
  attempts (:mod:`repro.runner.lifecycle`); a worker whose
  ``run``-phase stamp goes staler than ``hang_timeout_s`` is declared
  hung, killed, and its unit requeued on the survivors, up to
  ``max_rescues`` times before the run degrades to serial.

The degradation ladder, mildest to harshest: preflight refusal →
retryable ``CheckpointError`` per write → hung worker killed and unit
requeued → shed workers, finish serial → journal-backed ``--resume``.
"""

from __future__ import annotations

import shutil
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

from ..errors import ResourceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.telemetry import Telemetry
    from .lifecycle import HeartbeatRecord

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None  # type: ignore[assignment]

__all__ = [
    "DEFAULT_MIN_FREE_BYTES",
    "WatchdogPolicy",
    "ResourceWatchdog",
    "peak_rss_bytes",
]

#: Free-space floor a run's output filesystem must satisfy (32 MiB —
#: far above what one sweep writes, far below any healthy disk).
DEFAULT_MIN_FREE_BYTES = 32 * 1024 * 1024


def peak_rss_bytes() -> Optional[int]:
    """This process's peak resident set size in bytes, if measurable.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; None where
    :mod:`resource` is unavailable (Windows).
    """
    if _resource is None:  # pragma: no cover - non-POSIX platforms
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return int(peak)
    return int(peak) * 1024


@dataclass(frozen=True)
class WatchdogPolicy:
    """Resource limits a run must respect.

    ``min_free_bytes`` gates the disk preflight; ``max_worker_rss_bytes``
    (None = unlimited) is the per-worker peak-RSS ceiling past which the
    pool sheds workers and degrades to serial.

    ``hang_timeout_s`` (None = no liveness check) is how stale a pool
    worker's ``run``-phase heartbeat may grow before the worker is
    declared hung, killed, and its unit requeued; it must comfortably
    exceed the longest legitimate gap between heartbeat stamps (one
    unit attempt), so set it well above the per-unit timeout when both
    are in play.  ``max_rescues`` bounds how many hung workers one run
    will kill-and-requeue before giving up and degrading to serial
    execution (each rescue restarts the pool, so unbounded rescues
    against a deterministically-hanging unit would loop forever).
    """

    min_free_bytes: int = DEFAULT_MIN_FREE_BYTES
    max_worker_rss_bytes: Optional[int] = None
    hang_timeout_s: Optional[float] = None
    max_rescues: int = 3

    def __post_init__(self) -> None:
        if self.min_free_bytes < 0:
            raise ResourceError("min_free_bytes must be non-negative")
        if self.max_worker_rss_bytes is not None and self.max_worker_rss_bytes <= 0:
            raise ResourceError("max_worker_rss_bytes must be positive")
        if self.hang_timeout_s is not None and self.hang_timeout_s <= 0:
            raise ResourceError("hang_timeout_s must be positive")
        if self.max_rescues < 0:
            raise ResourceError("max_rescues must be non-negative")


class ResourceWatchdog:
    """Applies a :class:`WatchdogPolicy` to a run (see module docstring).

    ``telemetry`` (a :class:`~repro.obs.telemetry.Telemetry` bundle, or
    None) turns the watchdog's observations into gauges: free disk at
    preflight (``repro_disk_free_bytes``) and every worker peak-RSS
    reading it inspects (``repro_worker_peak_rss_bytes``, high-water).
    """

    def __init__(
        self,
        policy: Optional[WatchdogPolicy] = None,
        telemetry: Optional["Telemetry"] = None,
    ):
        self.policy = policy if policy is not None else WatchdogPolicy()
        self.telemetry = telemetry

    def preflight_disk(
        self, path: Union[str, Path], need_bytes: Optional[int] = None
    ) -> int:
        """Free bytes on ``path``'s filesystem; raises when below the floor.

        ``path`` need not exist yet — the nearest existing ancestor's
        filesystem is measured, which is the one the run will write to.
        """
        target = Path(path).resolve()
        while not target.exists() and target != target.parent:
            target = target.parent
        free = shutil.disk_usage(target).free
        if self.telemetry is not None:
            self.telemetry.gauge_set("repro_disk_free_bytes", float(free))
        need = need_bytes if need_bytes is not None else self.policy.min_free_bytes
        if free < need:
            raise ResourceError(
                f"{path}: only {free} bytes free on the output filesystem, "
                f"below the {need}-byte watchdog floor; free space or lower "
                f"WatchdogPolicy.min_free_bytes"
            )
        return free

    def over_rss(self, rss_bytes: Optional[int]) -> bool:
        """True when a worker's reported peak RSS breaches the ceiling."""
        if self.telemetry is not None and rss_bytes is not None:
            self.telemetry.gauge_max(
                "repro_worker_peak_rss_bytes", float(rss_bytes)
            )
        limit = self.policy.max_worker_rss_bytes
        return limit is not None and rss_bytes is not None and rss_bytes > limit

    def hung_workers(
        self, heartbeats: Sequence["HeartbeatRecord"]
    ) -> List["HeartbeatRecord"]:
        """The workers whose ``run``-phase heartbeat went stale.

        ``heartbeats`` come from
        :func:`~repro.runner.lifecycle.read_heartbeats` over the pool's
        heartbeat directory.  An ``idle`` stamp never counts as hung no
        matter how old — a worker waiting for work heartbeats only when
        a unit starts.  With no ``hang_timeout_s`` configured the check
        is off and this always returns an empty list.
        """
        limit = self.policy.hang_timeout_s
        if limit is None:
            return []
        return [beat for beat in heartbeats if beat.running and beat.age_s > limit]
