"""End-to-end artefact integrity: sha256 sidecars, manifests, verification.

A silently bit-rotted result JSON skews a TPI-vs-area envelope with no
error anywhere, so every artefact the library persists can be
*self-verifying*:

* each tracked artefact gets a **sidecar** — ``<name>.sha256`` next to
  it, in ``sha256sum`` format — written immediately after the atomic
  rename (:func:`~repro.runner.atomic.atomic_open` with ``track=True``);
* each managed directory gets a **manifest** — ``MANIFEST.json``
  collecting the sidecar digests of every artefact in that directory —
  rebuilt at the end of a run from the sidecars (never by re-hashing,
  so a post-write corruption cannot be blessed into the manifest);
* :func:`verify_tree` walks a results tree, re-hashes every artefact,
  and cross-checks file, sidecar, and manifest.  With ``repair=True``
  corrupt artefacts are moved to a ``quarantine/`` sub-directory (the
  resume path then re-runs exactly the affected units) while stale
  integrity records are rewritten in place.

Append-mutable files — run journals, whose contents legitimately change
on every append — are *volatile*: the manifest lists them by name only,
their sidecar tracks the latest flush, and verification never
quarantines them (the journal format self-validates on load).  This
keeps the manifest itself byte-deterministic across equivalent runs,
which is what the chaos soak's byte-identical convergence check relies
on.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple, Union

from ..errors import IntegrityError
from .atomic import write_text_atomic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.telemetry import Telemetry

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA",
    "SIDECAR_SUFFIX",
    "QUARANTINE_DIR",
    "RUN_METADATA_NAME",
    "hash_file",
    "write_sidecar",
    "read_sidecar",
    "matches_sidecar",
    "untrack",
    "is_volatile",
    "write_manifest",
    "load_manifest",
    "IntegrityFinding",
    "IntegrityReport",
    "verify_tree",
    "tree_fingerprint",
]

#: Per-directory manifest file name and its format version.
MANIFEST_NAME = "MANIFEST.json"
MANIFEST_SCHEMA = 1

#: Suffix of the per-artefact digest sidecar (``sha256sum`` format).
SIDECAR_SUFFIX = ".sha256"

#: Sub-directory corrupt artefacts are moved into by ``--repair``.
QUARANTINE_DIR = "quarantine"

#: Re-run metadata written by ``write_report`` / ``run_sweep_dir`` so
#: ``repro verify --repair`` can re-execute the affected units.
RUN_METADATA_NAME = "RUN.json"

_CHUNK = 1 << 20


def hash_file(path: Union[str, Path]) -> str:
    """The sha256 hex digest of ``path``'s current contents."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def _sidecar_path(path: Path) -> Path:
    return path.with_name(path.name + SIDECAR_SUFFIX)


def write_sidecar(path: Union[str, Path]) -> str:
    """Hash ``path`` and persist the digest to its ``.sha256`` sidecar.

    The sidecar uses ``sha256sum`` format (``<hex>  <name>``), so a
    tree is independently checkable with coreutils.  Returns the
    digest.
    """
    path = Path(path)
    digest = hash_file(path)
    write_text_atomic(_sidecar_path(path), f"{digest}  {path.name}\n")
    return digest


def read_sidecar(path: Union[str, Path]) -> Optional[str]:
    """The digest recorded for ``path``, or None without a sidecar.

    Raises
    ------
    IntegrityError
        If a sidecar exists but is not byte-for-byte in the canonical
        ``sha256sum`` form (``<hex>  <name>\\n``).  Full-content
        strictness matters: a bit flip in the *name* field would leave
        the digest parsable and the artefact verifiable, yet silently
        diverge the byte-level tree fingerprint — so any deviation is
        corruption, and repair rewrites the canonical form.
    """
    path = Path(path)
    sidecar = _sidecar_path(path)
    if not sidecar.exists():
        return None
    try:
        raw = sidecar.read_text()
    except UnicodeDecodeError:
        raise IntegrityError(
            f"{sidecar}: corrupt sha256 sidecar (not valid text)"
        ) from None
    digest = raw.split()[0] if raw.strip() else ""
    if len(digest) != 64 or any(c not in "0123456789abcdef" for c in digest):
        raise IntegrityError(f"{sidecar}: corrupt sha256 sidecar: {raw.strip()[:40]!r}")
    if raw != f"{digest}  {path.name}\n":
        raise IntegrityError(
            f"{sidecar}: sidecar deviates from canonical sha256sum form"
        )
    return digest


def matches_sidecar(path: Union[str, Path]) -> bool:
    """True when ``path`` matches its sidecar (or has no sidecar).

    A missing sidecar is a pass — artefacts written before integrity
    tracking existed stay resumable — while a corrupt sidecar fails,
    forcing the owning unit to re-run and rewrite both.
    """
    path = Path(path)
    try:
        expected = read_sidecar(path)
    except IntegrityError:
        return False
    if expected is None:
        return True
    try:
        return hash_file(path) == expected
    except OSError:
        return False


def untrack(path: Union[str, Path]) -> None:
    """Remove ``path``'s sidecar (for artefacts that were deleted)."""
    _sidecar_path(Path(path)).unlink(missing_ok=True)


def is_volatile(name: str) -> bool:
    """True for artefacts whose bytes legitimately differ between runs.

    Run journals carry wall-clock ``elapsed_s`` and attempt counts, and
    the telemetry snapshots (``METRICS.jsonl`` / ``SPANS.jsonl``) are
    made of measured durations, so two byte-equivalent runs still
    produce different copies; they are tracked by existence + sidecar,
    never by a manifest digest — which keeps the manifest's digest map
    identical between telemetry-on and telemetry-off runs.
    """
    return (
        name == "journal.jsonl"
        or name.endswith(".journal.jsonl")
        or name in ("METRICS.jsonl", "SPANS.jsonl")
    )


def _is_integrity_name(name: str) -> bool:
    return name == MANIFEST_NAME or name.endswith(SIDECAR_SUFFIX) or name.endswith(".tmp")


def write_manifest(directory: Union[str, Path]) -> dict:
    """Rebuild ``directory``'s ``MANIFEST.json`` from its sidecars.

    Entries come from the sidecar digests recorded at artefact-write
    time — deliberately *not* from re-hashing the files, so corruption
    that happened after the write cannot be blessed into the manifest.
    Volatile artefacts (journals) are listed by name without a digest.
    """
    directory = Path(directory)
    artifacts: Dict[str, dict] = {}
    volatile: List[str] = []
    for sidecar in sorted(directory.glob("*" + SIDECAR_SUFFIX)):
        name = sidecar.name[: -len(SIDECAR_SUFFIX)]
        target = directory / name
        if _is_integrity_name(name) or not target.exists():
            continue
        if is_volatile(name):
            volatile.append(name)
            continue
        digest = read_sidecar(target)
        if digest is None:  # pragma: no cover - sidecar raced away
            continue
        artifacts[name] = {"sha256": digest, "size": target.stat().st_size}
    payload = {
        "manifest": MANIFEST_SCHEMA,
        "artifacts": artifacts,
        "volatile": sorted(volatile),
    }
    write_text_atomic(
        directory / MANIFEST_NAME,
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
    )
    return payload


def load_manifest(directory: Union[str, Path]) -> Optional[dict]:
    """Parse ``directory``'s manifest; None when absent.

    Raises
    ------
    IntegrityError
        If the manifest exists but is unparsable or malformed.
    """
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError):
        raise IntegrityError(f"{path}: corrupt manifest (not valid JSON)") from None
    if (
        not isinstance(payload, dict)
        or payload.get("manifest") != MANIFEST_SCHEMA
        or not isinstance(payload.get("artifacts"), dict)
        or not isinstance(payload.get("volatile"), list)
    ):
        raise IntegrityError(f"{path}: malformed manifest document")
    return payload


@dataclass(frozen=True)
class IntegrityFinding:
    """One verification problem at one artefact (or integrity record).

    ``kind`` is one of ``corrupt-artifact``, ``missing-artifact``,
    ``stale-sidecar``, ``corrupt-sidecar``, ``stale-manifest``,
    ``corrupt-manifest``.  ``action`` records what ``repair=True`` did:
    ``quarantined``, ``rewrote-sidecar``, ``rewrote-manifest``,
    ``dropped-entry``, or ``""`` when nothing was repaired.
    """

    path: str
    kind: str
    detail: str
    action: str = ""

    def to_record(self) -> Dict[str, str]:
        return {
            "path": self.path,
            "kind": self.kind,
            "detail": self.detail,
            "action": self.action,
        }


@dataclass(frozen=True)
class IntegrityReport:
    """Outcome of one :func:`verify_tree` walk."""

    root: str
    findings: Tuple[IntegrityFinding, ...]
    n_artifacts: int
    n_directories: int
    repaired: bool = False

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def corrupt(self) -> List[IntegrityFinding]:
        return [
            f
            for f in self.findings
            if f.kind in ("corrupt-artifact", "missing-artifact")
        ]

    def to_record(self) -> dict:
        return {
            "schema": 1,
            "root": self.root,
            "clean": self.clean,
            "n_artifacts": self.n_artifacts,
            "n_directories": self.n_directories,
            "repaired": self.repaired,
            "findings": [f.to_record() for f in self.findings],
        }

    def render(self) -> str:
        lines = [
            f"verified {self.n_artifacts} artefact(s) in "
            f"{self.n_directories} director{'y' if self.n_directories == 1 else 'ies'} "
            f"under {self.root}"
        ]
        for finding in self.findings:
            suffix = f" [{finding.action}]" if finding.action else ""
            lines.append(
                f"  {finding.kind}: {finding.path}: {finding.detail}{suffix}"
            )
        lines.append("clean" if self.clean else f"{len(self.findings)} problem(s)")
        return "\n".join(lines)


def _managed_directories(root: Path) -> Iterator[Path]:
    """Directories under ``root`` carrying integrity records."""
    if not root.is_dir():
        raise IntegrityError(f"{root}: not a directory")
    for directory in sorted([root, *[p for p in root.rglob("*") if p.is_dir()]]):
        if QUARANTINE_DIR in directory.relative_to(root).parts:
            continue
        has_records = (directory / MANIFEST_NAME).exists() or any(
            directory.glob("*" + SIDECAR_SUFFIX)
        )
        if has_records:
            yield directory


def _quarantine(directory: Path, name: str) -> str:
    """Move ``directory/name`` into the quarantine sub-directory."""
    corral = directory / QUARANTINE_DIR
    corral.mkdir(parents=True, exist_ok=True)
    target = corral / name
    serial = 0
    while target.exists():
        serial += 1
        target = corral / f"{name}.{serial}"
    os.replace(directory / name, target)
    return f"{QUARANTINE_DIR}/{target.name}"


def _try_hash(path: Path) -> Optional[str]:
    try:
        return hash_file(path)
    except OSError:
        return None


def verify_tree(
    root: Union[str, Path],
    repair: bool = False,
    telemetry: Optional["Telemetry"] = None,
) -> IntegrityReport:
    """Re-hash every tracked artefact under ``root`` and cross-check.

    For each artefact the file's current digest is compared against its
    sidecar and its manifest entry; the two records arbitrate:

    * file ≠ records (records agree, or only one exists) — the artefact
      is **corrupt**; ``repair`` quarantines it so the resume path
      re-runs its unit;
    * file matches one record but not the other — the odd record is
      **stale**; ``repair`` rewrites it from the file;
    * unparsable manifest / sidecar — reported; ``repair`` rebuilds the
      manifest from sidecars and rewrites sidecars from files that
      still match the manifest.

    Volatile artefacts (journals, telemetry snapshots) are checked for
    existence and sidecar freshness only and are never quarantined —
    the journal format validates itself on load.

    ``telemetry`` (a :class:`~repro.obs.telemetry.Telemetry` bundle, or
    None) counts the walk: artefacts verified, findings by kind, and
    quarantines — the corruption counters the chaos soak and the serve
    memo store surface.
    """
    root = Path(root)
    findings: List[IntegrityFinding] = []
    n_artifacts = 0
    n_directories = 0
    for directory in _managed_directories(root):
        n_directories += 1
        findings_here, n_here = _verify_directory(root, directory, repair)
        findings.extend(findings_here)
        n_artifacts += n_here
        if repair and any(f.action for f in findings_here):
            write_manifest(directory)
    if telemetry is not None:
        telemetry.count("repro_integrity_verified_total", float(n_artifacts))
        for finding in findings:
            telemetry.count("repro_integrity_findings_total", kind=finding.kind)
            if finding.action.startswith("quarantined"):
                telemetry.count("repro_integrity_quarantined_total")
    return IntegrityReport(
        root=str(root),
        findings=tuple(findings),
        n_artifacts=n_artifacts,
        n_directories=n_directories,
        repaired=repair,
    )


def _verify_directory(
    root: Path, directory: Path, repair: bool
) -> Tuple[List[IntegrityFinding], int]:
    findings: List[IntegrityFinding] = []
    manifest_entries: Dict[str, str] = {}
    manifest_volatile: List[str] = []
    try:
        manifest = load_manifest(directory)
    except IntegrityError as error:
        manifest = None
        findings.append(
            IntegrityFinding(
                path=str(directory / MANIFEST_NAME),
                kind="corrupt-manifest",
                detail=str(error),
                action="rewrote-manifest" if repair else "",
            )
        )
    if manifest is not None:
        for name, entry in manifest["artifacts"].items():
            digest = entry.get("sha256") if isinstance(entry, dict) else None
            manifest_entries[name] = str(digest).lower() if digest else ""
        manifest_volatile = [str(name) for name in manifest["volatile"]]

    sidecar_names = {
        sidecar.name[: -len(SIDECAR_SUFFIX)]
        for sidecar in directory.glob("*" + SIDECAR_SUFFIX)
    }
    names = sorted(
        (set(manifest_entries) | set(manifest_volatile) | sidecar_names)
        - {name for name in sidecar_names if _is_integrity_name(name)}
    )
    n_artifacts = 0
    for name in names:
        path = directory / name
        rel = str(path.relative_to(root)) if path != root else name
        n_artifacts += 1
        if is_volatile(name):
            findings.extend(_verify_volatile(path, rel, repair))
            continue
        findings.extend(
            _verify_artifact(
                directory, path, rel, manifest_entries.get(name), repair
            )
        )
    return findings, n_artifacts


def _verify_volatile(path: Path, rel: str, repair: bool) -> List[IntegrityFinding]:
    if not path.exists():
        untrack(path)
        return [
            IntegrityFinding(
                path=rel,
                kind="missing-artifact",
                detail="volatile artefact (journal) is gone",
                action="dropped-entry" if repair else "",
            )
        ]
    try:
        expected = read_sidecar(path)
    except IntegrityError:
        expected = ""
    if expected is not None and _try_hash(path) != expected:
        # A crash between a journal flush and its sidecar write leaves
        # the sidecar stale; the journal self-validates on load, so the
        # record — not the artefact — is what gets repaired.
        if repair:
            write_sidecar(path)
        return [
            IntegrityFinding(
                path=rel,
                kind="stale-sidecar",
                detail="volatile artefact moved past its sidecar",
                action="rewrote-sidecar" if repair else "",
            )
        ]
    return []


def _verify_artifact(
    directory: Path,
    path: Path,
    rel: str,
    manifest_digest: Optional[str],
    repair: bool,
) -> List[IntegrityFinding]:
    sidecar_corrupt = False
    try:
        sidecar_digest = read_sidecar(path)
    except IntegrityError:
        sidecar_digest = None
        sidecar_corrupt = True
    if not path.exists():
        if repair:
            untrack(path)
        return [
            IntegrityFinding(
                path=rel,
                kind="missing-artifact",
                detail="artefact listed in integrity records is gone",
                action="dropped-entry" if repair else "",
            )
        ]
    actual = _try_hash(path)
    records = [d for d in (manifest_digest, sidecar_digest) if d]

    if actual is not None and records and actual in records:
        findings: List[IntegrityFinding] = []
        if sidecar_corrupt or (sidecar_digest and sidecar_digest != actual):
            if repair:
                write_sidecar(path)
            findings.append(
                IntegrityFinding(
                    path=rel,
                    kind="corrupt-sidecar" if sidecar_corrupt else "stale-sidecar",
                    detail="sidecar disagrees with artefact and manifest",
                    action="rewrote-sidecar" if repair else "",
                )
            )
        elif sidecar_digest is None and not sidecar_corrupt:
            if repair:
                write_sidecar(path)
            findings.append(
                IntegrityFinding(
                    path=rel,
                    kind="stale-sidecar",
                    detail="artefact has a manifest entry but no sidecar",
                    action="rewrote-sidecar" if repair else "",
                )
            )
        if manifest_digest and manifest_digest != actual:
            findings.append(
                IntegrityFinding(
                    path=rel,
                    kind="stale-manifest",
                    detail="manifest entry disagrees with artefact and sidecar",
                    action="rewrote-manifest" if repair else "",
                )
            )
        return findings

    if not records:
        # Sidecar unreadable and no manifest entry: the artefact cannot
        # be vouched for; rewrite the record from the file (the unit
        # that produced it validated the content when it wrote it).
        if repair:
            write_sidecar(path)
        return [
            IntegrityFinding(
                path=rel,
                kind="corrupt-sidecar",
                detail="sidecar unreadable and no manifest entry to arbitrate",
                action="rewrote-sidecar" if repair else "",
            )
        ]

    action = ""
    if repair:
        untrack(path)
        action = f"quarantined -> {_quarantine(directory, path.name)}"
    expected = " / ".join(sorted(set(records)))
    return [
        IntegrityFinding(
            path=rel,
            kind="corrupt-artifact",
            detail=(
                f"sha256 {actual or 'unreadable'} does not match recorded "
                f"{expected[:16]}…"
            ),
            action=action,
        )
    ]


def tree_fingerprint(root: Union[str, Path]) -> Dict[str, str]:
    """Relative path → sha256 for every *deterministic* file under ``root``.

    Volatile artefacts (journals) and their sidecars, quarantined
    corpses, and in-flight ``.tmp`` files are excluded; everything else
    — results, reports, indexes, run metadata, manifests, and the
    sidecars of deterministic artefacts — participates.  Two runs of
    the same configuration must produce identical fingerprints, which
    is the chaos soak's convergence criterion.
    """
    root = Path(root)
    fingerprint: Dict[str, str] = {}
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        rel_parts = path.relative_to(root).parts
        if QUARANTINE_DIR in rel_parts:
            continue
        name = path.name
        if name.endswith(".tmp"):
            continue
        base = name[: -len(SIDECAR_SUFFIX)] if name.endswith(SIDECAR_SUFFIX) else name
        if is_volatile(base):
            continue
        fingerprint["/".join(rel_parts)] = hash_file(path)
    return fingerprint
