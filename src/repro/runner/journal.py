"""Crash-safe run journal: append-only JSONL of per-unit outcomes.

A journal records, for every unit of a batch run (one experiment of a
report, one configuration of a sweep), whether it completed and under
which *key* — a hash of the unit's full configuration.  An interrupted
run reopened with ``resume=True`` replays the journal and skips every
unit whose recorded key still matches, so only unfinished (or changed)
work is re-executed.

Layout: the first line is a header ``{"journal": 2}``; each following
line is one entry.  The file is rewritten through a tmp-sibling +
``os.replace`` on every append, so readers never observe a torn entry.
A truncated *final* line (possible if an older writer died mid-append)
is tolerated on load; corruption anywhere else raises
:class:`~repro.errors.CheckpointError`.

Schema history: version 2 added the per-entry ``duration_s`` (final
attempt wall time) and ``started_at`` / ``ended_at`` (Unix timestamps)
telemetry fields.  Version-1 journals — identical minus those fields —
are still read and resumed; new appends upgrade the header in place.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..errors import CheckpointError
from .atomic import write_text_atomic

__all__ = ["JOURNAL_SCHEMA", "SUPPORTED_JOURNAL_SCHEMAS", "unit_key", "RunJournal"]

#: Format version of the journal file.
JOURNAL_SCHEMA = 2

#: Versions this reader accepts (older versions lack optional fields only).
SUPPORTED_JOURNAL_SCHEMAS = (1, 2)


def unit_key(payload: dict) -> str:
    """Deterministic hash of a unit's configuration payload.

    The payload must be JSON-serialisable; non-JSON leaves are
    stringified so e.g. enum values hash stably.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class RunJournal:
    """The per-run checkpoint ledger (see module docstring)."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._entries: List[dict] = []
        self._latest: Dict[str, dict] = {}
        # Entries replayed from disk on open(resume=True); everything
        # past this index was recorded by the current run and may be
        # canonically reordered (see rewrite_ordered).
        self._n_loaded = 0

    @classmethod
    def open(cls, path: Union[str, Path], resume: bool = False) -> "RunJournal":
        """Open the journal at ``path``.

        ``resume=True`` replays an existing journal (missing file =
        empty journal); ``resume=False`` starts fresh, discarding any
        prior state on disk.
        """
        journal = cls(path)
        if resume and journal.path.exists():
            journal._load()
        else:
            journal._flush()
        return journal

    def _load(self) -> None:
        lines = self.path.read_text().splitlines()
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            raise CheckpointError(f"{self.path}: corrupt journal header") from None
        if (
            not isinstance(header, dict)
            or header.get("journal") not in SUPPORTED_JOURNAL_SCHEMAS
        ):
            raise CheckpointError(
                f"{self.path}: unsupported journal format {header!r}; this "
                f"repro reads journal schemas {SUPPORTED_JOURNAL_SCHEMAS}"
            )
        for number, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines):
                    # Torn final append from a crashed writer; the unit
                    # it described simply re-runs.
                    break
                raise CheckpointError(
                    f"{self.path}:{number}: corrupt journal entry"
                ) from None
            if not isinstance(entry, dict) or "unit" not in entry or "status" not in entry:
                raise CheckpointError(f"{self.path}:{number}: malformed journal entry")
            self._entries.append(entry)
            self._latest[entry["unit"]] = entry
        self._n_loaded = len(self._entries)

    def _flush(self) -> None:
        lines = [json.dumps({"journal": JOURNAL_SCHEMA})]
        lines += [json.dumps(entry, sort_keys=True) for entry in self._entries]
        # Tracked as a *volatile* artefact: the sidecar follows every
        # flush, while the manifest lists the journal by name only (its
        # bytes legitimately differ between equivalent runs).
        write_text_atomic(self.path, "\n".join(lines) + "\n", track=True)

    def record(
        self,
        unit_id: str,
        key: str,
        status: str,
        *,
        attempts: int = 1,
        elapsed_s: float = 0.0,
        duration_s: Optional[float] = None,
        started_at: Optional[float] = None,
        ended_at: Optional[float] = None,
        error: Optional[dict] = None,
        result: Optional[dict] = None,
    ) -> dict:
        """Append one outcome entry and persist the journal atomically.

        ``duration_s`` / ``started_at`` / ``ended_at`` are the schema-2
        telemetry fields (final-attempt wall time and attempt-loop Unix
        timestamps); like ``elapsed_s`` they are *volatile* — equality
        comparisons between equivalent runs must normalise them away.
        """
        entry = {
            "unit": unit_id,
            "key": key,
            "status": status,
            "attempts": attempts,
            "elapsed_s": round(elapsed_s, 6),
        }
        if duration_s is not None:
            entry["duration_s"] = round(duration_s, 6)
        if started_at is not None:
            entry["started_at"] = round(started_at, 6)
        if ended_at is not None:
            entry["ended_at"] = round(ended_at, 6)
        if error is not None:
            entry["error"] = error
        if result is not None:
            entry["result"] = result
        self._entries.append(entry)
        self._latest[unit_id] = entry
        self._flush()
        return entry

    def rewrite_ordered(self, unit_order: Sequence[str]) -> None:
        """Canonically reorder this run's entries and rewrite atomically.

        A parallel run journals outcomes as they *arrive* (crash-safe:
        a killed run resumes from whatever made it to disk), so entry
        order depends on worker scheduling.  Called on successful
        completion with the unit submission order, this stably reorders
        the entries appended by the current run — entries replayed from
        a resumed journal keep their position, exactly like the serial
        engine's append order — making the finished journal's contents
        independent of worker count and completion order.
        """
        position = {unit_id: index for index, unit_id in enumerate(unit_order)}
        tail = self._entries[self._n_loaded :]
        tail.sort(key=lambda entry: position.get(entry["unit"], len(position)))
        self._entries[self._n_loaded :] = tail
        self._flush()

    def entry(self, unit_id: str) -> Optional[dict]:
        """The most recent entry for ``unit_id`` (or ``None``)."""
        return self._latest.get(unit_id)

    def completed(self, unit_id: str, key: str) -> bool:
        """True if ``unit_id`` finished OK under the same configuration."""
        entry = self._latest.get(unit_id)
        return entry is not None and entry["status"] == "ok" and entry.get("key") == key

    @property
    def entries(self) -> List[dict]:
        """All entries in append order (a copy)."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
