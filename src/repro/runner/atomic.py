"""Atomic artefact writes: tmp-sibling plus ``os.replace``.

Every file the library persists (results, reports, traces, journals)
goes through these helpers so a crash — even a SIGKILL mid-write —
leaves either the previous complete file or no file at all, never a
half-written artefact that a later load would choke on.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Union

__all__ = ["atomic_open", "write_text_atomic", "write_bytes_atomic"]


def _tmp_sibling(path: Path) -> Path:
    return path.with_name(path.name + ".tmp")


@contextmanager
def atomic_open(path: Union[str, Path], mode: str = "w") -> Iterator:
    """Open a ``.tmp`` sibling of ``path`` for writing.

    On clean exit the data is flushed, fsynced, and renamed into place
    with :func:`os.replace` (atomic on POSIX and Windows).  On any
    exception the temporary file is removed and ``path`` is untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _tmp_sibling(path)
    handle = open(tmp, mode)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
    except BaseException:
        handle.close()
        tmp.unlink(missing_ok=True)
        raise
    else:
        handle.close()
        os.replace(tmp, path)


def write_text_atomic(path: Union[str, Path], text: str) -> None:
    """Atomically replace ``path`` with ``text``."""
    with atomic_open(path, "w") as handle:
        handle.write(text)


def write_bytes_atomic(path: Union[str, Path], data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    with atomic_open(path, "wb") as handle:
        handle.write(data)
