"""Atomic artefact writes: tmp-sibling plus ``os.replace``.

Every file the library persists (results, reports, traces, journals)
goes through these helpers so a crash — even a SIGKILL mid-write —
leaves either the previous complete file or no file at all, never a
half-written artefact that a later load would choke on.

Durability and failure semantics:

* the temporary file is flushed and fsynced before the rename, and the
  *containing directory* is fsynced after it — without the directory
  fsync the rename itself can be lost by a crash, resurrecting the old
  artefact (or nothing) on reboot;
* a full disk (``ENOSPC``/``EDQUOT``) or a short write surfaces as a
  typed, retryable :class:`~repro.errors.CheckpointError` with the
  temporary file cleaned up, so the engine's bounded-retry policy can
  re-attempt the unit once space frees up;
* ``track=True`` registers the artefact with the integrity layer
  (:mod:`repro.runner.integrity`): its sha256 is recorded in a
  ``.sha256`` sidecar immediately after the rename, from which the
  per-directory ``MANIFEST.json`` is later rebuilt.
"""

from __future__ import annotations

import errno
import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Any, Iterator, Union

from ..errors import CheckpointError
from . import faults

__all__ = ["atomic_open", "write_text_atomic", "write_bytes_atomic", "fsync_directory"]

#: errno values reported when the filesystem runs out of room.
_NO_SPACE = frozenset(
    {errno.ENOSPC} | ({errno.EDQUOT} if hasattr(errno, "EDQUOT") else set())
)


def _tmp_sibling(path: Path) -> Path:
    return path.with_name(path.name + ".tmp")


def fsync_directory(directory: Union[str, Path]) -> None:
    """Flush ``directory``'s entry table to stable storage.

    ``os.replace`` makes the rename atomic, but only a directory fsync
    makes it *durable*: without it a crash shortly after the rename can
    roll the directory back to the old entry.  Best-effort — platforms
    and filesystems that cannot fsync a directory (e.g. Windows) are
    tolerated, matching the strongest guarantee they can offer.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_open(
    path: Union[str, Path], mode: str = "w", *, track: bool = False
) -> Iterator[IO[Any]]:
    """Open a ``.tmp`` sibling of ``path`` for writing.

    On clean exit the data is flushed, fsynced, and renamed into place
    with :func:`os.replace` (atomic on POSIX and Windows), and the
    containing directory is fsynced so the rename survives a crash.  On
    any exception the temporary file is removed and ``path`` is
    untouched; running out of disk space raises a retryable
    :class:`~repro.errors.CheckpointError`.  With ``track=True`` the
    completed artefact's sha256 is recorded in its integrity sidecar.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _tmp_sibling(path)
    try:
        handle = open(tmp, mode)
    except OSError as error:
        if error.errno in _NO_SPACE:
            raise CheckpointError(
                f"{path}: disk full creating artefact ({error})"
            ) from error
        raise
    try:
        yield handle
        faults.check_write(path)
        handle.flush()
        os.fsync(handle.fileno())
    except OSError as error:
        handle.close()
        tmp.unlink(missing_ok=True)
        if error.errno in _NO_SPACE:
            raise CheckpointError(
                f"{path}: disk full while writing artefact ({error})"
            ) from error
        raise
    except BaseException:
        handle.close()
        tmp.unlink(missing_ok=True)
        raise
    else:
        handle.close()
        os.replace(tmp, path)
        fsync_directory(path.parent)
        if track:
            from .integrity import write_sidecar

            write_sidecar(path)


def write_text_atomic(
    path: Union[str, Path], text: str, *, track: bool = False
) -> None:
    """Atomically replace ``path`` with ``text``."""
    with atomic_open(path, "w", track=track) as handle:
        written = handle.write(text)
        if written != len(text):
            raise CheckpointError(
                f"{path}: short write ({written} of {len(text)} characters)"
            )


def write_bytes_atomic(
    path: Union[str, Path], data: bytes, *, track: bool = False
) -> None:
    """Atomically replace ``path`` with ``data``."""
    with atomic_open(path, "wb", track=track) as handle:
        written = handle.write(data)
        if written != len(data):
            raise CheckpointError(
                f"{path}: short write ({written} of {len(data)} bytes)"
            )
