"""Typed failure conditions of the sweep service.

Every condition the service deliberately surfaces to a client is one
of these classes; :mod:`repro.serve.app` maps the ``status`` attribute
onto the HTTP response code and ``retry_after_s`` onto a ``Retry-After``
header.  Anything *not* in this hierarchy that escapes a handler is a
bug and is reported as a bare 500 — with the exception type and
message, never a traceback.
"""

from __future__ import annotations

from ..errors import ServeError

__all__ = [
    "BadRequestError",
    "NotFoundError",
    "OversizeError",
    "ShedError",
    "BreakerOpenError",
    "UpstreamError",
    "DeadlineError",
    "DrainingError",
]


class BadRequestError(ServeError):
    """The request body or target could not be interpreted (400)."""

    status = 400


class NotFoundError(ServeError):
    """No handler is registered for the requested method/path (404)."""

    status = 404


class OversizeError(ServeError):
    """The declared request body exceeds the service's limit (413)."""

    status = 413


class ShedError(ServeError):
    """The compute queue is full and the request was shed (503).

    Shedding is deliberate: refusing work the service cannot start soon
    keeps latency bounded for the requests it *has* admitted, instead
    of letting every client time out together.
    """

    status = 503


class BreakerOpenError(ServeError):
    """The circuit breaker is open; compute is not being attempted (503).

    ``retry_after_s`` carries the remaining cooldown so clients back
    off for exactly as long as the service will refuse them anyway.
    """

    status = 503


class UpstreamError(ServeError):
    """Cold compute failed after its bounded retries (503).

    The failure is treated as infrastructure, not input: request
    validation happens before admission, so a request that reached the
    pool and still failed is retryable by the client once the backend
    recovers.
    """

    status = 503


class DeadlineError(ServeError):
    """The request exceeded its per-request deadline (504).

    The deadline travels into the worker as the unit's wall-clock
    budget (``budget_s``), so the underlying computation is cancelled
    at the same moment the client gets its 504 — a blown request frees
    its pool slot instead of occupying a worker to compute an answer
    nobody is waiting for.
    """

    status = 504


class DrainingError(ServeError):
    """The service is draining after a shutdown signal (503).

    New compute is refused with ``Retry-After`` while in-flight
    requests run to completion and the memo store is left
    manifest-consistent; read-only endpoints keep answering so health
    checks can watch the drain.
    """

    status = 503
