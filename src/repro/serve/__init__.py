"""Sweep-as-a-service: the fault-tolerant `repro serve` front end.

See :mod:`repro.serve.app` for the service itself (three-tier
memo/coalesce/cold resolution, admission control, circuit breaking,
degradation), :mod:`repro.serve.memo` for the content-addressed
integrity-verified memo store, :mod:`repro.serve.compute` for request
normalization and the byte-identity contract, and
:mod:`repro.serve.harness` for the in-process test/bench harness.
"""

from .admission import AdmissionController
from .app import SERVE_JOURNAL_NAME, ServeApp, ServePolicy, run_serve
from .breaker import CircuitBreaker
from .compute import (
    RECORD_SCHEMA,
    canonical_json,
    compute_point,
    envelope_records,
    normalize_point,
    normalize_sweep,
    point_key,
    point_record,
    tpi_record,
)
from .errors import (
    BadRequestError,
    BreakerOpenError,
    DeadlineError,
    NotFoundError,
    OversizeError,
    ShedError,
    UpstreamError,
)
from .harness import BackgroundServer
from .memo import MEMO_DIR, MemoStore
from .singleflight import SingleFlight

__all__ = [
    "SERVE_JOURNAL_NAME",
    "ServeApp",
    "ServePolicy",
    "run_serve",
    "AdmissionController",
    "CircuitBreaker",
    "SingleFlight",
    "MemoStore",
    "MEMO_DIR",
    "RECORD_SCHEMA",
    "canonical_json",
    "compute_point",
    "envelope_records",
    "normalize_point",
    "normalize_sweep",
    "point_key",
    "point_record",
    "tpi_record",
    "BackgroundServer",
    "BadRequestError",
    "BreakerOpenError",
    "DeadlineError",
    "NotFoundError",
    "OversizeError",
    "ShedError",
    "UpstreamError",
]
