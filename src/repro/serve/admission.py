"""Bounded-queue admission control with load shedding.

Admission is *request-level*: only requests that need cold compute
acquire a ticket (memo hits cost microseconds and are never shed).
``max_active`` tickets execute concurrently; up to ``max_waiting``
more may queue behind them.  A request arriving past both bounds is
**shed** immediately — a 503 with ``Retry-After`` — because admitting
it would only grow every admitted request's latency until all clients
time out together.  The shed hint scales with queue depth, so clients
back off harder the deeper the overload.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager
from typing import AsyncIterator

from ..errors import RunnerError
from .errors import ShedError

__all__ = ["AdmissionController"]


class AdmissionController:
    """Semaphore-bounded compute admission with an explicit queue cap."""

    def __init__(
        self,
        max_active: int = 4,
        max_waiting: int = 16,
        retry_after_s: float = 1.0,
    ):
        if max_active < 1:
            raise RunnerError("admission max_active must be >= 1")
        if max_waiting < 0:
            raise RunnerError("admission max_waiting must be non-negative")
        if retry_after_s <= 0:
            raise RunnerError("admission retry_after_s must be positive")
        self.max_active = max_active
        self.max_waiting = max_waiting
        self.retry_after_s = retry_after_s
        self._semaphore = asyncio.Semaphore(max_active)
        self.active = 0
        self.waiting = 0
        self.shed = 0

    @asynccontextmanager
    async def slot(self) -> AsyncIterator[None]:
        """Hold one compute ticket; sheds instead of queueing unboundedly."""
        if self.active >= self.max_active and self.waiting >= self.max_waiting:
            self.shed += 1
            raise ShedError(
                f"compute queue full ({self.active} active, "
                f"{self.waiting} waiting); request shed",
                retry_after_s=self.retry_after_s * (1 + self.waiting),
            )
        self.waiting += 1
        try:
            await self._semaphore.acquire()
        finally:
            self.waiting -= 1
        self.active += 1
        try:
            yield
        finally:
            self.active -= 1
            self._semaphore.release()
