"""Content-addressed memo store with integrity-verified reads.

The store is a managed artefact directory (``<store>/memo/``): each
entry is the canonical JSON of one evaluate record at ``<key>.json``,
written atomically with a sha256 sidecar and bound into the directory's
``MANIFEST.json`` — the same discipline as every other artefact tree,
so ``repro verify`` works on a serve store unchanged.

Reads are *integrity-verified*: an entry is only served when its bytes
re-hash to the sidecar digest.  Anything else — missing sidecar,
unparsable sidecar, digest mismatch, undecodable JSON — demotes the
request to a cold compute, and actual corruption is handed to the
existing :func:`repro.runner.integrity.verify_tree` repair machinery,
which quarantines the damaged artefact.  A poisoned entry is therefore
*detected, quarantined, and recomputed* — never served, which is the
property the ``poisonmemo`` chaos fault exists to prove.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from ..errors import IntegrityError
from ..runner import faults
from ..runner.atomic import write_text_atomic
from ..runner.integrity import hash_file, read_sidecar, untrack, verify_tree, write_manifest
from .compute import canonical_json

__all__ = ["MEMO_DIR", "MemoStore"]

#: Sub-directory of the serve store holding memo entries.
MEMO_DIR = "memo"


class MemoStore:
    """Persistent memoization of evaluate records, keyed by config hash."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def __len__(self) -> int:
        entries = (p for p in self.root.glob("*.json") if p.name != "MANIFEST.json")
        return sum(1 for _ in entries)

    def _demote_corrupt(self, key: str) -> None:
        """Quarantine a damaged entry through the repair machinery."""
        verify_tree(self.root, repair=True)
        self.quarantined += 1

    def load(self, key: str) -> Optional[dict]:
        """The verified record for ``key``, or None (treat as cold).

        Never raises for a damaged entry and never returns one: every
        corruption shape ends in quarantine (or removal) plus a miss.
        """
        path = self.path(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            recorded = read_sidecar(path)
        except IntegrityError:
            # The sidecar itself is rotten; repair rewrites or
            # quarantines, and the entry is not trusted either way.
            self._demote_corrupt(key)
            self.misses += 1
            return None
        if recorded is None or hash_file(path) != recorded:
            # No sidecar = unvouched entry (someone wrote around the
            # store); mismatch = post-write damage.  Both are cold.
            if recorded is not None:
                self._demote_corrupt(key)
            self.misses += 1
            return None
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            record = None
        if not isinstance(record, dict) or "kind" not in record:
            # Hash-consistent but semantically unusable: a bad store()
            # blessed garbage.  Drop it so the rewrite replaces it.
            path.unlink(missing_ok=True)
            untrack(path)
            self.misses += 1
            return None
        self.hits += 1
        return record

    def store(self, key: str, record: dict) -> None:
        """Persist ``record`` under ``key`` with full integrity tracking.

        The ``poisonmemo`` fault hook runs *after* the sidecar is
        recorded — the damage shape is post-write bit rot, which the
        next :meth:`load` must catch.
        """
        path = self.path(key)
        write_text_atomic(path, canonical_json(record), track=True)
        faults.damage_memo(key, path)
        write_manifest(self.root)
