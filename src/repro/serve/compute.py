"""Canonical request normalization and the picklable compute kernel.

Everything the service caches, coalesces, or journals hangs off the
*canonical key* of a request: the :func:`repro.runner.journal.unit_key`
hash of a normalized payload.  Two requests that mean the same design
point — whatever their JSON field order, integer-vs-float spelling, or
omitted defaults — normalize to the same ``SystemConfig`` and therefore
the same key, so they hit the same memo entry and coalesce onto the
same in-flight computation.

The byte-identity contract (chaos acceptance criterion) lives here too:
a 200 response body is exactly :func:`canonical_json` of the point
record, which is a pure function of the normalized request — so a memo
hit, a coalesced wait, and a cold compute all produce the same bytes
as a fresh serial :func:`repro.core.evaluate.evaluate` of that config.

:func:`compute_point` is the function shipped to pool workers; it is
module-level (picklable) and consults the fault hooks exactly like the
batch engine's unit bodies, so ``REPRO_FAULTS`` serve-side kinds fire
inside workers.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.config import SystemConfig
from ..core.evaluate import SystemPerformance, evaluate
from ..core.explorer import design_space
from ..errors import ConfigurationError
from ..runner import faults, unit_key
from ..runner.lifecycle import unit_timeout
from ..runner.watchdog import peak_rss_bytes
from ..traces.workloads import WORKLOADS
from .errors import BadRequestError

__all__ = [
    "RECORD_SCHEMA",
    "normalize_point",
    "normalize_sweep",
    "point_key",
    "point_record",
    "tpi_record",
    "envelope_records",
    "canonical_json",
    "compute_point",
]

#: Format version stamped into every served record.
RECORD_SCHEMA = 1


def _require_object(payload: Any) -> Dict[str, Any]:
    if not isinstance(payload, dict):
        raise BadRequestError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _config_from(payload: Dict[str, Any]) -> SystemConfig:
    """Build the design point from either request spelling.

    A ``config`` object uses the :meth:`SystemConfig.to_dict` schema
    (byte sizes); without one, the CLI-flag spelling (``l1_kb``,
    ``l2_kb``, ``l2_assoc``, ``exclusive``, ``off_chip_ns``,
    ``dual_ported``) is accepted for curl-friendliness.
    """
    if "config" in payload:
        return SystemConfig.from_dict(payload["config"])
    try:
        l1_kb = float(payload["l1_kb"])
    except KeyError:
        raise BadRequestError(
            "request needs either a 'config' object or an 'l1_kb' size"
        ) from None
    except (TypeError, ValueError):
        raise BadRequestError("'l1_kb' must be a number") from None
    try:
        document = {
            "l1_bytes": int(l1_kb * 1024),
            "l2_bytes": int(float(payload.get("l2_kb", 0)) * 1024),
            "l2_associativity": int(payload.get("l2_assoc", 4)),
            "policy": "EXCLUSIVE" if payload.get("exclusive") else "CONVENTIONAL",
            "off_chip_ns": float(payload.get("off_chip_ns", 50.0)),
        }
    except (TypeError, ValueError):
        raise BadRequestError("non-numeric cache dimension in request") from None
    config = SystemConfig.from_dict(document)
    if payload.get("dual_ported"):
        config = config.dual_ported()
    return config


def _workload_from(payload: Dict[str, Any]) -> str:
    workload = payload.get("workload", "gcc1")
    if not isinstance(workload, str) or workload not in WORKLOADS:
        known = ", ".join(WORKLOADS)
        raise BadRequestError(f"unknown workload {workload!r}; known: {known}")
    return workload


def _scale_from(payload: Dict[str, Any]) -> Optional[float]:
    scale = payload.get("scale")
    if scale is None:
        return None
    try:
        scale = float(scale)
    except (TypeError, ValueError):
        raise BadRequestError("'scale' must be a number") from None
    if not (scale > 0 and math.isfinite(scale)):
        raise BadRequestError("'scale' must be a positive finite number")
    return scale


def normalize_point(payload: Any) -> Tuple[SystemConfig, str, Optional[float]]:
    """Validate an evaluate/TPI request body into canonical pieces.

    Raises a typed 400 for anything malformed — validation happens
    *before* admission, so a failure past this point is infrastructure
    (503/504), never bad input.
    """
    payload = _require_object(payload)
    try:
        config = _config_from(payload)
    except ConfigurationError as error:
        raise BadRequestError(str(error)) from None
    return config, _workload_from(payload), _scale_from(payload)


def _size_list(payload: Dict[str, Any], field: str) -> Optional[List[int]]:
    raw = payload.get(field)
    if raw is None:
        return None
    if not isinstance(raw, list) or not raw:
        raise BadRequestError(f"'{field}' must be a non-empty list of KB sizes")
    try:
        return [int(float(item) * 1024) for item in raw]
    except (TypeError, ValueError):
        raise BadRequestError(f"'{field}' must contain only numbers") from None


def normalize_sweep(
    payload: Any,
) -> Tuple[List[SystemConfig], str, Optional[float]]:
    """Validate a sweep/envelope request into an ordered design space.

    The point order is the deterministic :func:`design_space` order, so
    the assembled response is byte-identical to a fresh serial sweep of
    the same template whatever mixture of memo hits and cold computes
    produced the individual points.
    """
    payload = _require_object(payload)
    try:
        template = (
            SystemConfig.from_dict(payload["template"])
            if "template" in payload
            else _config_from(payload)
            if ("config" in payload or "l1_kb" in payload)
            else None
        )
        configs = design_space(
            template,
            l1_sizes=_size_list(payload, "l1_sizes_kb"),
            l2_sizes=_size_list(payload, "l2_sizes_kb"),
            include_single_level=bool(payload.get("include_single_level", True)),
        )
    except ConfigurationError as error:
        raise BadRequestError(str(error)) from None
    if not configs:
        raise BadRequestError("the requested sweep enumerates zero design points")
    return configs, _workload_from(payload), _scale_from(payload)


def point_key(config: SystemConfig, workload: str, scale: Optional[float]) -> str:
    """The canonical content hash a point request is served under."""
    return unit_key(
        {
            "kind": "evaluate",
            "workload": workload,
            "scale": scale,
            "config": config.to_dict(),
        }
    )


def point_record(perf: SystemPerformance) -> dict:
    """The full JSON-safe evaluate record a 200 response serializes."""
    stats = perf.stats
    return {
        "schema": RECORD_SCHEMA,
        "kind": "evaluate",
        "label": perf.label,
        "workload": perf.workload,
        "config": perf.config.to_dict(),
        "levels": "2-level" if perf.config.has_l2 else "1-level",
        "tpi_ns": perf.tpi_ns,
        "area_rbe": perf.area_rbe,
        "l1_cycle_ns": perf.tpi.timings.l1_cycle_ns,
        "l1_miss_rate": stats.l1_miss_rate,
        "l2_local_miss_rate": stats.l2_local_miss_rate,
        "global_miss_rate": stats.global_miss_rate,
        "memory_fraction": perf.tpi.memory_fraction,
    }


def tpi_record(record: dict) -> dict:
    """The ``/v1/tpi`` projection of a stored evaluate record.

    A deterministic projection of the memoized record, so the TPI
    endpoint inherits the byte-identity guarantee without a second
    memo entry per point.
    """
    return {
        "schema": RECORD_SCHEMA,
        "kind": "tpi",
        "label": record["label"],
        "workload": record["workload"],
        "tpi_ns": record["tpi_ns"],
        "area_rbe": record["area_rbe"],
    }


def envelope_records(records: Sequence[dict]) -> List[dict]:
    """The lower-left Pareto staircase over evaluate records.

    Mirrors :func:`repro.core.envelope.best_envelope` (sorted by area,
    keep strict TPI improvements) over JSON records instead of
    performance objects.
    """
    ordered = sorted(records, key=lambda r: (r["area_rbe"], r["tpi_ns"]))
    staircase: List[dict] = []
    best = math.inf
    for record in ordered:
        if record["tpi_ns"] < best - 1e-12:
            staircase.append(record)
            best = record["tpi_ns"]
    return staircase


def canonical_json(document: dict) -> str:
    """The one serialization 200 responses use (byte-identity contract)."""
    return json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"


def compute_point(request: dict) -> dict:
    """Evaluate one normalized point — the pool-worker entry point.

    ``request`` is the plain-JSON shape the service submits:
    ``{"key", "config", "workload", "scale"}``.  Runs the same fault
    hooks as a batch unit (under the canonical key as unit id), so the
    serve-side ``REPRO_FAULTS`` kinds fire here, inside the worker.
    Returns the record plus the worker's peak RSS for the watchdog.

    ``budget_s``, when present, is the request's deadline propagated
    into the worker as a wall-clock budget: on the worker's main thread
    the pre-emptive ``SIGALRM`` cancels the computation the moment the
    budget blows — the pool slot is freed at the same instant the
    service answers 504, instead of the abandoned compute occupying a
    worker.  (On the degraded in-thread path the budget is enforced
    post-hoc; the slot frees when the unit completes.)
    """
    key = request["key"]
    config = SystemConfig.from_dict(request["config"])
    with unit_timeout(request.get("budget_s")):
        with faults.unit_scope(key):
            faults.before_unit(key)
            perf = evaluate(config, request["workload"], scale=request["scale"])
    return {"record": point_record(perf), "rss_bytes": peak_rss_bytes()}
