"""`repro serve` — the fault-tolerant sweep-as-a-service front end.

One :class:`ServeApp` owns a plain-asyncio HTTP/1.1 server (stdlib
only, ``Connection: close`` per request) and answers design-space
queries through a three-tier resolution path, cheapest first:

1. **memoized** — an integrity-verified read of a prior result from the
   content-addressed :class:`~repro.serve.memo.MemoStore`; corrupt
   entries are quarantined and demoted to cold, never served;
2. **coalesced** — an identical request already in flight is awaited
   (:class:`~repro.serve.singleflight.SingleFlight`), one computation
   however many clients ask;
3. **cold** — the computation is admitted through a bounded queue
   (:class:`~repro.serve.admission.AdmissionController`, shedding with
   503 + Retry-After when full), gated by a
   :class:`~repro.serve.breaker.CircuitBreaker`, fanned to a reusable
   process pool with deterministic exponential-backoff retries, and
   bounded by a per-request deadline (504 + Retry-After).

The fault-tolerance ladder for the backend: a broken pool is rebuilt
and the attempt retried; repeated pool deaths (or a worker breaching
the :class:`~repro.runner.watchdog.ResourceWatchdog` RSS ceiling)
degrade the service to serial in-process execution — slower but
available — with ``degraded_reason`` surfaced on ``/healthz`` and in
the journal; persistent failures open the breaker, converting every
doomed request into an immediate honest 503.

Correctness contract: a 200 body is exactly the canonical JSON of the
point record — a pure function of the normalized request — so memo
hits, coalesced waits, and cold computes are byte-identical to a fresh
serial evaluation.  The serving tier is reported out-of-band in the
``X-Repro-Source`` header.
"""

from __future__ import annotations

import asyncio
import functools
import json
import math
import signal
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from ..errors import ReproError, RunnerError, ServeError, UnitTimeoutError
from ..obs import Telemetry
from ..runner import (
    EXIT_ABORTED,
    ResourceWatchdog,
    RetryPolicy,
    RunJournal,
    resolve_workers,
)
from .admission import AdmissionController
from .breaker import CircuitBreaker
from .compute import (
    canonical_json,
    compute_point,
    envelope_records,
    normalize_point,
    normalize_sweep,
    point_key,
    tpi_record,
)
from .errors import (
    BadRequestError,
    DeadlineError,
    DrainingError,
    NotFoundError,
    OversizeError,
    UpstreamError,
)
from .memo import MEMO_DIR, MemoStore
from .singleflight import SingleFlight

__all__ = ["SERVE_JOURNAL_NAME", "ServePolicy", "ServeApp", "run_serve"]

#: The serve store's request journal (volatile artefact, like every
#: other ``*.journal.jsonl``).
SERVE_JOURNAL_NAME = "serve.journal.jsonl"

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass(frozen=True)
class ServePolicy:
    """Operating limits of one serve instance.

    ``max_active``/``max_waiting`` bound the cold-compute request queue
    (beyond which requests are shed); ``deadline_s`` is the per-request
    compute budget; ``retries`` the extra attempts a cold compute gets
    (backoff jitter derives from the seeded LFSR and the canonical
    key — REP002-clean); ``pool_death_limit`` the pool rebuilds
    tolerated before degrading to serial execution.
    """

    max_active: int = 4
    max_waiting: int = 16
    deadline_s: float = 60.0
    #: One more attempt than ``pool_death_limit``: a request whose pool
    #: dies repeatedly still has an attempt left *after* the service
    #: degrades to serial, so the degradation ladder completes the
    #: request instead of bouncing it back to the client.
    retries: int = 2
    backoff_s: float = 0.05
    breaker_threshold: int = 4
    breaker_cooldown_s: float = 2.0
    retry_after_s: float = 1.0
    max_body_bytes: int = 1 << 20
    pool_death_limit: int = 2

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise RunnerError("serve deadline_s must be positive")
        if self.retries < 0:
            raise RunnerError("serve retries must be non-negative")
        if self.pool_death_limit < 1:
            raise RunnerError("serve pool_death_limit must be >= 1")


class ServeApp:
    """The service: HTTP front end, three-tier resolution, fault walls."""

    def __init__(
        self,
        store: Union[str, Path],
        *,
        workers: Union[None, int, str] = None,
        policy: Optional[ServePolicy] = None,
        watchdog: Optional[ResourceWatchdog] = None,
    ):
        self.store_dir = Path(store)
        self.store_dir.mkdir(parents=True, exist_ok=True)
        self.policy = policy if policy is not None else ServePolicy()
        self.watchdog = watchdog if watchdog is not None else ResourceWatchdog()
        self.watchdog.preflight_disk(self.store_dir)
        self.n_workers = resolve_workers(workers)
        self.memo = MemoStore(self.store_dir / MEMO_DIR)
        self.flight = SingleFlight()
        # Always-on in-memory telemetry: the service renders it live on
        # /metrics and /v1/stats; nothing is flushed to disk, and the
        # span ring bounds memory over a long-lived process.
        self.telemetry = Telemetry(max_spans=512)
        self.breaker = CircuitBreaker(
            threshold=self.policy.breaker_threshold,
            cooldown_s=self.policy.breaker_cooldown_s,
            on_transition=self._on_breaker_transition,
        )
        self.admission = AdmissionController(
            max_active=self.policy.max_active,
            max_waiting=self.policy.max_waiting,
            retry_after_s=self.policy.retry_after_s,
        )
        self.journal = RunJournal.open(self.store_dir / SERVE_JOURNAL_NAME, resume=True)
        self.retry = RetryPolicy(
            max_attempts=self.policy.retries + 1,
            backoff_s=self.policy.backoff_s,
            jitter=0.5,
        )
        self._pool: Optional[ProcessPoolExecutor] = None
        # Single-threaded on purpose: memo and journal writes share
        # fixed .tmp siblings (MANIFEST.json.tmp), so store-side I/O
        # must stay serialized — as it implicitly was when these calls
        # blocked the event loop — while no longer stalling the loop.
        self._io_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-io"
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self.port: Optional[int] = None
        self.pool_deaths = 0
        self.degraded_reason: Optional[str] = None
        self.stats: Dict[str, int] = {
            "requests": 0,
            "memo": 0,
            "cold": 0,
            "coalesced": 0,
            "timeouts": 0,
            "errors": 0,
            "abandoned": 0,
        }
        self._started = self.telemetry.clock.monotonic()
        self._in_flight = 0
        self._request_seq = 0
        #: True once a shutdown signal began the drain: new compute is
        #: refused with 503 while in-flight requests run to completion.
        self.draining = False
        self.drain_reason: Optional[str] = None
        # Pool-backed compute futures still outstanding; what a pool
        # discard would abandon (counted in stats["abandoned"]).
        self._pool_futures: Set["asyncio.Future[Any]"] = set()

    # ------------------------------------------------------------------
    # Telemetry: live projection + event counters.

    def _on_breaker_transition(self, old_state: str, new_state: str) -> None:
        self.telemetry.count(
            "repro_serve_breaker_transitions_total",
            **{"from": old_state, "to": new_state},
        )

    def uptime_s(self) -> float:
        """Seconds since this app instance was constructed."""
        return self.telemetry.clock.monotonic() - self._started

    def memo_hit_rate(self) -> Optional[float]:
        """Fraction of memo lookups served from the store (None: no lookups)."""
        lookups = self.memo.hits + self.memo.misses
        if not lookups:
            return None
        return self.memo.hits / lookups

    _BREAKER_LEVELS = {
        CircuitBreaker.CLOSED: 0,
        CircuitBreaker.HALF_OPEN: 1,
        CircuitBreaker.OPEN: 2,
    }

    def _sync_live_metrics(self) -> None:
        """Project live object state into the registry before rendering.

        Counters use ``set_to`` (projection, not increment) so repeat
        scrapes never double-count; the sources of truth stay the live
        objects (``stats``, memo, admission, breaker).  Blocking bits
        (``len(self.memo)`` walks the store) mean async callers must
        run this through the I/O executor.
        """
        registry = self.telemetry.registry
        for name, value in self.stats.items():
            registry.counter(f"repro_serve_{name}_total").set_to(float(value))
        registry.counter("repro_serve_memo_hits_total").set_to(float(self.memo.hits))
        registry.counter("repro_serve_memo_misses_total").set_to(float(self.memo.misses))
        registry.counter("repro_serve_memo_quarantined_total").set_to(
            float(self.memo.quarantined)
        )
        registry.counter("repro_serve_shed_total").set_to(float(self.admission.shed))
        registry.counter("repro_serve_pool_deaths_total").set_to(float(self.pool_deaths))
        registry.gauge("repro_serve_admission_active").set(float(self.admission.active))
        registry.gauge("repro_serve_admission_waiting").set(float(self.admission.waiting))
        registry.gauge("repro_serve_in_flight").set(float(self._in_flight))
        registry.gauge("repro_serve_breaker_state").set(
            float(self._BREAKER_LEVELS[self.breaker.state])
        )
        registry.gauge("repro_serve_degraded").set(
            0.0 if self.degraded_reason is None else 1.0
        )
        registry.gauge("repro_serve_uptime_seconds").set(round(self.uptime_s(), 3))
        registry.gauge("repro_serve_memo_entries").set(float(len(self.memo)))

    def _metrics_text(self) -> str:
        self._sync_live_metrics()
        return self.telemetry.registry.render_prometheus()

    def _stats_document(self) -> dict:
        self._sync_live_metrics()
        hit_rate = self.memo_hit_rate()
        return {
            "schema": 1,
            "uptime_s": round(self.uptime_s(), 3),
            "in_flight": self._in_flight,
            "requests": dict(self.stats),
            "memo": {
                "hits": self.memo.hits,
                "misses": self.memo.misses,
                "quarantined": self.memo.quarantined,
                "entries": len(self.memo),
                "hit_rate": None if hit_rate is None else round(hit_rate, 4),
            },
            "admission": {
                "active": self.admission.active,
                "waiting": self.admission.waiting,
                "shed": self.admission.shed,
            },
            "breaker": self.breaker.state,
            "degraded_reason": self.degraded_reason,
            "spans_recorded": self.telemetry.tracer.recorded,
            "metrics": self.telemetry.registry.snapshot(),
        }

    # ------------------------------------------------------------------
    # Compute backend: pool lifecycle, degradation, cold resolution.

    def _backend(self) -> Optional[Executor]:
        """The executor cold computes run on; None means in-process serial."""
        if self.n_workers is None or self.degraded_reason is not None:
            return None
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.n_workers)
        return self._pool

    def _discard_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        # Futures still outstanding when the pool is thrown away never
        # produce a reply; count them instead of dropping them silently
        # (the projection surfaces repro_serve_abandoned_total).
        abandoned = sum(
            1 for future in list(self._pool_futures) if not future.done()
        )
        if abandoned:
            self.stats["abandoned"] += abandoned
        pool.shutdown(wait=False, cancel_futures=True)

    def _degrade(self, reason: str) -> None:
        """One-way fallback to serial execution; stays visible on /healthz."""
        if self.degraded_reason is None:
            self.degraded_reason = reason
        self._discard_pool()

    def reset_backend(self) -> None:
        """Forget pool, degradation, and breaker state (chaos harness).

        A freshly built pool also re-reads ``REPRO_FAULTS`` — workers
        inherit the environment at creation time, so a soak round that
        changes the fault plan must rebuild the backend.
        """
        self._discard_pool()
        self.pool_deaths = 0
        self.degraded_reason = None
        self.breaker.record_success()

    def _pool_future_done(self, future: "asyncio.Future[Any]") -> None:
        self._pool_futures.discard(future)
        if not future.cancelled():
            # A 504'd request abandons its await; retrieve the outcome
            # so the worker's UnitTimeoutError never warns at GC.
            future.exception()

    async def _submit(self, request: dict) -> dict:
        loop = asyncio.get_running_loop()
        backend = self._backend()
        if backend is None:
            # Degraded/serial: the default thread executor keeps the
            # event loop (health checks, shedding) responsive.
            return await loop.run_in_executor(None, compute_point, request)
        future = loop.run_in_executor(backend, compute_point, request)
        self._pool_futures.add(future)
        future.add_done_callback(self._pool_future_done)
        return await future

    # Memo and journal are synchronous disk I/O (REP007: they bottom
    # out in file reads/writes and fsync).  Every call from the async
    # request path goes through these executor bridges so a slow disk
    # stalls one request, not the whole event loop.

    async def _memo_load(self, key: str) -> Optional[dict]:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._io_executor, self.memo.load, key
        )

    async def _memo_store(self, key: str, record: dict) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            self._io_executor, self.memo.store, key, record
        )

    async def _journal_record(
        self, unit: str, key: str, status: str, **fields: Any
    ) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            self._io_executor,
            functools.partial(self.journal.record, unit, key, status, **fields),
        )

    async def _compute_cold(self, key: str, request: dict) -> dict:
        """One admitted cold computation: retries, pool healing, journal."""
        started = time.monotonic()
        attempts = 0
        while True:
            attempts += 1
            try:
                reply = await self._submit(request)
            except BrokenProcessPool as error:
                failure: BaseException = error
                self.pool_deaths += 1
                self.breaker.record_failure()
                self._discard_pool()
                if self.pool_deaths >= self.policy.pool_death_limit:
                    self._degrade(
                        f"worker pool died {self.pool_deaths} times; "
                        f"degraded to serial execution"
                    )
            except asyncio.CancelledError:
                raise
            except UnitTimeoutError as error:
                # The request's deadline, propagated into the worker as
                # ``budget_s``, fired: the client is already getting its
                # 504 from the front-end race, so retrying would burn
                # another pool slot computing an answer nobody awaits.
                # Not a breaker failure — the backend is healthy, the
                # request was just too expensive for its budget.
                await self._journal_record(
                    key,
                    key,
                    "failed",
                    attempts=attempts,
                    elapsed_s=time.monotonic() - started,
                    error={
                        "unit": key,
                        "type": type(error).__name__,
                        "message": str(error),
                        "degraded_reason": self.degraded_reason,
                    },
                )
                raise DeadlineError(
                    f"compute for {key} exceeded its "
                    f"{self.policy.deadline_s:g}s budget in the worker",
                    retry_after_s=self.policy.retry_after_s,
                ) from None
            except Exception as error:  # transient compute failure
                failure = error
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
                rss = reply.get("rss_bytes")
                if self.watchdog.over_rss(rss):
                    self._degrade(
                        f"worker peak RSS {rss} bytes exceeded the "
                        f"{self.watchdog.policy.max_worker_rss_bytes}-byte "
                        f"watchdog ceiling; degraded to serial execution"
                    )
                record = reply["record"]
                await self._memo_store(key, record)
                self.stats["cold"] += 1
                await self._journal_record(
                    key,
                    key,
                    "ok",
                    attempts=attempts,
                    elapsed_s=time.monotonic() - started,
                    result={
                        "source": "cold",
                        "label": record.get("label"),
                        "workload": record.get("workload"),
                        "degraded_reason": self.degraded_reason,
                    },
                )
                return record
            if attempts < self.retry.max_attempts:
                # Deterministic backoff: jitter derives from the seeded
                # LFSR and the canonical key, never the global RNG.
                await asyncio.sleep(self.retry.delay(attempts, key))
                continue
            await self._journal_record(
                key,
                key,
                "failed",
                attempts=attempts,
                elapsed_s=time.monotonic() - started,
                error={
                    "unit": key,
                    "type": type(failure).__name__,
                    "message": str(failure),
                    "degraded_reason": self.degraded_reason,
                },
            )
            raise UpstreamError(
                f"compute for {key} failed after {attempts} attempt(s): "
                f"{failure}",
                retry_after_s=self.policy.retry_after_s,
            )

    async def _resolve_point(self, config: Any, workload: str, scale: Any) -> Tuple[str, dict, str]:
        """Three-tier resolution of one point (caller already admitted)."""
        key = point_key(config, workload, scale)
        record = await self._memo_load(key)
        if record is not None:
            self.stats["memo"] += 1
            return key, record, "memo"
        request = {
            "key": key,
            "config": config.to_dict(),
            "workload": workload,
            "scale": scale,
            # Deadline propagation: the worker enforces the request's
            # budget itself (pre-emptive SIGALRM on its main thread), so
            # a 504'd request frees its pool slot instead of leaking the
            # computation.
            "budget_s": self.policy.deadline_s,
        }
        record, leader = await self.flight.run(
            key, lambda: self._compute_cold(key, request)
        )
        if not leader:
            self.stats["coalesced"] += 1
        return key, record, "cold" if leader else "coalesced"

    async def _with_deadline(self, awaitable: Any) -> Any:
        try:
            return await asyncio.wait_for(awaitable, timeout=self.policy.deadline_s)
        except asyncio.TimeoutError:
            self.stats["timeouts"] += 1
            raise DeadlineError(
                f"request exceeded its {self.policy.deadline_s:g}s deadline "
                f"(the worker-side budget cancels the computation and "
                f"frees its pool slot)",
                retry_after_s=self.policy.retry_after_s,
            ) from None

    # ------------------------------------------------------------------
    # Handlers.

    async def _handle_point(self, payload: Any, project_tpi: bool) -> Tuple[int, bytes, Dict[str, str]]:
        config, workload, scale = normalize_point(payload)

        async def resolve() -> Tuple[str, dict, str]:
            key = point_key(config, workload, scale)
            record = await self._memo_load(key)
            if record is not None:
                self.stats["memo"] += 1
                return key, record, "memo"
            self.breaker.check()
            async with self.admission.slot():
                return await self._resolve_point(config, workload, scale)

        key, record, source = await self._with_deadline(resolve())
        body = canonical_json(tpi_record(record) if project_tpi else record)
        return 200, body.encode("utf-8"), {
            "X-Repro-Source": source,
            "X-Repro-Key": key,
        }

    async def _handle_evaluate(self, payload: Any) -> Tuple[int, bytes, Dict[str, str]]:
        return await self._handle_point(payload, project_tpi=False)

    async def _handle_tpi(self, payload: Any) -> Tuple[int, bytes, Dict[str, str]]:
        return await self._handle_point(payload, project_tpi=True)

    async def _resolve_many(self, payload: Any) -> Tuple[List[dict], str, Dict[str, int]]:
        configs, workload, scale = normalize_sweep(payload)

        async def resolve() -> List[Tuple[str, dict, str]]:
            warm = all(
                self.memo.path(point_key(c, workload, scale)).exists()
                for c in configs
            )
            if warm:
                # Likely all memoized — resolve without a ticket; any
                # entry that fails verification still computes cold
                # (unadmitted, but rare by construction).
                return list(
                    await asyncio.gather(
                        *(self._resolve_point(c, workload, scale) for c in configs)
                    )
                )
            # One admission ticket per *request*: the fan-out below is
            # bounded by the pool, not the request queue.
            self.breaker.check()
            async with self.admission.slot():
                return list(
                    await asyncio.gather(
                        *(self._resolve_point(c, workload, scale) for c in configs)
                    )
                )

        resolved = await self._with_deadline(resolve())
        sources: Dict[str, int] = {}
        for _, _, source in resolved:
            sources[source] = sources.get(source, 0) + 1
        return [record for _, record, _ in resolved], workload, sources

    async def _handle_sweep(self, payload: Any) -> Tuple[int, bytes, Dict[str, str]]:
        records, workload, sources = await self._resolve_many(payload)
        body = canonical_json(
            {
                "schema": 1,
                "kind": "sweep",
                "workload": workload,
                "points": records,
            }
        )
        headers = {"X-Repro-Sources": json.dumps(sources, sort_keys=True)}
        return 200, body.encode("utf-8"), headers

    async def _handle_envelope(self, payload: Any) -> Tuple[int, bytes, Dict[str, str]]:
        records, workload, sources = await self._resolve_many(payload)
        body = canonical_json(
            {
                "schema": 1,
                "kind": "envelope",
                "workload": workload,
                "points": envelope_records(records),
            }
        )
        headers = {"X-Repro-Sources": json.dumps(sources, sort_keys=True)}
        return 200, body.encode("utf-8"), headers

    def health(self) -> dict:
        """The /healthz document (also used directly by tests)."""
        hit_rate = self.memo_hit_rate()
        if self.draining:
            status = "draining"
        elif self.degraded_reason:
            status = "degraded"
        else:
            status = "ok"
        return {
            "schema": 1,
            "status": status,
            "draining": self.draining,
            "degraded_reason": self.degraded_reason,
            "breaker": self.breaker.state,
            "workers": self.n_workers or 0,
            "pool_deaths": self.pool_deaths,
            "uptime_s": round(self.uptime_s(), 3),
            "in_flight": self._in_flight,
            "memo": {
                "hits": self.memo.hits,
                "misses": self.memo.misses,
                "quarantined": self.memo.quarantined,
                "entries": len(self.memo),
                "hit_rate": None if hit_rate is None else round(hit_rate, 4),
            },
            "admission": {
                "active": self.admission.active,
                "waiting": self.admission.waiting,
                "shed": self.admission.shed,
            },
            "requests": dict(self.stats),
        }

    async def _handle_health(self, payload: Any) -> Tuple[int, bytes, Dict[str, str]]:
        loop = asyncio.get_running_loop()
        document = await loop.run_in_executor(self._io_executor, self.health)
        return 200, canonical_json(document).encode("utf-8"), {}

    async def _handle_metrics(self, payload: Any) -> Tuple[int, bytes, Dict[str, str]]:
        """GET /metrics — Prometheus text exposition of the live registry."""
        loop = asyncio.get_running_loop()
        body = await loop.run_in_executor(self._io_executor, self._metrics_text)
        return 200, body.encode("utf-8"), {
            "Content-Type": "text/plain; version=0.0.4; charset=utf-8",
        }

    async def _handle_stats(self, payload: Any) -> Tuple[int, bytes, Dict[str, str]]:
        """GET /v1/stats — the same registry as JSON, plus derived rates."""
        loop = asyncio.get_running_loop()
        document = await loop.run_in_executor(self._io_executor, self._stats_document)
        return 200, canonical_json(document).encode("utf-8"), {}

    # ------------------------------------------------------------------
    # HTTP plumbing (stdlib asyncio streams; one request per connection).

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        try:
            line = await reader.readline()
        except ValueError:
            raise BadRequestError("request line too long") from None
        if not line:
            raise ConnectionError("client closed before sending a request")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise BadRequestError("malformed HTTP request line")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for _ in range(100):
            try:
                raw = await reader.readline()
            except ValueError:
                raise BadRequestError("request header too long") from None
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        else:
            raise BadRequestError("too many request headers")
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise BadRequestError("malformed Content-Length header") from None
        if length < 0:
            raise BadRequestError("negative Content-Length")
        if length > self.policy.max_body_bytes:
            raise OversizeError(
                f"request body of {length} bytes exceeds the "
                f"{self.policy.max_body_bytes}-byte limit"
            )
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, bytes, Dict[str, str]]:
        path = target.partition("?")[0]
        routes = {
            ("GET", "/healthz"): self._handle_health,
            ("GET", "/metrics"): self._handle_metrics,
            ("GET", "/v1/stats"): self._handle_stats,
            ("POST", "/v1/evaluate"): self._handle_evaluate,
            ("POST", "/v1/tpi"): self._handle_tpi,
            ("POST", "/v1/sweep"): self._handle_sweep,
            ("POST", "/v1/envelope"): self._handle_envelope,
        }
        handler = routes.get((method, path))
        if handler is None:
            raise NotFoundError(f"no handler for {method} {path}")
        if method == "POST" and self.draining:
            # Read-only endpoints keep answering (health checks watch
            # the drain); new compute is refused with a back-off hint.
            raise DrainingError(
                f"service is draining ({self.drain_reason}); "
                f"retry against a live instance",
                retry_after_s=self.policy.retry_after_s,
            )
        if method == "POST":
            try:
                payload = json.loads(body) if body else {}
            except json.JSONDecodeError:
                raise BadRequestError("request body is not valid JSON") from None
        else:
            payload = None
        return await handler(payload)

    @staticmethod
    def _error_body(error: BaseException, status: int) -> Tuple[bytes, Dict[str, str]]:
        document = {
            "error": {
                "type": type(error).__name__,
                "message": str(error),
                "status": status,
            }
        }
        headers: Dict[str, str] = {}
        retry_after = getattr(error, "retry_after_s", None)
        if retry_after is not None:
            headers["Retry-After"] = str(max(1, math.ceil(retry_after)))
        return canonical_json(document).encode("utf-8"), headers

    @staticmethod
    def _response_bytes(status: int, body: bytes, headers: Dict[str, str]) -> bytes:
        extra = dict(headers)
        content_type = extra.pop("Content-Type", "application/json")
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        lines += [f"{name}: {value}" for name, value in extra.items()]
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body

    async def handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: read a request, answer it, close.

        Every failure mode maps to a typed status — a handler can raise
        :class:`ServeError` (its own status + Retry-After), a library
        :class:`ReproError` that slipped past validation (400), or an
        unexpected exception (500, type and message only).  Nothing
        escapes as a traceback and nothing leaves the client hanging.
        """
        self.stats["requests"] += 1
        self._request_seq += 1
        request_id = f"req-{self._request_seq:08d}"
        self._in_flight += 1
        try:
            # A root span (no nesting stack): request handlers await
            # mid-span, so concurrent requests interleave and strictly
            # nested parenting would lie about causality.
            with self.telemetry.span(
                "request", root=True, request=request_id
            ) as req_span:
                try:
                    method, target, body = await asyncio.wait_for(
                        self._read_request(reader), timeout=self.policy.deadline_s
                    )
                except (ConnectionError, asyncio.IncompleteReadError, asyncio.TimeoutError):
                    req_span.set(outcome="unreadable")
                    return
                try:
                    status, payload, headers = await self._dispatch(method, target, body)
                except ServeError as error:
                    self.stats["errors"] += 1
                    status = error.status
                    payload, headers = self._error_body(error, status)
                except ReproError as error:
                    self.stats["errors"] += 1
                    status = 400
                    payload, headers = self._error_body(error, status)
                except asyncio.CancelledError:
                    raise
                except Exception as error:  # last wall: never a traceback
                    self.stats["errors"] += 1
                    status = 500
                    payload, headers = self._error_body(error, status)
                req_span.set(
                    method=method, path=target.partition("?")[0], status=status
                )
                headers = dict(headers)
                headers["X-Repro-Request"] = request_id
                writer.write(self._response_bytes(status, payload, headers))
                await writer.drain()
            # The span closed on scope exit; its measured duration is
            # the whole request (read, dispatch, write).
            self.telemetry.observe(
                "repro_serve_request_seconds", req_span.duration_s
            )
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._in_flight -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    # Lifecycle.

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start accepting; ``port=0`` picks a free port."""
        self._server = await asyncio.start_server(self.handle_client, host, port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RunnerError("serve_forever() before start()")
        await self._server.serve_forever()

    def begin_drain(self, reason: str) -> None:
        """Enter the drain phase: refuse new compute, finish in-flight.

        The listener stays open so /healthz keeps reporting
        ``draining`` and POSTs get an honest 503 + Retry-After instead
        of a connection refusal; :meth:`wait_drained` then completes
        once the last admitted request has answered.
        """
        if not self.draining:
            self.draining = True
            self.drain_reason = reason

    async def wait_drained(self, poll_s: float = 0.05) -> None:
        """Block until every in-flight request has completed.

        Polling (rather than an event bound at construction time) keeps
        the app loop-agnostic; the drain is signal-paced, so a 50 ms
        poll is invisible.
        """
        while self._in_flight > 0:
            await asyncio.sleep(poll_s)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._discard_pool()
        # wait=True drains the queued memo/journal writes, leaving the
        # store manifest-consistent however the shutdown started.
        self._io_executor.shutdown(wait=True)


def run_serve(
    store: Union[str, Path],
    host: str = "127.0.0.1",
    port: int = 8787,
    *,
    workers: Union[None, int, str] = "auto",
    policy: Optional[ServePolicy] = None,
) -> int:
    """Run the service in the foreground (the CLI entry point).

    Two-phase shutdown: the first SIGTERM/SIGINT begins a graceful
    drain — the listener keeps answering (/healthz says ``draining``,
    POSTs get 503 + Retry-After), in-flight requests complete, queued
    memo/journal writes flush, and the process exits 0.  A second
    signal aborts: in-flight work is abandoned (pool futures are
    counted as such) and the process exits ``EXIT_ABORTED``; the memo
    store stays manifest-consistent either way because every store
    write is atomic and the I/O executor is drained on stop.
    """
    app = ServeApp(store, workers=workers, policy=policy)

    async def main() -> int:
        await app.start(host, port)
        loop = asyncio.get_running_loop()
        drain_begun = asyncio.Event()
        abort = asyncio.Event()

        def on_signal(name: str) -> None:
            if not app.draining:
                app.begin_drain(f"received {name}")
                drain_begun.set()
                print(
                    f"repro serve: {name} received; draining — in-flight "
                    f"requests finishing, new compute refused with 503 "
                    f"(signal again to abort)",
                    flush=True,
                )
            else:
                abort.set()
                print(
                    "repro serve: second signal; aborting with in-flight "
                    "work abandoned",
                    flush=True,
                )

        installed = []
        for name in ("SIGTERM", "SIGINT"):
            signum = getattr(signal, name, None)
            if signum is None:  # pragma: no cover - non-POSIX platforms
                continue
            try:
                loop.add_signal_handler(signum, on_signal, name)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                continue
            installed.append(signum)
        # Only now advertise readiness: anyone who reacts to this line
        # with a signal must find the two-phase handlers already in
        # place, or the default disposition would kill us mid-start.
        print(
            f"repro serve: listening on http://{host}:{app.port} "
            f"(store {app.store_dir}, workers {app.n_workers or 'serial'})",
            flush=True,
        )
        tasks = {
            loop.create_task(app.serve_forever()),
            loop.create_task(drain_begun.wait()),
        }
        try:
            await asyncio.wait(tasks, return_when=asyncio.FIRST_COMPLETED)
            if drain_begun.is_set():
                waiters = {
                    loop.create_task(app.wait_drained()),
                    loop.create_task(abort.wait()),
                }
                tasks |= waiters
                await asyncio.wait(waiters, return_when=asyncio.FIRST_COMPLETED)
            return EXIT_ABORTED if abort.is_set() else 0
        finally:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            for signum in installed:
                loop.remove_signal_handler(signum)
            await app.stop()

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - non-POSIX fallback
        # Only reachable where loop signal handlers are unavailable;
        # asyncio.run's cleanup cancels main(), whose finally has
        # already stopped the app and flushed the store.
        return EXIT_ABORTED
