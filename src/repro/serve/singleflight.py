"""Single-flight request coalescing: one computation per canonical key.

When N identical requests arrive while none has a memo entry yet, the
naive service computes the point N times.  Single-flight keys every
in-flight computation by its canonical hash: the first arrival (the
*leader*) starts the work, later arrivals await the same task.  The
task is awaited through :func:`asyncio.shield`, so a waiter whose
request deadline fires is cancelled *individually* — the shared
computation keeps running, completes, and is memoized, which is what
turns a client's timeout-and-retry into a warm hit instead of a second
cold compute.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Tuple

__all__ = ["SingleFlight"]


class SingleFlight:
    """Coalesces concurrent identical work onto one asyncio task."""

    def __init__(self) -> None:
        self._inflight: Dict[str, "asyncio.Task[Any]"] = {}
        #: Requests served by awaiting someone else's computation.
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._inflight)

    async def run(
        self, key: str, supplier: Callable[[], Awaitable[Any]]
    ) -> Tuple[Any, bool]:
        """Await ``key``'s in-flight task, starting it if absent.

        Returns ``(result, leader)`` where ``leader`` is True for the
        caller that actually started the computation.  The supplier's
        exception propagates to every waiter; the key is released as
        soon as the task settles, so a later retry starts fresh.
        """
        task = self._inflight.get(key)
        leader = task is None
        if task is None:
            task = asyncio.get_running_loop().create_task(supplier())
            task.add_done_callback(self._make_release(key))
            self._inflight[key] = task
        else:
            self.coalesced += 1
        return await asyncio.shield(task), leader

    def _make_release(self, key: str) -> Callable[["asyncio.Task[Any]"], None]:
        def release(task: "asyncio.Task[Any]") -> None:
            self._inflight.pop(key, None)
            if not task.cancelled():
                # Every waiter may have been cancelled by its own
                # deadline; consume the exception so an abandoned
                # leader task does not warn at garbage collection.
                task.exception()

        return release
