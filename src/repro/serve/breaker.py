"""Circuit breaker over the compute backend.

A broken backend (pool dying on every submission, a poisoned
environment) must not let requests pile up behind doomed computes and
their retries.  The breaker counts *consecutive* backend failures;
past the threshold it **opens** and the service answers 503 with a
``Retry-After`` equal to the remaining cooldown — an immediate, honest
refusal instead of a hang.  After the cooldown one probe request is
let through (**half-open**): success closes the breaker, failure
re-opens it for a full cooldown.

The clock is injectable (and monotonic) so tests drive state
transitions without sleeping; the default is :func:`time.monotonic`,
which REP002 permits in execution-layer code.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..errors import RunnerError
from .errors import BreakerOpenError

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-failure breaker with cooldown and half-open probe."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        threshold: int = 4,
        cooldown_s: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ):
        if threshold < 1:
            raise RunnerError("breaker threshold must be >= 1")
        if cooldown_s < 0:
            raise RunnerError("breaker cooldown must be non-negative")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._probing = False
        #: Observer called with ``(old_state, new_state)`` on every
        #: explicit state change (the telemetry hook).  The lazy
        #: cooldown expiry reported by :attr:`state` is not a stored
        #: transition and does not fire it; the ``check()`` that acts
        #: on the expiry does.
        self.on_transition = on_transition

    def _set_state(self, new_state: str) -> None:
        old_state, self._state = self._state, new_state
        if old_state != new_state and self.on_transition is not None:
            self.on_transition(old_state, new_state)

    @property
    def state(self) -> str:
        """Current state, accounting for an elapsed cooldown."""
        if self._state == self.OPEN and self._remaining() <= 0:
            return self.HALF_OPEN
        return self._state

    def _remaining(self) -> float:
        return self.cooldown_s - (self._clock() - self._opened_at)

    def check(self) -> None:
        """Gate one compute attempt; raises 503 while the breaker refuses.

        Called by the leader before touching the backend.  In half-open
        state exactly one caller becomes the probe; concurrent callers
        are refused until the probe settles.
        """
        if self._state == self.OPEN:
            remaining = self._remaining()
            if remaining > 0:
                raise BreakerOpenError(
                    f"circuit breaker open after {self._failures} consecutive "
                    f"backend failures; retry in {remaining:.1f}s",
                    retry_after_s=remaining,
                )
            self._set_state(self.HALF_OPEN)
            self._probing = False
        if self._state == self.HALF_OPEN:
            if self._probing:
                raise BreakerOpenError(
                    "circuit breaker half-open with a probe in flight; "
                    "retry shortly",
                    retry_after_s=max(self.cooldown_s, 0.1),
                )
            self._probing = True

    def record_success(self) -> None:
        """A backend attempt succeeded: close and reset."""
        self._failures = 0
        self._set_state(self.CLOSED)
        self._probing = False

    def record_failure(self) -> None:
        """A backend attempt failed; may trip the breaker open."""
        self._failures += 1
        tripped = self._failures >= self.threshold
        if self._state == self.HALF_OPEN or (self._state == self.CLOSED and tripped):
            self._set_state(self.OPEN)
            self._opened_at = self._clock()
        elif self._state == self.OPEN and self._remaining() <= 0:
            # The failure *was* the half-open probe (state property
            # reported half-open); re-open for a fresh cooldown.
            self._opened_at = self._clock()
        self._probing = False
