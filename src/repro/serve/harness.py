"""In-process server harness shared by tests, benchmarks, and chaos.

:class:`BackgroundServer` runs a :class:`~repro.serve.app.ServeApp` on
its own event loop in a daemon thread and exposes a blocking
``request()`` helper built on :mod:`http.client` — real TCP, real HTTP
parsing, no framework.  The harness deliberately talks to the service
exactly like an external client would, so what the chaos soak proves
about it holds for curl too.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from concurrent.futures import Future
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, TypeVar, Union

from ..errors import ServeError
from .app import ServeApp, ServePolicy
from ..runner import ResourceWatchdog

__all__ = ["BackgroundServer"]

T = TypeVar("T")


class BackgroundServer:
    """Context manager running one ServeApp on a background loop."""

    def __init__(
        self,
        store: Union[str, Path],
        *,
        workers: Union[None, int, str] = None,
        policy: Optional[ServePolicy] = None,
        watchdog: Optional[ResourceWatchdog] = None,
    ):
        self.app = ServeApp(
            store, workers=workers, policy=policy, watchdog=watchdog
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "BackgroundServer":
        started: "Future[None]" = Future()
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, args=(started,), name="repro-serve", daemon=True
        )
        self._thread.start()
        started.result(timeout=30)
        return self

    def _run(self, started: "Future[None]") -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)

        async def boot() -> None:
            try:
                await self.app.start("127.0.0.1", 0)
            except BaseException as error:  # surface bind failures
                started.set_exception(error)
                raise
            started.set_result(None)

        self._loop.run_until_complete(boot())
        self._loop.run_forever()

        async def drain() -> None:
            # Abandoned single-flight leaders (e.g. a 504'd request
            # whose computation was left to finish and memoize) must
            # not outlive the loop; cancel and await them.
            await self.app.stop()
            tasks = [
                task
                for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
            ]
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

        self._loop.run_until_complete(drain())
        self._loop.close()

    def __exit__(self, *exc_info: Any) -> None:
        assert self._loop is not None and self._thread is not None
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise ServeError("serve thread failed to stop")

    @property
    def port(self) -> int:
        port = self.app.port
        if port is None:
            raise ServeError("server is not running")
        return port

    # -- client side ----------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        timeout: float = 120.0,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One blocking HTTP exchange; returns (status, headers, body)."""
        connection = http.client.HTTPConnection("127.0.0.1", self.port, timeout=timeout)
        try:
            body = json.dumps(payload).encode("utf-8") if payload is not None else None
            connection.request(
                method, path, body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            data = response.read()
            headers = {name.lower(): value for name, value in response.getheaders()}
            return response.status, headers, data
        finally:
            connection.close()

    def call(self, fn: Callable[..., T], *args: Any) -> T:
        """Run ``fn`` inside the server's event-loop thread.

        The app mutates its state (breaker, pool, counters) only from
        its own loop; the chaos harness uses this to reset the backend
        between rounds without racing in-flight requests.
        """
        assert self._loop is not None
        result: "Future[T]" = Future()

        def invoke() -> None:
            try:
                result.set_result(fn(*args))
            except BaseException as error:
                result.set_exception(error)

        self._loop.call_soon_threadsafe(invoke)
        return result.result(timeout=30)
