"""Trace-driven cache simulators.

The paper restricts first-level caches to direct-mapped, which makes the
L1 pass vectorisable (:mod:`repro.cache.directmap`); only the L1 miss
stream — a few percent of references — reaches the Python-level L2
simulator (:mod:`repro.cache.l2`).  :mod:`repro.cache.hierarchy` wires
the two together under the paper's two replacement disciplines:

* ``Policy.CONVENTIONAL`` — the baseline (non-exclusive) two-level
  organisation of §4–§7;
* ``Policy.EXCLUSIVE`` — the paper's contribution (§8): an L2 hit moves
  the line up to L1 and out of L2, and every L1 victim is written into
  the L2, so capacity is the *sum* of the levels.

:mod:`repro.cache.reference` holds deliberately slow, obviously-correct
simulators used by the test suite to validate the fast path.
"""

from .directmap import DirectMappedFilter, direct_mapped_filter
from .geometry import CacheGeometry
from .hierarchy import MissStream, Policy, l1_miss_stream, simulate_hierarchy
from .l2 import SetAssociativeCache
from .replacement import LfsrReplacement, LruReplacement, ReplacementPolicy
from .results import HierarchyStats

__all__ = [
    "CacheGeometry",
    "DirectMappedFilter",
    "direct_mapped_filter",
    "SetAssociativeCache",
    "ReplacementPolicy",
    "LfsrReplacement",
    "LruReplacement",
    "Policy",
    "MissStream",
    "l1_miss_stream",
    "simulate_hierarchy",
    "HierarchyStats",
]
