"""Two-level hierarchy simulation: split DM L1s over an optional mixed L2.

The decomposition exploited here (DESIGN.md §5): because the L1 caches
are direct-mapped and always fill on a miss, their contents — and hence
their miss and victim streams — do not depend on what the L2 does.  The
L1 pass therefore runs once per (trace, L1 size) through the vectorised
filter and is memoised; each L2 configuration replays only the merged
miss stream.

Warmup
------
The paper's traces run to billions of references, so compulsory (cold)
misses are negligible.  Synthetic traces are shorter; to keep cold
fills from distorting steady-state miss rates the simulators always
*simulate* the whole trace but only *count* events issued after a
warmup window (``warmup_fraction`` of the instruction stream, default
25 %).  Reported reference/instruction counts cover the counted window
only, so rates and the TPI model stay consistent.

Policies
--------
``Policy.CONVENTIONAL``
    §4's baseline: an L2 miss fills both levels; an L2 hit leaves the L2
    unchanged; L1 victims are dropped (write-backs do not affect miss
    counts).
``Policy.EXCLUSIVE``
    §8's contribution: an L2 hit *removes* the line from the L2 (it now
    lives in L1); an L2 miss fills L1 directly from off-chip; in both
    cases the L1 victim is inserted into the L2.  Conflicting lines can
    thus ping-pong between levels instead of thrashing off-chip, and
    on-chip capacity approaches the sum of the levels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..errors import ConfigurationError
from ..traces.address import Trace
from .directmap import NO_VICTIM, direct_mapped_filter
from .geometry import DEFAULT_LINE_SIZE, CacheGeometry
from .l2 import SetAssociativeCache
from .replacement import LfsrReplacement, LruReplacement
from .results import HierarchyStats

__all__ = [
    "Policy",
    "MissStream",
    "l1_miss_stream",
    "simulate_hierarchy",
    "DEFAULT_WARMUP_FRACTION",
]

#: Fraction of the instruction stream used to warm the caches before
#: counting (see module docstring).
DEFAULT_WARMUP_FRACTION = 0.25


class Policy(enum.Enum):
    """Second-level content-management policy."""

    CONVENTIONAL = "conventional"
    EXCLUSIVE = "exclusive"


@dataclass(frozen=True)
class MissStream:
    """Merged (program-order) L1 miss events for one (trace, L1 size).

    Attributes
    ----------
    times:
        Issue cycle (instruction index) of each missing reference.
    lines:
        Missing line address.
    victims:
        Line evicted from the missing L1 cache (``NO_VICTIM`` for cold
        fills).
    is_instruction:
        True where the miss came from the instruction cache.
    l1i_misses / l1d_misses:
        Per-cache miss totals.
    n_instructions / n_data_refs:
        Stream sizes of the originating trace.
    """

    times: np.ndarray
    lines: np.ndarray
    victims: np.ndarray
    is_instruction: np.ndarray
    l1i_misses: int
    l1d_misses: int
    n_instructions: int
    n_data_refs: int

    def __len__(self) -> int:
        return len(self.lines)


@lru_cache(maxsize=256)
def l1_miss_stream(
    trace: Trace, l1_bytes: int, line_size: int = DEFAULT_LINE_SIZE
) -> MissStream:
    """Filter ``trace`` through split ``l1_bytes`` I and D caches.

    Both L1 caches are direct-mapped and of equal size, as the paper's
    design space prescribes.  Results are memoised on the trace object's
    identity, so repeated L2 sweeps pay for the L1 pass once.
    """
    geometry = CacheGeometry(l1_bytes, line_size=line_size, associativity=1)
    n_sets = geometry.n_sets

    i_lines = trace.i_lines(line_size)
    d_lines = trace.d_lines(line_size)
    i_filter = direct_mapped_filter(i_lines, n_sets)
    d_filter = direct_mapped_filter(d_lines, n_sets)

    i_idx = np.nonzero(i_filter.miss_mask)[0]
    d_idx = np.nonzero(d_filter.miss_mask)[0]

    times = np.concatenate([i_idx, trace.d_times[d_idx]])
    lines = np.concatenate([i_lines[i_idx], d_lines[d_idx]])
    victims = np.concatenate([i_filter.victims[i_idx], d_filter.victims[d_idx]])
    is_instruction = np.concatenate(
        [np.ones(len(i_idx), dtype=bool), np.zeros(len(d_idx), dtype=bool)]
    )

    # Merge into program order; at equal issue time the instruction
    # fetch precedes the data access, matching pipeline order.
    order = np.lexsort((~is_instruction, times))
    return MissStream(
        times=times[order],
        lines=lines[order],
        victims=victims[order],
        is_instruction=is_instruction[order],
        l1i_misses=len(i_idx),
        l1d_misses=len(d_idx),
        n_instructions=trace.n_instructions,
        n_data_refs=trace.n_data_refs,
    )


def _make_replacement(name: str, geometry: CacheGeometry):
    if name == "lfsr":
        return LfsrReplacement(geometry.associativity)
    if name == "lru":
        return LruReplacement(geometry.associativity, geometry.n_sets)
    raise ConfigurationError(f"unknown replacement policy {name!r}")


def _simulate_l2(
    stream: MissStream,
    geometry: CacheGeometry,
    policy: Policy,
    warmup_time: int,
    replacement: str = "lfsr",
) -> "tuple[int, int]":
    """Replay a miss stream through the L2; returns counted (hits, misses).

    The full stream updates the cache state; only events issued at or
    after ``warmup_time`` are counted.
    """
    counted = stream.times >= warmup_time
    if policy is Policy.CONVENTIONAL and geometry.is_direct_mapped:
        # Fast path: a conventional DM L2 is itself a pure filter
        # (replacement is irrelevant with one way per set).
        result = direct_mapped_filter(stream.lines, geometry.n_sets)
        misses = int((result.miss_mask & counted).sum())
        return int(counted.sum()) - misses, misses

    cache = SetAssociativeCache(geometry, _make_replacement(replacement, geometry))
    hits = 0
    n_counted = int(counted.sum())
    lines = stream.lines.tolist()
    counted_list = counted.tolist()
    if policy is Policy.CONVENTIONAL:
        for line, count_it in zip(lines, counted_list):
            if cache.lookup(line):
                hits += count_it
            else:
                cache.fill(line)
    else:
        victims = stream.victims.tolist()
        for line, victim, count_it in zip(lines, victims, counted_list):
            if cache.lookup(line):
                hits += count_it
                cache.invalidate(line)
            # On an L2 miss the line is fetched off-chip directly into
            # the L1; the L2 is not filled with it (exclusion).
            if victim != NO_VICTIM:
                cache.fill(victim)
    return hits, n_counted - hits


def simulate_hierarchy(
    trace: Trace,
    l1_bytes: int,
    l2_bytes: int = 0,
    l2_associativity: int = 1,
    policy: Policy = Policy.CONVENTIONAL,
    line_size: int = DEFAULT_LINE_SIZE,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    l2_replacement: str = "lfsr",
) -> HierarchyStats:
    """Simulate split DM L1 caches with an optional mixed L2.

    Parameters
    ----------
    trace:
        The reference stream.
    l1_bytes:
        Capacity of *each* L1 cache (instruction and data are equal
        sized, per the paper's design space).
    l2_bytes:
        Capacity of the mixed L2; 0 means single-level (no L2).
    l2_associativity:
        L2 ways (1 or 4 in the paper).
    policy:
        Conventional or exclusive content management.
    line_size:
        Line size in bytes (16 throughout the paper).
    warmup_fraction:
        Leading fraction of the instruction stream that is simulated
        but not counted (see module docstring).
    l2_replacement:
        ``"lfsr"`` (the paper's pseudo-random policy, default) or
        ``"lru"`` — exposed for replacement ablations.

    Returns
    -------
    HierarchyStats
        Miss counts for the counted (post-warmup) window, feeding the
        TPI model.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigurationError("warmup_fraction must be in [0, 1)")
    warmup_time = int(trace.n_instructions * warmup_fraction)
    stream = l1_miss_stream(trace, l1_bytes, line_size)

    counted = stream.times >= warmup_time
    l1i_misses = int((counted & stream.is_instruction).sum())
    l1d_misses = int((counted & ~stream.is_instruction).sum())
    n_instructions = trace.n_instructions - warmup_time
    n_data_refs = int(
        len(trace.d_times) - np.searchsorted(trace.d_times, warmup_time, side="left")
    )

    if l2_bytes == 0:
        return HierarchyStats(
            n_instructions=n_instructions,
            n_data_refs=n_data_refs,
            l1i_misses=l1i_misses,
            l1d_misses=l1d_misses,
            l2_hits=0,
            l2_misses=0,
            has_l2=False,
        )
    if l2_bytes < 0:
        raise ConfigurationError("l2_bytes must be >= 0")
    geometry = CacheGeometry(
        l2_bytes, line_size=line_size, associativity=l2_associativity
    )
    hits, misses = _simulate_l2(stream, geometry, policy, warmup_time, l2_replacement)
    return HierarchyStats(
        n_instructions=n_instructions,
        n_data_refs=n_data_refs,
        l1i_misses=l1i_misses,
        l1d_misses=l1d_misses,
        l2_hits=hits,
        l2_misses=misses,
        has_l2=True,
    )
