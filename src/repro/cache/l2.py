"""Stateful set-associative cache used for the second level.

Only the L1 miss stream reaches this simulator (typically a few percent
of all references), so a straightforward per-reference Python loop with
a numpy tag store is fast enough for full design-space sweeps.

The tag store uses ``INVALID`` (-1) as the empty marker, which is safe
because line addresses are non-negative by construction
(:class:`repro.traces.address.Trace` validates this).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .geometry import CacheGeometry
from .replacement import LfsrReplacement, ReplacementPolicy

__all__ = ["SetAssociativeCache", "INVALID"]

#: Tag-store marker for an empty way.
INVALID = -1


class SetAssociativeCache:
    """A set-associative cache of line addresses.

    Parameters
    ----------
    geometry:
        Capacity / line size / associativity.
    replacement:
        Replacement policy; defaults to the paper's LFSR pseudo-random
        policy.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        replacement: Optional[ReplacementPolicy] = None,
    ) -> None:
        self.geometry = geometry
        self._n_sets = geometry.n_sets
        self._assoc = geometry.associativity
        self._tags = np.full((self._n_sets, self._assoc), INVALID, dtype=np.int64)
        self.replacement: ReplacementPolicy = (
            replacement if replacement is not None else LfsrReplacement(self._assoc)
        )

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def _find_way(self, set_index: int, line: int) -> int:
        row = self._tags[set_index]
        for way in range(self._assoc):
            if row[way] == line:
                return way
        return -1

    def lookup(self, line: int) -> bool:
        """Probe for ``line``; returns True on hit (and records the touch)."""
        set_index = line % self._n_sets
        way = self._find_way(set_index, line)
        if way < 0:
            return False
        self.replacement.touch(set_index, way)
        return True

    def contains(self, line: int) -> bool:
        """Non-destructive presence check (does not update recency)."""
        return self._find_way(line % self._n_sets, line) >= 0

    # ------------------------------------------------------------------
    # state changes
    # ------------------------------------------------------------------

    def fill(self, line: int) -> Optional[int]:
        """Allocate ``line``, returning the evicted line (if any).

        Invalid ways are filled first; otherwise the replacement policy
        chooses the victim.  Filling a line that is already present is a
        no-op returning ``None`` (this occurs in exclusive hierarchies
        when the same line was victimised from both L1 caches).
        """
        set_index = line % self._n_sets
        row = self._tags[set_index]
        existing = self._find_way(set_index, line)
        if existing >= 0:
            self.replacement.touch(set_index, existing)
            return None
        for way in range(self._assoc):
            if row[way] == INVALID:
                row[way] = line
                self.replacement.touch(set_index, way)
                return None
        way = self.replacement.victim_way(set_index)
        evicted = int(row[way])
        row[way] = line
        self.replacement.touch(set_index, way)
        return evicted

    def invalidate(self, line: int) -> bool:
        """Remove ``line`` if present; returns True if it was removed."""
        set_index = line % self._n_sets
        way = self._find_way(set_index, line)
        if way < 0:
            return False
        self._tags[set_index, way] = INVALID
        return True

    # ------------------------------------------------------------------
    # introspection (tests, examples)
    # ------------------------------------------------------------------

    @property
    def n_valid_lines(self) -> int:
        """Number of valid lines currently resident."""
        return int((self._tags != INVALID).sum())

    def resident_lines(self) -> np.ndarray:
        """Sorted array of all resident line addresses."""
        valid = self._tags[self._tags != INVALID]
        return np.sort(valid)

    def set_contents(self, set_index: int) -> np.ndarray:
        """Copy of one set's tag row (``INVALID`` marks empty ways)."""
        return self._tags[set_index].copy()
