"""Replacement policies for the set-associative second-level cache.

The paper evaluates *pseudo-random* replacement, which hardware builds
from a free-running LFSR; :class:`LfsrReplacement` reproduces that.
:class:`LruReplacement` is provided as an extension for ablation studies
(the paper's cited prior work, Przybylski, compares the two) — it is not
used by any reproduced figure.
"""

from __future__ import annotations

from typing import List, Protocol, Sequence

from ..errors import GeometryError
from ..lfsr import Lfsr16

__all__ = ["ReplacementPolicy", "LfsrReplacement", "LruReplacement"]


class ReplacementPolicy(Protocol):
    """Chooses which way of a set to evict and observes accesses."""

    def victim_way(self, set_index: int) -> int:
        """Way to evict in ``set_index`` when all ways are valid."""

    def touch(self, set_index: int, way: int) -> None:
        """Record an access (hit or fill) to ``(set_index, way)``."""


class LfsrReplacement:
    """Pseudo-random replacement driven by a 16-bit LFSR.

    One register is shared by all sets, as in the simple hardware
    implementation: the register free-runs and is sampled whenever a
    replacement is needed, so the choice is deterministic given the
    stream of replacements.
    """

    def __init__(self, associativity: int, seed: int = 0xACE1) -> None:
        if associativity < 1:
            raise GeometryError("associativity must be >= 1")
        self._associativity = associativity
        self._lfsr = Lfsr16(seed)

    def victim_way(self, set_index: int) -> int:
        return self._lfsr.next_way(self._associativity)

    def touch(self, set_index: int, way: int) -> None:
        # Random replacement keeps no per-access state.
        return None


class LruReplacement:
    """True least-recently-used replacement (extension, not in the paper).

    Keeps an explicit recency stack per set; O(associativity) per touch,
    which is fine for the small associativities studied here.
    """

    def __init__(self, associativity: int, n_sets: int) -> None:
        if associativity < 1 or n_sets < 1:
            raise GeometryError("associativity and n_sets must be >= 1")
        self._stacks: List[List[int]] = [
            list(range(associativity)) for _ in range(n_sets)
        ]

    def victim_way(self, set_index: int) -> int:
        # Least recently used is the last entry of the recency stack.
        return self._stacks[set_index][-1]

    def touch(self, set_index: int, way: int) -> None:
        stack = self._stacks[set_index]
        stack.remove(way)
        stack.insert(0, way)

    def recency_order(self, set_index: int) -> Sequence[int]:
        """Most-recent-first way order (exposed for tests)."""
        return tuple(self._stacks[set_index])
