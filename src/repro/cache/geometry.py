"""Cache geometry: capacity, line size, associativity, and derived shape.

All the paper's caches use 16-byte lines; capacities are powers of two
from 1 KB to 256 KB; associativity is 1 (direct-mapped) or 4 for the
second level.  The geometry object validates these constraints once and
provides the index/tag arithmetic used by the simulators and the
timing/area models.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GeometryError
from ..units import fmt_size, is_pow2

__all__ = ["CacheGeometry", "DEFAULT_LINE_SIZE"]

#: The paper uses 16-byte lines throughout.
DEFAULT_LINE_SIZE = 16


@dataclass(frozen=True)
class CacheGeometry:
    """Shape of a single cache array.

    Attributes
    ----------
    size_bytes:
        Total data capacity in bytes (power of two).
    line_size:
        Line (block) size in bytes (power of two).
    associativity:
        Ways per set; 1 means direct-mapped.
    """

    size_bytes: int
    line_size: int = DEFAULT_LINE_SIZE
    associativity: int = 1

    def __post_init__(self) -> None:
        if not is_pow2(self.size_bytes):
            raise GeometryError(f"cache size {self.size_bytes} not a power of two")
        if not is_pow2(self.line_size):
            raise GeometryError(f"line size {self.line_size} not a power of two")
        if self.associativity < 1:
            raise GeometryError("associativity must be >= 1")
        if self.line_size > self.size_bytes:
            raise GeometryError("line size exceeds cache size")
        if self.size_bytes % (self.line_size * self.associativity) != 0:
            raise GeometryError(
                f"{self.associativity}-way cache of {self.size_bytes} B cannot be "
                f"divided into whole sets of {self.line_size} B lines"
            )

    @property
    def n_lines(self) -> int:
        """Total number of lines."""
        return self.size_bytes // self.line_size

    @property
    def n_sets(self) -> int:
        """Number of sets (rows of the tag comparison)."""
        return self.n_lines // self.associativity

    @property
    def is_direct_mapped(self) -> bool:
        return self.associativity == 1

    @property
    def is_fully_associative(self) -> bool:
        return self.n_sets == 1

    def set_index(self, line_addr: int) -> int:
        """Set index for a line address (line number, not byte address)."""
        return line_addr % self.n_sets

    def label(self) -> str:
        """Human-readable label, e.g. ``32K/4-way``."""
        way = "DM" if self.is_direct_mapped else f"{self.associativity}-way"
        return f"{fmt_size(self.size_bytes)}/{way}"

    def __str__(self) -> str:
        return self.label()
