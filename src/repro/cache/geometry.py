"""Cache geometry: capacity, line size, associativity, and derived shape.

All the paper's caches use 16-byte lines; capacities are powers of two
from 1 KB to 256 KB; associativity is 1 (direct-mapped) or 4 for the
second level.  The geometry object validates these constraints once and
provides the index/tag arithmetic used by the simulators and the
timing/area models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import GeometryError
from ..units import fmt_size, is_pow2

__all__ = ["CacheGeometry", "DEFAULT_LINE_SIZE", "geometry_violations"]

#: The paper uses 16-byte lines throughout.
DEFAULT_LINE_SIZE = 16


def _is_dimension(value: object) -> bool:
    """A usable cache dimension: a true int (bools are not dimensions)."""
    return isinstance(value, int) and not isinstance(value, bool)


def geometry_violations(
    size_bytes: object,
    line_size: object = DEFAULT_LINE_SIZE,
    associativity: object = 1,
) -> List[str]:
    """Every constraint the shape violates; empty means valid.

    This is the *single* source of truth for geometry validity: the
    runtime validator (:meth:`CacheGeometry.__post_init__`) raises on
    the first entry, and the ``REP005`` static checker
    (:mod:`repro.analysis.rules.geometry`) reports the same messages
    for literal configurations — the two can never drift apart.
    """
    problems: List[str] = []
    for label, value in (
        ("cache size", size_bytes),
        ("line size", line_size),
        ("associativity", associativity),
    ):
        if not _is_dimension(value):
            problems.append(f"{label} {value!r} is not an integer")
    if problems:
        return problems
    assert isinstance(size_bytes, int)
    assert isinstance(line_size, int)
    assert isinstance(associativity, int)
    if not is_pow2(size_bytes):
        problems.append(f"cache size {size_bytes} not a power of two")
    if not is_pow2(line_size):
        problems.append(f"line size {line_size} not a power of two")
    if associativity < 1:
        problems.append("associativity must be >= 1")
    if problems:
        return problems
    if line_size > size_bytes:
        problems.append("line size exceeds cache size")
    elif size_bytes % (line_size * associativity) != 0:
        problems.append(
            f"{associativity}-way cache of {size_bytes} B cannot be "
            f"divided into whole sets of {line_size} B lines"
        )
    return problems


@dataclass(frozen=True)
class CacheGeometry:
    """Shape of a single cache array.

    Attributes
    ----------
    size_bytes:
        Total data capacity in bytes (power of two).
    line_size:
        Line (block) size in bytes (power of two).
    associativity:
        Ways per set; 1 means direct-mapped.
    """

    size_bytes: int
    line_size: int = DEFAULT_LINE_SIZE
    associativity: int = 1

    def __post_init__(self) -> None:
        problems = geometry_violations(
            self.size_bytes, self.line_size, self.associativity
        )
        if problems:
            raise GeometryError("; ".join(problems))

    @property
    def n_lines(self) -> int:
        """Total number of lines."""
        return self.size_bytes // self.line_size

    @property
    def n_sets(self) -> int:
        """Number of sets (rows of the tag comparison)."""
        return self.n_lines // self.associativity

    @property
    def is_direct_mapped(self) -> bool:
        return self.associativity == 1

    @property
    def is_fully_associative(self) -> bool:
        return self.n_sets == 1

    def set_index(self, line_addr: int) -> int:
        """Set index for a line address (line number, not byte address)."""
        return line_addr % self.n_sets

    def label(self) -> str:
        """Human-readable label, e.g. ``32K/4-way``."""
        way = "DM" if self.is_direct_mapped else f"{self.associativity}-way"
        return f"{fmt_size(self.size_bytes)}/{way}"

    def __str__(self) -> str:
        return self.label()
