"""Vectorised direct-mapped cache filter.

A direct-mapped cache has no replacement choice: at any instant, each
set holds exactly the most recently referenced line that maps to it.
Consequently reference *i* misses **iff** the closest previous reference
mapping to the same set used a different line — a property of the
reference stream alone.  A stable sort by set index brings every set's
references together in program order, so one vectorised pass yields the
full miss mask *and* the victim line evicted by each miss.

This is what makes whole-design-space sweeps tractable in Python: the
L1 caches (always direct-mapped in the paper) are filtered at numpy
speed, and only their miss streams reach the slower stateful L2
simulator.  Equivalence with the straightforward simulator is proven by
property-based tests (see ``tests/test_directmap.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GeometryError, TraceError

__all__ = ["DirectMappedFilter", "direct_mapped_filter", "dirty_victim_mask"]

#: Marker for "no victim" (cold fill into an empty set).
NO_VICTIM = -1


@dataclass(frozen=True)
class DirectMappedFilter:
    """Result of filtering a line-address stream through a DM cache.

    Attributes
    ----------
    miss_mask:
        Boolean per reference: True where the cache missed.
    victims:
        Per reference, the line address evicted by the fill (only
        meaningful where ``miss_mask`` is True); ``NO_VICTIM`` for hits
        and for cold fills into an empty set.
    """

    miss_mask: np.ndarray
    victims: np.ndarray

    @property
    def n_refs(self) -> int:
        return len(self.miss_mask)

    @property
    def n_misses(self) -> int:
        return int(self.miss_mask.sum())

    @property
    def miss_rate(self) -> float:
        if self.n_refs == 0:
            return 0.0
        return self.n_misses / self.n_refs


def direct_mapped_filter(lines: np.ndarray, n_sets: int) -> DirectMappedFilter:
    """Simulate a direct-mapped cache over a stream of line addresses.

    Parameters
    ----------
    lines:
        ``int64`` array of line addresses (byte address // line size),
        in program order.
    n_sets:
        Number of cache sets (= number of lines for a DM cache).

    Returns
    -------
    DirectMappedFilter
        Miss mask and victim lines, both aligned with ``lines``.
    """
    if n_sets < 1:
        raise GeometryError("n_sets must be >= 1")
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    n = len(lines)
    miss = np.empty(n, dtype=bool)
    victims = np.full(n, NO_VICTIM, dtype=np.int64)
    if n == 0:
        return DirectMappedFilter(miss, victims)

    sets = lines % n_sets
    order = np.argsort(sets, kind="stable")
    sorted_sets = sets[order]
    sorted_lines = lines[order]

    miss_sorted = np.empty(n, dtype=bool)
    victims_sorted = np.full(n, NO_VICTIM, dtype=np.int64)
    miss_sorted[0] = True
    if n > 1:
        same_set = sorted_sets[1:] == sorted_sets[:-1]
        changed_line = sorted_lines[1:] != sorted_lines[:-1]
        # A reference misses if it starts a new set group (cold miss) or
        # the previous reference in its set used a different line.
        miss_sorted[1:] = ~same_set | changed_line
        # The victim is the previous line in the same set, when there is
        # one and it differs (i.e. a genuine replacement, not a cold fill).
        evicting = same_set & changed_line
        victims_sorted[1:][evicting] = sorted_lines[:-1][evicting]

    miss[order] = miss_sorted
    victims[order] = victims_sorted
    return DirectMappedFilter(miss, victims)


def dirty_victim_mask(
    lines: np.ndarray, is_store: np.ndarray, n_sets: int
) -> np.ndarray:
    """Per-reference flag: does this miss evict a *dirty* victim?

    A direct-mapped victim is dirty iff the evicted line received at
    least one store during its residency.  In the set-sorted view, each
    residency is a maximal run of equal line addresses within a set
    (runs are delimited exactly by the misses), so the dirty flag of
    the victim at a replacement is the OR of ``is_store`` over the
    immediately preceding run — computable in one vectorised pass.

    Returns a boolean array aligned with ``lines``; True only at
    positions that are misses evicting a dirty line.
    """
    if n_sets < 1:
        raise GeometryError("n_sets must be >= 1")
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    is_store = np.ascontiguousarray(is_store, dtype=bool)
    if len(lines) != len(is_store):
        raise TraceError("lines and is_store must align")
    n = len(lines)
    result = np.zeros(n, dtype=bool)
    if n == 0:
        return result

    sets = lines % n_sets
    order = np.argsort(sets, kind="stable")
    sorted_sets = sets[order]
    sorted_lines = lines[order]
    sorted_stores = is_store[order]

    miss_sorted = np.empty(n, dtype=bool)
    miss_sorted[0] = True
    if n > 1:
        same_set = sorted_sets[1:] == sorted_sets[:-1]
        changed_line = sorted_lines[1:] != sorted_lines[:-1]
        miss_sorted[1:] = ~same_set | changed_line
        evicting = same_set & changed_line
    else:
        evicting = np.zeros(0, dtype=bool)

    # Residency runs are numbered by cumulative miss count; the victim
    # of an eviction is the previous run (same set by construction).
    run_id = np.cumsum(miss_sorted) - 1
    n_runs = int(run_id[-1]) + 1
    run_dirty = np.zeros(n_runs, dtype=bool)
    np.logical_or.at(run_dirty, run_id, sorted_stores)

    dirty_sorted = np.zeros(n, dtype=bool)
    if n > 1:
        eviction_positions = np.nonzero(evicting)[0] + 1
        dirty_sorted[eviction_positions] = run_dirty[
            run_id[eviction_positions] - 1
        ]
    result[order] = dirty_sorted
    return result
