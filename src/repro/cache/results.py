"""Aggregate statistics produced by a hierarchy simulation."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError

__all__ = ["HierarchyStats"]


@dataclass(frozen=True)
class HierarchyStats:
    """Miss counts for one (trace, cache configuration) simulation.

    The fields mirror the quantities the paper's TPI model consumes:
    instruction count, L1 miss count (which equals the number of L2
    probes in a two-level system), the split of those into L2 hits and
    L2 misses, and — for single-level systems — the number of off-chip
    fetches directly.
    """

    n_instructions: int
    n_data_refs: int
    l1i_misses: int
    l1d_misses: int
    l2_hits: int
    l2_misses: int
    has_l2: bool

    def __post_init__(self) -> None:
        if self.has_l2:
            if self.l2_hits + self.l2_misses != self.l1_misses:
                raise ModelError("L2 hit + miss counts must equal L1 misses")
        elif self.l2_hits or self.l2_misses:
            raise ModelError("single-level stats cannot have L2 counts")

    @property
    def n_refs(self) -> int:
        """Total references (instruction + data)."""
        return self.n_instructions + self.n_data_refs

    @property
    def l1_misses(self) -> int:
        """Combined first-level misses (I + D)."""
        return self.l1i_misses + self.l1d_misses

    @property
    def l1_miss_rate(self) -> float:
        """First-level misses per reference."""
        return self.l1_misses / self.n_refs

    @property
    def l2_local_miss_rate(self) -> float:
        """L2 misses per L2 access (0 when the L2 is never probed)."""
        if not self.has_l2 or self.l1_misses == 0:
            return 0.0
        return self.l2_misses / self.l1_misses

    @property
    def off_chip_fetches(self) -> int:
        """References serviced from off-chip."""
        return self.l2_misses if self.has_l2 else self.l1_misses

    @property
    def global_miss_rate(self) -> float:
        """Off-chip fetches per reference."""
        return self.off_chip_fetches / self.n_refs
