"""Slow, obviously-correct reference simulators (test oracles).

These implementations favour clarity over speed and exist solely so the
test suite can prove the vectorised/decomposed fast path equivalent on
arbitrary streams.  They must not be used by experiments or benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..traces.address import Trace
from .directmap import NO_VICTIM
from .geometry import DEFAULT_LINE_SIZE, CacheGeometry
from .hierarchy import DEFAULT_WARMUP_FRACTION, Policy
from .l2 import SetAssociativeCache
from .results import HierarchyStats

__all__ = [
    "ReferenceDirectMapped",
    "reference_direct_mapped_filter",
    "reference_simulate_hierarchy",
]


@dataclass
class ReferenceDirectMapped:
    """Dictionary-based direct-mapped cache."""

    n_sets: int
    contents: Dict[int, int] = field(default_factory=dict)

    def access(self, line: int) -> Tuple[bool, int]:
        """Access ``line``; returns (miss, victim-or-NO_VICTIM)."""
        set_index = line % self.n_sets
        resident = self.contents.get(set_index)
        if resident == line:
            return False, NO_VICTIM
        self.contents[set_index] = line
        if resident is None:
            return True, NO_VICTIM
        return True, resident


def reference_direct_mapped_filter(
    lines: "list[int]", n_sets: int
) -> Tuple[List[bool], List[int]]:
    """Reference counterpart of :func:`repro.cache.directmap.direct_mapped_filter`."""
    cache = ReferenceDirectMapped(n_sets)
    misses: List[bool] = []
    victims: List[int] = []
    for line in lines:
        miss, victim = cache.access(int(line))
        misses.append(miss)
        victims.append(victim)
    return misses, victims


class _ReferenceHierarchy:
    """Full stateful split-L1 + optional-L2 model, processed in program order."""

    def __init__(
        self,
        l1_bytes: int,
        l2_bytes: int,
        l2_associativity: int,
        policy: Policy,
        line_size: int,
    ) -> None:
        l1_geometry = CacheGeometry(l1_bytes, line_size=line_size, associativity=1)
        self.icache = ReferenceDirectMapped(l1_geometry.n_sets)
        self.dcache = ReferenceDirectMapped(l1_geometry.n_sets)
        self.policy = policy
        self.l2: Optional[SetAssociativeCache] = None
        if l2_bytes:
            self.l2 = SetAssociativeCache(
                CacheGeometry(l2_bytes, line_size=line_size, associativity=l2_associativity)
            )
        self.l1i_misses = 0
        self.l1d_misses = 0
        self.l2_hits = 0
        self.l2_misses = 0

    def reference(self, line: int, is_instruction: bool, counted: bool) -> None:
        cache = self.icache if is_instruction else self.dcache
        miss, victim = cache.access(line)
        if not miss:
            return
        if counted:
            if is_instruction:
                self.l1i_misses += 1
            else:
                self.l1d_misses += 1
        if self.l2 is None:
            return
        if self.policy is Policy.CONVENTIONAL:
            if self.l2.lookup(line):
                self.l2_hits += counted
            else:
                self.l2_misses += counted
                self.l2.fill(line)
        else:
            if self.l2.lookup(line):
                self.l2_hits += counted
                self.l2.invalidate(line)
            else:
                self.l2_misses += counted
            if victim != NO_VICTIM:
                self.l2.fill(victim)


def reference_simulate_hierarchy(
    trace: Trace,
    l1_bytes: int,
    l2_bytes: int = 0,
    l2_associativity: int = 1,
    policy: Policy = Policy.CONVENTIONAL,
    line_size: int = DEFAULT_LINE_SIZE,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
) -> HierarchyStats:
    """Reference counterpart of :func:`repro.cache.hierarchy.simulate_hierarchy`.

    Processes the trace strictly in program order (instruction fetch
    before the data access of the same cycle), exactly as the fast
    path's merge does, so replacement decisions line up and results are
    bit-identical.
    """
    sim = _ReferenceHierarchy(l1_bytes, l2_bytes, l2_associativity, policy, line_size)
    i_lines = trace.i_lines(line_size).tolist()
    d_lines = trace.d_lines(line_size).tolist()
    d_times = trace.d_times.tolist()
    d_cursor = 0
    n_data = len(d_lines)
    warmup_time = int(trace.n_instructions * warmup_fraction)
    counted_data_refs = 0
    for cycle, i_line in enumerate(i_lines):
        counted = cycle >= warmup_time
        sim.reference(i_line, is_instruction=True, counted=counted)
        while d_cursor < n_data and d_times[d_cursor] == cycle:
            sim.reference(d_lines[d_cursor], is_instruction=False, counted=counted)
            counted_data_refs += counted
            d_cursor += 1
    return HierarchyStats(
        n_instructions=trace.n_instructions - warmup_time,
        n_data_refs=counted_data_refs,
        l1i_misses=sim.l1i_misses,
        l1d_misses=sim.l1d_misses,
        l2_hits=sim.l2_hits,
        l2_misses=sim.l2_misses,
        has_l2=sim.l2 is not None,
    )
