"""Zero-dependency observability: metrics, spans, and profiling.

The measurement substrate of the execution layers (ROADMAP: "you can't
optimise what you can't see").  Three pieces, one injected clock:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters /
  gauges / histograms with labels, worker-snapshot merge, Prometheus
  text rendering, and atomic ``METRICS.jsonl`` snapshots;
* :mod:`repro.obs.spans` — structured spans with ids, parents, and
  durations, flushed crash-safely to ``SPANS.jsonl`` and canonically
  reordered so worker scheduling never shows in the file's structure;
* :mod:`repro.obs.profile` — opt-in per-unit :mod:`cProfile` capture.

:class:`Telemetry` bundles them for the runner, serve, and chaos
layers; :func:`current` is the ambient handle the simulation hot path
uses from inside picklable unit bodies.  Time is only ever read through
:mod:`repro.obs.clock` — the REP012 lint rule enforces exactly that,
plus context-managed span usage, across the instrumented tree.
"""

from .clock import SYSTEM_CLOCK, Clock, ManualClock, SystemClock
from .metrics import (
    DEFAULT_BUCKETS,
    METRICS_NAME,
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    load_metrics_file,
    metrics_jsonl,
)
from .profile import PROFILE_DIR_NAME, capture_profile, profile_path
from .report import (
    find_journal,
    load_run_metrics,
    load_run_spans,
    render_metrics,
    render_spans,
)
from .spans import (
    SPANS_NAME,
    SPANS_SCHEMA,
    Span,
    Tracer,
    canonical_spans,
    load_spans_file,
    spans_jsonl,
)
from .telemetry import DISABLED, Telemetry, activate, current

__all__ = [
    "Clock",
    "SystemClock",
    "ManualClock",
    "SYSTEM_CLOCK",
    "METRICS_NAME",
    "METRICS_SCHEMA",
    "SPANS_NAME",
    "SPANS_SCHEMA",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics_jsonl",
    "load_metrics_file",
    "Span",
    "Tracer",
    "canonical_spans",
    "spans_jsonl",
    "load_spans_file",
    "Telemetry",
    "DISABLED",
    "activate",
    "current",
    "PROFILE_DIR_NAME",
    "profile_path",
    "capture_profile",
    "find_journal",
    "load_run_metrics",
    "load_run_spans",
    "render_metrics",
    "render_spans",
]
